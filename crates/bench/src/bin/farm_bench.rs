//! `farm_bench` — per-worker-count speedup of the multi-process build
//! farm on the Figure 6 workload, cross-validated three ways and
//! written as machine-readable JSON (`BENCH_farm.json`, schema
//! `warp-bench-farm/1`) for CI and regression tracking.
//!
//! ```text
//! cargo run -p parcc-bench --release --bin farm_bench [-- OUT.json]
//! cargo run -p parcc-bench --release --bin farm_bench -- --check BENCH_farm.json
//! ```
//!
//! Three speedup columns per worker count W ∈ {1, 2, 4, 8}:
//!
//! * `netsim_speedup` — the 1989 network simulator's prediction for
//!   the same placement the farm uses (`Placement::Grouped` over W
//!   workstations): the real compilation is replayed through the host
//!   model in virtual time. Deterministic on any host; this is the
//!   column `--check` gates on.
//! * `threads_modeled` — the work-unit model `threads_bench` gates on
//!   (phase 1 / W + LPT makespan + link / W), reproduced here so the
//!   two executors' predictions sit side by side in one file.
//! * `farm_wall_speedup` — median real wall-clock of the sequential
//!   compiler over an actual W-process farm build (real `warpd-worker`
//!   processes over sockets). Informational only: it saturates at
//!   `host_cores` and pays real fork/socket overhead.
//!
//! Write mode needs the `warpd-worker` binary next to this one (build
//! with `cargo build --release -p parcc` first). `--check` re-derives
//! only the deterministic netsim column — no processes are spawned —
//! and exits non-zero if the 8-worker prediction fell more than 10%
//! below the committed baseline or under the acceptance floor.

use parcc::farm::{compile_farm, FarmConfig};
use parcc::{compile_module_source, CompileOptions, Experiment, FunctionRecord, Placement};
use std::fmt::Write as _;
use std::time::Instant;
use warp_workload::{synthetic_program, FunctionSize};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const RUNS: usize = 5;
/// Acceptance floor for the 8-worker netsim-predicted speedup on fig6.
const FLOOR_8W: f64 = 3.0;
/// Allowed relative drop from the committed baseline before CI fails.
const REGRESSION_TOLERANCE: f64 = 0.10;

/// Median wall-clock seconds of `RUNS` invocations of `f`.
fn median_secs(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[RUNS / 2]
}

/// LPT-order greedy makespan — the same bound `threads_bench` uses.
fn lpt_makespan(units: &[u64], workers: usize) -> u64 {
    let mut order: Vec<usize> = (0..units.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(units[i]), i));
    let mut load = vec![0u64; workers.max(1)];
    for i in order {
        let w = (0..load.len()).min_by_key(|&w| load[w]).expect("nonempty");
        load[w] += units[i];
    }
    load.into_iter().max().unwrap_or(0)
}

/// The threaded executor's modeled speedup, reproduced verbatim from
/// `threads_bench` for the side-by-side column.
fn threads_modeled(phase1: u64, compile_units: &[u64], link: u64, workers: usize) -> f64 {
    let seq = phase1 + compile_units.iter().sum::<u64>() + link;
    let w = workers as u64;
    let par = phase1.div_ceil(w) + lpt_makespan(compile_units, workers) + link.div_ceil(w);
    seq as f64 / par.max(1) as f64
}

/// Pulls `"netsim_speedup": <num>` out of the baseline's
/// `"workers": 8` row with plain string scanning (the bench crates
/// carry no JSON dependency).
fn baseline_speedup_8w(json: &str) -> Option<f64> {
    let row = json
        .split('{')
        .find(|part| part.contains("\"workers\": 8"))?;
    let after = row.split("\"netsim_speedup\":").nth(1)?;
    let num: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check_path = match args.first().map(String::as_str) {
        Some("--check") => Some(args.get(1).cloned().unwrap_or_else(|| {
            eprintln!("farm_bench: --check needs a baseline path");
            std::process::exit(2);
        })),
        _ => None,
    };
    let out_path = if check_path.is_some() {
        None
    } else {
        Some(
            args.first()
                .cloned()
                .unwrap_or_else(|| "BENCH_farm.json".to_string()),
        )
    };

    let opts = CompileOptions::default();
    let src = synthetic_program(FunctionSize::Medium, 8);
    let reference = compile_module_source(&src, &opts).expect("sequential compile");
    let compile_units: Vec<u64> = reference
        .records
        .iter()
        .map(FunctionRecord::compile_units)
        .collect();
    let (phase1, link) = (reference.phase1_units, reference.link_units);
    let experiment = Experiment::default();

    // The deterministic gate number, available with zero processes.
    let netsim_at = |workers: usize| {
        experiment
            .compare_result(
                &reference,
                Placement::Grouped {
                    processors: workers,
                },
            )
            .speedup
    };

    if let Some(baseline_path) = check_path {
        let speedup_8w = netsim_at(8);
        let baseline_json = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("farm_bench: reading {baseline_path}: {e}");
            std::process::exit(2);
        });
        let baseline = baseline_speedup_8w(&baseline_json).unwrap_or_else(|| {
            eprintln!("farm_bench: no 8-worker netsim_speedup in {baseline_path}");
            std::process::exit(2);
        });
        let bar = baseline * (1.0 - REGRESSION_TOLERANCE);
        eprintln!(
            "gate: fresh 8-worker netsim-predicted speedup {speedup_8w:.2}x vs baseline \
             {baseline:.2}x (bar {bar:.2}x, floor {FLOOR_8W:.1}x)"
        );
        if speedup_8w < bar {
            eprintln!(
                "farm_bench: 8-worker netsim-predicted speedup regressed >10% below the \
                 committed baseline"
            );
            std::process::exit(1);
        }
        if speedup_8w < FLOOR_8W {
            eprintln!("farm_bench: 8-worker netsim-predicted speedup under the {FLOOR_8W}x floor");
            std::process::exit(1);
        }
        println!("ok: {speedup_8w:.2}x >= max({bar:.2}x, {FLOOR_8W:.1}x)");
        return;
    }

    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    let seq_wall_s = median_secs(|| {
        compile_module_source(&src, &opts).expect("seq");
    });

    let mut rows = String::new();
    for (i, workers) in WORKER_COUNTS.into_iter().enumerate() {
        let netsim = netsim_at(workers);
        let modeled = threads_modeled(phase1, &compile_units, link, workers);
        let farm_wall_s = median_secs(|| {
            compile_farm(&src, &opts, &FarmConfig::new(workers)).expect("farm build");
        });
        let wall = seq_wall_s / farm_wall_s;
        eprintln!(
            "workers {workers}: netsim {netsim:.2}x, threads-modeled {modeled:.2}x, \
             farm wall {wall:.2}x ({seq_wall_s:.4}s -> {farm_wall_s:.4}s)"
        );
        let _ = write!(
            rows,
            "    {{\"workers\": {workers}, \"netsim_speedup\": {netsim:.4}, \
             \"threads_modeled\": {modeled:.4}, \"farm_wall_speedup\": {wall:.4}, \
             \"seq_wall_s\": {seq_wall_s:.6}, \"farm_wall_s\": {farm_wall_s:.6}}}{}",
            if i + 1 < WORKER_COUNTS.len() {
                ",\n"
            } else {
                "\n"
            }
        );
    }

    let json = format!(
        "{{\n  \"schema\": \"warp-bench-farm/1\",\n  \"workload\": \"fig6-medium-n8\",\n  \
         \"runs\": {RUNS},\n  \"host_cores\": {host_cores},\n  \"results\": [\n{rows}  ]\n}}\n"
    );
    let out_path = out_path.expect("write mode has a path");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("farm_bench: writing {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out_path}");
}
