//! `batch_bench` — lanes-vs-throughput for the batched interpreter,
//! written as machine-readable JSON (`BENCH_batch.json`).
//!
//! ```text
//! cargo run -p parcc-bench --release --bin batch_bench [-- OUT.json]
//! ```
//!
//! Both sides do the same work the way the differential-fuzzing
//! harness really does it:
//!
//! * **strict** — one fresh strict [`Cell`] per run. This is the only
//!   correct way to use the strict interpreter for independent runs:
//!   `prepare_call` deliberately does not reset data memory, so a
//!   `Cell` cannot be reused across inputs. Every run pays the image
//!   clone, the decode, and the data-memory fills.
//! * **batch** — one long-lived [`BatchInterp`], reset between runs
//!   with its slabs recycled, exactly like the fuzzing loop in
//!   `parcc::fuzz` runs chunk after chunk.
//!
//! Scenarios:
//!
//! * `sweep` — a corpus of compiled W2 kernels, each the size and
//!   shape of a generated fuzz program (tens to a few hundred cycles
//!   per run), each swept over many inputs at 16/64/256 lanes. This is
//!   the differential harness's inner loop, program by program.
//!   **This is the gated row**: the acceptance budget is ≥ 5× at 64
//!   lanes and up.
//! * `longrun` — a long-running kernel (~8.6k cycles per lane) at 64
//!   lanes; per-run construction amortizes away on both sides, so this
//!   row shows the pure stepping-speed ratio. Not gated.
//! * `divergent` — a data-dependent loop whose trip count differs per
//!   lane. Not gated.
//! * `mutants` — 256 distinct tiny programs run once each (the
//!   mutation-sweep shape, no cross-lane decode sharing). Not gated.
//!
//! Throughput is reported as executed cell cycles per second; both
//! engines execute bit-identical cycle counts (asserted, together with
//! per-lane results) so the speedup is a pure wall-clock ratio.
//! The harness asserts the acceptance budget and exits non-zero
//! otherwise.

use parcc::{compile_module_source, CompileOptions};
use std::fmt::Write as _;
use std::time::Instant;
use warp_target::batch::{BatchInterp, LaneInput, LaneStatus};
use warp_target::interp::{Cell, InterpError, Value};
use warp_target::isa::Reg;
use warp_target::program::SectionImage;
use warp_target::CellConfig;

const RUNS: usize = 7;
const MAX_CYCLES: u64 = 10_000_000;
/// Acceptance: batch ≥ 5× strict at 64+ lanes on the sweep scenario.
const SPEEDUP_BUDGET: f64 = 5.0;

fn compile_one(body: &str) -> SectionImage {
    let src = format!(
        "module b; section s on cells 0..0; function f(x: float, n: int): float \
         var t: float; v: float[64]; i: int; k: int; begin {body} end; end;"
    );
    let result = compile_module_source(&src, &CompileOptions::default()).expect("bench compiles");
    result.module_image.section_images[0].clone()
}

/// Minimum wall-clock seconds over `RUNS` invocations of `f` — the
/// least-noise estimate, applied to both engines alike.
fn min_secs(mut f: impl FnMut()) -> f64 {
    (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Runs every input on a fresh strict `Cell` (the pre-batch harness
/// pattern); returns (total cycles, per-lane RET bits).
fn strict_side(programs: &[SectionImage], inputs: &[LaneInput]) -> (u64, Vec<Option<u64>>) {
    let mut cycles = 0u64;
    let mut rets = Vec::with_capacity(inputs.len());
    for input in inputs {
        let mut cell =
            Cell::new(CellConfig::default(), programs[input.program].clone()).expect("cell");
        cell.set_strict(true);
        cell.prepare_call(&input.function, &input.args)
            .expect("args");
        match cell.run(MAX_CYCLES) {
            Ok(c) => {
                cycles += c;
                rets.push(cell.reg(Reg::RET).ok().map(Value::to_bits));
            }
            Err(InterpError::Fault { .. }) | Err(InterpError::CycleLimit { .. }) => {
                cycles += cell.cycle();
                rets.push(None);
            }
            Err(e) => panic!("unexpected strict error: {e}"),
        }
    }
    (cycles, rets)
}

/// Runs the same work on the long-lived `BatchInterp`, recycling its
/// slabs; returns (total cycles, per-lane RET bits).
fn batch_side(
    batch: &mut BatchInterp,
    programs: &[SectionImage],
    inputs: &[LaneInput],
) -> (u64, Vec<Option<u64>>) {
    batch.reset();
    for image in programs {
        batch.add_program(image).expect("program");
    }
    for input in inputs {
        batch.add_lane(input).expect("lane");
    }
    batch.execute(MAX_CYCLES);
    let mut cycles = 0u64;
    let mut rets = Vec::with_capacity(inputs.len());
    for lane in 0..batch.lane_count() {
        let report = batch.report(lane);
        cycles += report.cycles;
        rets.push(match report.status {
            LaneStatus::Halted => batch.reg(lane, Reg::RET).ok().map(Value::to_bits),
            _ => None,
        });
    }
    (cycles, rets)
}

/// One unit of work: a set of registered programs and the lanes to run
/// over them. A scenario is a sequence of these, processed chunk by
/// chunk exactly like the fuzzing loop (the batch resets between
/// chunks, recycling its slabs).
type Work = (Vec<SectionImage>, Vec<LaneInput>);

fn strict_all(work: &[Work]) -> (u64, Vec<Option<u64>>) {
    let mut cycles = 0u64;
    let mut rets = Vec::new();
    for (programs, inputs) in work {
        let (c, r) = strict_side(programs, inputs);
        cycles += c;
        rets.extend(r);
    }
    (cycles, rets)
}

fn batch_all(batch: &mut BatchInterp, work: &[Work]) -> (u64, Vec<Option<u64>>) {
    let mut cycles = 0u64;
    let mut rets = Vec::new();
    for (programs, inputs) in work {
        let (c, r) = batch_side(batch, programs, inputs);
        cycles += c;
        rets.extend(r);
    }
    (cycles, rets)
}

struct Row {
    scenario: &'static str,
    lanes: usize,
    cycles: u64,
    strict_s: f64,
    batch_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.strict_s / self.batch_s
    }
}

/// Measures one scenario at one lane count, asserting bit-identity
/// between the two engines on the way (which also warms the batch
/// slabs before the timed runs).
fn measure(scenario: &'static str, batch: &mut BatchInterp, lanes: usize, work: &[Work]) -> Row {
    let (strict_cycles, strict_rets) = strict_all(work);
    let (batch_cycles, batch_rets) = batch_all(batch, work);
    assert_eq!(
        strict_cycles, batch_cycles,
        "{scenario}: cycle counts diverge"
    );
    assert_eq!(strict_rets, batch_rets, "{scenario}: results diverge");
    eprintln!("measuring {scenario} at {lanes} lanes ({RUNS} runs per engine)...");
    let strict_s = min_secs(|| {
        strict_all(work);
    });
    let batch_s = min_secs(|| {
        batch_all(batch, work);
    });
    Row {
        scenario,
        lanes,
        cycles: strict_cycles,
        strict_s,
        batch_s,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_batch.json".to_string());

    // The gated corpus: kernels the size and shape of generated fuzz
    // programs — tens to a few hundred cycles per run. The harness
    // sweeps each over its inputs, program by program, like the
    // differential fuzzing loop.
    let corpus: Vec<SectionImage> = [
        "t := x * 0.5 + 1.25;\n         v[0] := t;\n         t := t + v[0] * x;\n         return t;",
        "k := n * 3;\n         i := k - n;\n         t := x + 0.5;\n         v[1] := t * t;\n         return v[1];",
        "t := x;\n         for i := 0 to 4 do t := t * 0.5 + v[i]; end;\n         return t;",
        "t := x;\n         for i := 0 to 8 do t := t + v[i] * x; end;\n         return t;",
        "t := 0.0;\n         k := n;\n         while k > 0 do t := t + x; k := k - 1; end;\n         return t;",
        "for i := 0 to 7 do v[i] := x * 2.0; end;\n         t := v[3] + v[6];\n         return t;",
        "t := x;\n         for k := 0 to 2 do\n           for i := 0 to 3 do t := t + v[i] * 0.25; end;\n         end;\n         return t;",
        "t := x;\n         for i := 0 to 15 do t := t * 1.0625 + 0.125; end;\n         return t;",
    ]
    .iter()
    .map(|b| compile_one(b))
    .collect();
    // Long-running kernel: construction amortizes away on both sides.
    let longrun = compile_one(
        "t := x;\n         for k := 0 to 7 do\n           for i := 0 to 63 do v[i] := t * 0.5 + v[i]; end;\n           for i := 0 to 63 do t := t + v[i] * x; end;\n         end;\n         return t;",
    );
    // Data-dependent trip count: lanes diverge on `n`.
    let divergent = compile_one(
        "t := x;\n         k := n;\n         while k > 0 do\n           t := t * 1.0625 + 0.25;\n           k := k - 1;\n         end;\n         return t;",
    );

    let mut batch = BatchInterp::new(CellConfig::default(), true);
    let mut rows: Vec<Row> = Vec::new();
    for lanes in [16usize, 64, 256] {
        let work: Vec<Work> = corpus
            .iter()
            .map(|img| {
                let inputs: Vec<LaneInput> = (0..lanes)
                    .map(|i| {
                        LaneInput::call(
                            0,
                            "f",
                            vec![
                                Value::F(0.25 + i as f32 * 0.125),
                                Value::I(5 + (i as i32 * 7) % 13),
                            ],
                        )
                    })
                    .collect();
                (vec![img.clone()], inputs)
            })
            .collect();
        rows.push(measure("sweep", &mut batch, lanes, &work));
    }
    {
        let inputs: Vec<LaneInput> = (0..64)
            .map(|i| LaneInput::call(0, "f", vec![Value::F(0.25 + i as f32 * 0.125), Value::I(5)]))
            .collect();
        let work = vec![(vec![longrun], inputs)];
        rows.push(measure("longrun", &mut batch, 64, &work));
    }
    {
        let inputs: Vec<LaneInput> = (0..64)
            .map(|i| {
                LaneInput::call(
                    0,
                    "f",
                    vec![
                        Value::F(1.5 + i as f32 * 0.25),
                        Value::I(50 + (i * 37) % 400),
                    ],
                )
            })
            .collect();
        let work = vec![(vec![divergent], inputs)];
        rows.push(measure("divergent", &mut batch, 64, &work));
    }
    {
        // 256 distinct small programs, one run each — the mutation
        // sweep shape (different code per lane, short runs).
        let mutants: Vec<SectionImage> = (0..256)
            .map(|i| {
                compile_one(&format!(
                    "t := x * {c:.4};\n  for i := 0 to {hi} do t := t + v[i] + {c:.4}; end;\n  return t;",
                    c = 0.5 + (i as f64) * 0.01,
                    hi = 8 + i % 24,
                ))
            })
            .collect();
        let inputs: Vec<LaneInput> = (0..mutants.len())
            .map(|p| LaneInput::call(p, "f", vec![Value::F(2.0), Value::I(3)]))
            .collect();
        let work = vec![(mutants, inputs)];
        rows.push(measure("mutants", &mut batch, 256, &work));
    }

    let mut body = String::new();
    for (i, row) in rows.iter().enumerate() {
        let strict_ips = row.cycles as f64 / row.strict_s;
        let batch_ips = row.cycles as f64 / row.batch_s;
        let _ = write!(
            body,
            "    {{\"scenario\": \"{}\", \"lanes\": {}, \"cycles\": {}, \
             \"strict_s\": {:.6}, \"batch_s\": {:.6}, \"strict_ips\": {:.0}, \
             \"batch_ips\": {:.0}, \"speedup\": {:.2}}}{}",
            row.scenario,
            row.lanes,
            row.cycles,
            row.strict_s,
            row.batch_s,
            strict_ips,
            batch_ips,
            row.speedup(),
            if i + 1 < rows.len() { ",\n" } else { "\n" }
        );
    }
    let json = format!(
        "{{\n  \"schema\": \"warp-bench-batch/1\",\n  \"runs\": {RUNS},\n  \
         \"budget_speedup_at_64_lanes\": {SPEEDUP_BUDGET},\n  \"results\": [\n{body}  ]\n}}\n"
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("batch_bench: writing {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out_path}");

    let mut failed = false;
    for row in &rows {
        if row.scenario == "sweep" && row.lanes >= 64 && row.speedup() < SPEEDUP_BUDGET {
            eprintln!(
                "batch_bench: sweep at {} lanes reached only {:.2}x (budget {SPEEDUP_BUDGET}x)",
                row.lanes,
                row.speedup()
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
