//! `bench_json` — real (wall-clock) compilation times on the Figure 6
//! workload, written as machine-readable JSON for CI and regression
//! tracking.
//!
//! ```text
//! cargo run -p parcc-bench --release --bin bench_json [-- OUT.json]
//! ```
//!
//! For each function count n ∈ {1, 2, 4, 8} of the medium-size
//! synthetic program, the harness measures the median over several
//! runs of:
//!
//! * `seq_s`  — sequential `compile_module_source`;
//! * `par_s`  — `compile_parallel` with 4 workers, no cache;
//! * `cold_s` — `compile_parallel_cached` against an empty cache
//!   (every function misses and is stored);
//! * `warm_s` — `compile_parallel_cached` against a fully primed
//!   cache (every function hits; no worker threads are spawned).
//!
//! The output schema is documented in EXPERIMENTS.md ("Incremental
//! compilation"). The default output path is `BENCH_parallel.json` in
//! the current directory.
//!
//! A second file, `BENCH_faults.json` (schema `warp-bench-faults/1`),
//! measures what the fault-tolerance machinery costs when nothing
//! faults: the n=8 workload compiled by the plain pool vs the
//! chaos-capable pool with a zero-probability plan. The harness asserts
//! the relative overhead stays under 5 % (plus a small absolute slack
//! for timer noise) and exits non-zero otherwise.

use parcc::threads::{
    compile_parallel, compile_parallel_cached, compile_parallel_chaos, ChaosPlan, RetryPolicy,
};
use parcc::{compile_module_source, CompileOptions, FnCache};
use std::fmt::Write as _;
use std::time::Instant;
use warp_workload::{synthetic_program, FunctionSize};

const NS: [usize; 4] = [1, 2, 4, 8];
const WORKERS: usize = 4;
const RUNS: usize = 5;

/// Median wall-clock seconds of `RUNS` invocations of `f`.
fn median_secs(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[RUNS / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let opts = CompileOptions::default();

    let mut rows = String::new();
    for (i, n) in NS.into_iter().enumerate() {
        eprintln!("measuring medium n={n} ({RUNS} runs per variant)...");
        let src = synthetic_program(FunctionSize::Medium, n);

        let seq_s = median_secs(|| {
            compile_module_source(&src, &opts).expect("seq");
        });
        let par_s = median_secs(|| {
            compile_parallel(&src, &opts, WORKERS).expect("par");
        });
        let cold_s = median_secs(|| {
            let cache = FnCache::in_memory();
            compile_parallel_cached(&src, &opts, WORKERS, &cache).expect("cold");
        });
        let primed = FnCache::in_memory();
        compile_parallel_cached(&src, &opts, WORKERS, &primed).expect("prime");
        let warm_s = median_secs(|| {
            compile_parallel_cached(&src, &opts, WORKERS, &primed).expect("warm");
        });

        let _ = write!(
            rows,
            "    {{\"n\": {n}, \"seq_s\": {seq_s:.6}, \"par_s\": {par_s:.6}, \
             \"cold_s\": {cold_s:.6}, \"warm_s\": {warm_s:.6}}}{}",
            if i + 1 < NS.len() { ",\n" } else { "\n" }
        );
    }

    let json = format!(
        "{{\n  \"schema\": \"warp-bench-parallel/1\",\n  \"workload\": \"fig6-medium\",\n  \
         \"workers\": {WORKERS},\n  \"runs\": {RUNS},\n  \"results\": [\n{rows}  ]\n}}\n"
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench_json: writing {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out_path}");

    fault_overhead_bench();
}

/// Overhead budget for the fault-free chaos path, as a fraction of the
/// plain pool's time.
const FAULT_OVERHEAD_BUDGET: f64 = 0.05;
/// Absolute slack (seconds) so sub-10 ms workloads don't trip on timer
/// noise.
const FAULT_OVERHEAD_SLACK_S: f64 = 0.010;

/// Measures the fault-tolerance machinery on the fault-free n=8 fig6
/// workload and writes `BENCH_faults.json`. Exits non-zero when the
/// overhead blows the < 5 % budget.
fn fault_overhead_bench() {
    let opts = CompileOptions::default();
    let src = synthetic_program(FunctionSize::Medium, 8);
    // Zero-probability plan: every chaos code path is active (decide()
    // per job, recv_timeout collection, retry bookkeeping) but no fault
    // is ever injected, so this isolates the machinery's cost.
    let chaos = ChaosPlan::default();
    let policy = RetryPolicy::default();
    eprintln!("measuring fault-tolerance overhead (fault-free, medium n=8)...");

    let par_s = median_secs(|| {
        compile_parallel(&src, &opts, WORKERS).expect("par");
    });
    let chaos_s = median_secs(|| {
        compile_parallel_chaos(&src, &opts, WORKERS, &chaos, &policy).expect("chaos");
    });
    let overhead = chaos_s / par_s - 1.0;

    let json = format!(
        "{{\n  \"schema\": \"warp-bench-faults/1\",\n  \"workload\": \"fig6-medium-n8\",\n  \
         \"workers\": {WORKERS},\n  \"runs\": {RUNS},\n  \"par_s\": {par_s:.6},\n  \
         \"chaos_fault_free_s\": {chaos_s:.6},\n  \"overhead_frac\": {overhead:.6},\n  \
         \"budget_frac\": {FAULT_OVERHEAD_BUDGET}\n}}\n"
    );
    let out_path = "BENCH_faults.json";
    if let Err(e) = std::fs::write(out_path, &json) {
        eprintln!("bench_json: writing {out_path}: {e}");
        std::process::exit(1);
    }
    print!("{json}");
    eprintln!("wrote {out_path}");

    if chaos_s > par_s * (1.0 + FAULT_OVERHEAD_BUDGET) + FAULT_OVERHEAD_SLACK_S {
        eprintln!(
            "bench_json: fault-tolerance overhead {:.1}% exceeds the {:.0}% budget \
             (par {par_s:.4}s vs chaos {chaos_s:.4}s)",
            overhead * 100.0,
            FAULT_OVERHEAD_BUDGET * 100.0
        );
        std::process::exit(1);
    }
}
