//! Regenerates the paper's figures. With no arguments prints all of
//! them; otherwise prints the named ones (e.g. `figures fig6 fig11`).

use parcc_bench::{render, EvalData, FIGURES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() {
        FIGURES.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for w in &wanted {
        if !FIGURES.contains(w) {
            eprintln!("unknown figure `{w}`; available: {}", FIGURES.join(" "));
            std::process::exit(2);
        }
    }
    eprintln!("compiling test programs and simulating (this takes a few seconds)...");
    let data = EvalData::collect();
    for w in wanted {
        println!("{}", render(&data, w));
    }
}
