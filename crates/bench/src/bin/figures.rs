//! Regenerates the paper's figures. With no arguments prints all of
//! them; otherwise prints the named ones (e.g. `figures fig6 fig11`).
//! `--trace-dir DIR` additionally writes the virtual-time traces
//! behind the Figure 6 medium series as Chrome trace_event JSON.

use parcc_bench::{render, write_fig6_traces, EvalData, FIGURES};

fn main() {
    let mut trace_dir: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--trace-dir" {
            match it.next() {
                Some(d) => trace_dir = Some(d),
                None => {
                    eprintln!("--trace-dir needs a directory");
                    std::process::exit(2);
                }
            }
        } else {
            names.push(a);
        }
    }
    let wanted: Vec<&str> = if names.is_empty() {
        FIGURES.to_vec()
    } else {
        names.iter().map(String::as_str).collect()
    };
    for w in &wanted {
        if !FIGURES.contains(w) {
            eprintln!("unknown figure `{w}`; available: {}", FIGURES.join(" "));
            std::process::exit(2);
        }
    }
    if let Some(dir) = &trace_dir {
        match write_fig6_traces(std::path::Path::new(dir)) {
            Ok(paths) => eprintln!("wrote {} trace file(s) to {dir}", paths.len()),
            Err(e) => {
                eprintln!("writing traces to {dir}: {e}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("compiling test programs and simulating (this takes a few seconds)...");
    let data = EvalData::collect();
    for w in wanted {
        println!("{}", render(&data, w));
    }
}
