//! Calibration helper: detailed process breakdown for key scenarios.
//! Not part of the documented harness; used to tune the cost model.

use parcc::{Experiment, Placement};
use warp_workload::FunctionSize;

fn show(label: &str, c: &parcc::Comparison) {
    println!(
        "{label:<22} seq={:>7.1}m par={:>7.1}m speedup={:>5.2} tot%={:>5.1} sys%={:>6.1} impl={:>6.2}m mem_ovh(seq)={:>6.1}m mem_ovh(par)={:>6.1}m",
        c.seq.elapsed_s / 60.0,
        c.par.elapsed_s / 60.0,
        c.speedup,
        c.overheads.total_frac * 100.0,
        c.overheads.system_frac * 100.0,
        c.overheads.implementation_s / 60.0,
        c.seq.memory_overhead_s / 60.0,
        c.par.memory_overhead_s / 60.0,
    );
}

fn main() {
    let e = Experiment::default();
    for size in FunctionSize::ALL {
        for n in [1usize, 2, 4, 8] {
            let c = e.synthetic(size, n).unwrap();
            show(&format!("{size} n={n}"), &c);
        }
    }
    for p in [2usize, 3, 5, 9] {
        let c = e.user_program(p).unwrap();
        show(&format!("user P={p}"), &c);
    }
    // Detail: the user program at 9 processors, per process.
    let src = warp_workload::user_program();
    let r = parcc::compile_module_source(&src, &e.opts).unwrap();
    let c = e.compare_result(&r, Placement::Fcfs);
    println!("\nuser@9 parallel process detail:");
    // re-simulate to get the report
    let a = parcc::fcfs(r.records.len(), e.model.host.workstations - 1);
    let rep = warp_netsim::simulate(e.model.host, parcc::simspec::par_spec(&r, &e.model, &a));
    for p in &rep.processes {
        println!(
            "  {:<28} ws={:<2} start={:>7.1}s end={:>7.1}s cpu={:>7.1}s ovh={:>6.1}s net={:>5.1}s disk={:>5.1}s wait={:>6.1}s",
            p.name, p.workstation, p.start_s, p.end_s, p.cpu_s, p.overhead_s, p.net_s, p.disk_s, p.wait_s
        );
    }
    println!("  elapsed={:.1}s speedup={:.2}", rep.elapsed_s, c.speedup);
}
