//! # parcc-bench
//!
//! The measurement harness: regenerates every table and figure of the
//! paper's evaluation (§4, Figures 3–16) from the reproduction, and
//! hosts the Criterion benches for real-machine parallel compilation.
//!
//! The `figures` binary prints the same series the paper plots:
//!
//! ```text
//! cargo run -p parcc-bench --release --bin figures            # everything
//! cargo run -p parcc-bench --release --bin figures -- fig6    # one figure
//! ```

#![warn(missing_docs)]

pub mod figures;

pub use figures::{render, write_fig6_traces, EvalData, FIGURES};
