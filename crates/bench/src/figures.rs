//! Regeneration of every figure in the paper's evaluation.
//!
//! All series come from [`EvalData::collect`], which compiles each test
//! program once (for real) and replays sequential and parallel
//! compilation through the host simulator. The renderers print the same
//! quantities the paper plots; EXPERIMENTS.md records the comparison
//! against the published curves.

use parcc::{Comparison, Experiment};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use warp_workload::FunctionSize;

/// The function counts measured in §4.2 ("We varied the number of
/// functions in each program between 1, 2, 4 and 8").
pub const NS: [usize; 4] = [1, 2, 4, 8];

/// Processor counts for the user program (§4.3 reports 2, 3, 5 and 9).
pub const USER_PROCS: [usize; 4] = [2, 3, 5, 9];

/// All figure names accepted by [`render`].
pub const FIGURES: [&str; 25] = [
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "user-table",
    "headline",
    "ablation-inline",
    "ablation-unroll",
    "parmake",
    "katseff",
    "scheduling",
    "utilization",
    "ablation-ifconv",
    "cache",
    "faults",
];

/// Every measurement the figures need, collected once.
pub struct EvalData {
    /// (size, n) → comparison.
    pub synthetic: BTreeMap<(FunctionSize, usize), Comparison>,
    /// processors → user-program comparison.
    pub user: BTreeMap<usize, Comparison>,
    /// Per-function sequential compile seconds of the user program.
    pub user_fn_seconds: Vec<(String, usize, f64)>,
}

impl EvalData {
    /// Compiles and simulates everything (a few seconds of real time).
    pub fn collect() -> EvalData {
        let e = Experiment::default();
        let mut synthetic = BTreeMap::new();
        for size in FunctionSize::ALL {
            for n in NS {
                let c = e
                    .synthetic(size, n)
                    .unwrap_or_else(|err| panic!("compile {size} n={n}: {err}"));
                synthetic.insert((size, n), c);
            }
        }
        let mut user = BTreeMap::new();
        for p in 2..=9usize {
            user.insert(p, e.user_program(p).expect("user program"));
        }
        // Per-function sequential times: replay each function's units
        // through the cost model at the sequential compiler's heap.
        let result = parcc::compile_module_source(&warp_workload::user_program(), &e.opts)
            .expect("user program");
        let seq_total: f64 = user[&9].seq.elapsed_s;
        let total_units: u64 = result.records.iter().map(|r| r.compile_units()).sum();
        let user_fn_seconds = result
            .records
            .iter()
            .map(|r| {
                // Attribute sequential elapsed proportionally to units
                // (close enough for the table; the sim does the real
                // accounting).
                let frac = r.compile_units() as f64 / total_units as f64;
                (r.name.clone(), r.lines, seq_total * frac)
            })
            .collect();
        EvalData {
            synthetic,
            user,
            user_fn_seconds,
        }
    }

    fn cmp(&self, size: FunctionSize, n: usize) -> &Comparison {
        &self.synthetic[&(size, n)]
    }
}

fn minutes(s: f64) -> f64 {
    s / 60.0
}

/// Renders the execution-time figure for one size (Figures 3, 4, 5,
/// 12, 13): elapsed and per-processor CPU time, sequential and
/// parallel, vs number of functions.
fn times_figure(data: &EvalData, size: FunctionSize, fig: &str, caption: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{fig}: execution times for {size} ({caption})");
    let _ = writeln!(
        out,
        "{:>4} {:>14} {:>14} {:>14} {:>14}",
        "n", "seq elapsed", "seq cpu", "par elapsed", "par cpu"
    );
    for n in NS {
        let c = data.cmp(size, n);
        let _ = writeln!(
            out,
            "{n:>4} {:>13.2}m {:>13.2}m {:>13.2}m {:>13.2}m",
            minutes(c.seq.elapsed_s),
            minutes(c.seq.max_cpu_s),
            minutes(c.par.elapsed_s),
            minutes(c.par.max_cpu_s),
        );
    }
    out
}

/// Figure 6: speedup over the sequential compiler vs number of
/// functions, for all five sizes.
fn fig6(data: &EvalData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fig6: speedup over sequential compiler (elapsed time)");
    let mut header = format!("{:>4}", "n");
    for size in FunctionSize::ALL {
        let _ = write!(header, " {:>9}", size.paper_name());
    }
    let _ = writeln!(out, "{header}");
    for n in NS {
        let mut row = format!("{n:>4}");
        for size in FunctionSize::ALL {
            let _ = write!(row, " {:>9.2}", data.cmp(size, n).speedup);
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Figure 7: speedup vs function size (lines of code) for each n.
fn fig7(data: &EvalData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fig7: speedup versus function size (lines of code)");
    let mut header = format!("{:>6}", "LoC");
    for n in NS {
        let _ = write!(header, " {:>8}", format!("n={n}"));
    }
    let _ = writeln!(out, "{header}");
    for size in FunctionSize::ALL {
        let mut row = format!("{:>6}", size.lines());
        for n in NS {
            let _ = write!(row, " {:>8.2}", data.cmp(size, n).speedup);
        }
        let _ = writeln!(out, "{row}  ({})", size.paper_name());
    }
    out
}

/// Relative overheads (% of parallel elapsed) for a set of sizes
/// (Figures 8, 9, 10).
fn overhead_figure(data: &EvalData, sizes: &[FunctionSize], fig: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{fig}: overheads as percentage of parallel elapsed time"
    );
    let mut header = format!("{:>4}", "n");
    for size in sizes {
        let _ = write!(
            header,
            " {:>12} {:>12}",
            format!("tot {size}"),
            format!("sys {size}")
        );
    }
    let _ = writeln!(out, "{header}");
    for n in NS {
        let mut row = format!("{n:>4}");
        for size in sizes {
            let o = &data.cmp(*size, n).overheads;
            let _ = write!(
                row,
                " {:>11.1}% {:>11.1}%",
                o.total_frac * 100.0,
                o.system_frac * 100.0
            );
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Absolute overheads in minutes (Figures 14, 15, 16).
fn abs_overhead_figure(data: &EvalData, sizes: &[FunctionSize], fig: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{fig}: absolute overheads (minutes)");
    let mut header = format!("{:>4}", "n");
    for size in sizes {
        let _ = write!(
            header,
            " {:>12} {:>12}",
            format!("tot {size}"),
            format!("sys {size}")
        );
    }
    let _ = writeln!(out, "{header}");
    for n in NS {
        let mut row = format!("{n:>4}");
        for size in sizes {
            let o = &data.cmp(*size, n).overheads;
            let _ = write!(
                row,
                " {:>11.2}m {:>11.2}m",
                minutes(o.total_s),
                minutes(o.system_s)
            );
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Figure 11: user-program speedup vs processors (grouped schedule).
fn fig11(data: &EvalData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fig11: speedup for the user program (9 functions)");
    let _ = writeln!(
        out,
        "{:>6} {:>9} {:>14} {:>14}",
        "procs", "speedup", "seq elapsed", "par elapsed"
    );
    for p in 2..=9usize {
        let c = &data.user[&p];
        let _ = writeln!(
            out,
            "{p:>6} {:>9.2} {:>13.1}m {:>13.1}m",
            c.speedup,
            minutes(c.seq.elapsed_s),
            minutes(c.par.elapsed_s)
        );
    }
    out
}

/// §4.3 table: per-function sequential compile times of the user
/// program, plus the idle-time observation at 9 processors.
fn user_table(data: &EvalData) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "user-table: sequential compile time per user-program function"
    );
    let _ = writeln!(out, "{:>16} {:>6} {:>10}", "function", "lines", "seq time");
    for (name, lines, secs) in &data.user_fn_seconds {
        let _ = writeln!(out, "{name:>16} {lines:>6} {:>9.1}m", minutes(*secs));
    }
    let c9 = &data.user[&9];
    let large_min = data
        .user_fn_seconds
        .iter()
        .filter(|(_, l, _)| *l > 200)
        .map(|(_, _, s)| *s)
        .fold(f64::INFINITY, f64::min);
    let small_max = data
        .user_fn_seconds
        .iter()
        .filter(|(_, l, _)| *l < 60)
        .map(|(_, _, s)| *s)
        .fold(0.0, f64::max);
    let _ = writeln!(
        out,
        "at 9 processors: elapsed {:.1}m; a small-function processor is idle ≥ {:.1}m",
        minutes(c9.par.elapsed_s),
        minutes(large_min - small_max).max(0.0)
    );
    out
}

/// The headline claim: speedup 3–6 with at most 9 processors for
/// typical programs.
fn headline(data: &EvalData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "headline: typical speedups with <= 9 processors");
    for (label, s) in [
        ("f_medium n=8", data.cmp(FunctionSize::Medium, 8).speedup),
        ("f_large  n=4", data.cmp(FunctionSize::Large, 4).speedup),
        ("f_large  n=8", data.cmp(FunctionSize::Large, 8).speedup),
        ("f_huge   n=8", data.cmp(FunctionSize::Huge, 8).speedup),
        ("user @ 9 procs", data.user[&9].speedup),
        ("user @ 5 procs", data.user[&5].speedup),
        ("user @ 2 procs", data.user[&2].speedup),
    ] {
        let _ = writeln!(out, "  {label:>15}: {s:.2}");
    }
    out
}

/// §5.1 ablation: procedure inlining on a call-heavy program.
fn ablation_inline() -> String {
    let e = Experiment::default();
    let a = e.inline_ablation().expect("ablation");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ablation-inline: §5.1 procedure inlining on a call-heavy program"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>10} {:>12} {:>12} {:>9}",
        "variant", "functions", "seq elapsed", "par elapsed", "speedup"
    );
    for (label, funcs, c) in [
        ("baseline", a.baseline_functions, &a.baseline),
        ("inlined", a.inlined_functions, &a.inlined),
    ] {
        let _ = writeln!(
            out,
            "{label:>12} {funcs:>10} {:>11.1}m {:>11.1}m {:>9.2}",
            minutes(c.seq.elapsed_s),
            minutes(c.par.elapsed_s),
            c.speedup
        );
    }
    let _ = writeln!(
        out,
        "inlining merges many tiny tasks into fewer medium ones — the regime fig7 rewards"
    );
    out
}

/// §6 trade-off: unrolling buys code quality with compile time.
fn ablation_unroll() -> String {
    let e = Experiment::default();
    let points = e.unroll_ablation().expect("ablation");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ablation-unroll: §6 compile time vs code quality (64-element saxpy)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>11} {:>12}",
        "factor", "compile units", "code words", "exec cycles"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "{:>8} {:>14} {:>11} {:>12}",
            p.factor, p.compile_units, p.code_words, p.cycles
        );
    }
    let _ = writeln!(
        out,
        "\"continued research in code optimization should not be bound by compile time\nconstraints … the compiler can employ more time consuming optimizations and\nthereby improve the quality of the code\" (§6)"
    );
    out
}

/// §3.4 comparison: parallel make over separate modules vs the parallel
/// compiler within one module, vs both combined.
fn parmake() -> String {
    let e = Experiment::default();
    let r = parcc::parmake::parmake_comparison(&e).expect("parmake");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "parmake: §3.4 parallel make vs parallel compiler (4-module system)"
    );
    let _ = writeln!(out, "{:>22} {:>14} {:>9}", "strategy", "elapsed", "speedup");
    for (label, elapsed) in [
        ("sequential make", r.sequential_s),
        ("parallel make", r.parallel_make_s),
        ("parallel compiler", r.parallel_compiler_s),
        ("combined", r.combined_s),
        ("combined + warm cache", r.combined_warm_s),
        ("combined, 3 faults", r.combined_faulted_s),
    ] {
        let _ = writeln!(
            out,
            "{label:>22} {:>13.1}m {:>9.2}",
            minutes(elapsed),
            r.sequential_s / elapsed
        );
    }
    let _ = writeln!(
        out,
        "\"both approaches could coexist, with the parallel compiler speeding up the\nindividual translations, and the parallel make system organizing the system\ngeneration effort\" (§3.4)"
    );
    out
}

/// Fig. 6 workload under k injected host faults: the medium/8 parallel
/// compilation re-simulated with seeded crashes, slowdowns, partitions
/// and server stalls. Speedup degrades gracefully — the master detects
/// lost function masters by timeout and re-dispatches them — and the
/// whole curve is a deterministic function of the seed.
fn faults_figure() -> String {
    let e = Experiment::default();
    let f = e
        .fig6_under_faults(FunctionSize::Medium, 8, 1989, &[0, 1, 2, 4])
        .expect("fig6 under faults");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "faults: fig6 medium/8 under k injected faults (seed {}, {} functions)",
        f.seed, f.functions
    );
    let _ = writeln!(
        out,
        "sequential {:.1}m, fault-free parallel {:.1}m",
        minutes(f.seq_elapsed_s),
        minutes(f.par_elapsed_s)
    );
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>9} {:>7} {:>7} {:>12} {:>7}",
        "k faults", "elapsed", "speedup", "killed", "redisp", "slow/part/st", "parked"
    );
    for p in &f.points {
        let s = p.faults;
        let _ = writeln!(
            out,
            "{:>8} {:>9.1}m {:>9.2} {:>7} {:>7} {:>12} {:>7}",
            p.k_faults,
            minutes(p.elapsed_s),
            p.speedup,
            s.killed,
            s.redispatches,
            format!("{}/{}/{}", s.slowdowns, s.partitions, s.stalls),
            s.parked,
        );
    }
    let _ = writeln!(
        out,
        "every lost function master is re-dispatched after the detection timeout;\nthe same seed reproduces the same curve byte for byte (docs/FAULTS.md)"
    );
    out
}

/// If-conversion ablation: speculation into selects restores
/// pipelinability of branchy loops.
fn ablation_ifconv() -> String {
    let e = Experiment::default();
    let points = e.ifconv_ablation().expect("ablation");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ablation-ifconv: branchy 64-iteration kernel, with/without if-conversion"
    );
    let _ = writeln!(
        out,
        "{:>12} {:>14} {:>10} {:>12}",
        "variant", "compile units", "pipelined", "exec cycles"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "{:>12} {:>14} {:>10} {:>12}",
            if p.converted {
                "if-convert"
            } else {
                "baseline"
            },
            p.compile_units,
            p.pipelined_loops,
            p.cycles
        );
    }
    let _ = writeln!(
        out,
        "speculating both arms into selects makes the loop body a single block the\nmodulo scheduler can pipeline"
    );
    out
}

/// Incremental compilation: warm-cache rebuilds of the Figure 6
/// workload (medium functions, n ∈ {1, 2, 4, 8}) through the 1989
/// host simulator.
fn cache_figure() -> String {
    use parcc::simspec::{par_spec, par_spec_cached};
    let e = Experiment::default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cache: warm-cache rebuilds of the fig6 workload (parallel compiler)"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>12} {:>12} {:>10}",
        "n", "cold", "warm", "1 edited", "warm/cold"
    );
    for n in NS {
        let src = warp_workload::synthetic_program(FunctionSize::Medium, n);
        let result = parcc::compile_module_source(&src, &e.opts)
            .unwrap_or_else(|err| panic!("compile medium n={n}: {err}"));
        let a = parcc::fcfs(n, e.model.host.workstations - 1);
        let cold = warp_netsim::simulate(e.model.host, par_spec(&result, &e.model, &a)).elapsed_s;
        let warm = warp_netsim::simulate(
            e.model.host,
            par_spec_cached(&result, &e.model, &a, &vec![true; n]),
        )
        .elapsed_s;
        let mut one_edited = vec![true; n];
        one_edited[n - 1] = false;
        let edited = warp_netsim::simulate(
            e.model.host,
            par_spec_cached(&result, &e.model, &a, &one_edited),
        )
        .elapsed_s;
        let _ = writeln!(
            out,
            "{n:>4} {:>11.2}m {:>11.2}m {:>11.2}m {:>9.1}%",
            minutes(cold),
            minutes(warm),
            minutes(edited),
            warm / cold * 100.0
        );
    }
    let _ = writeln!(
        out,
        "a warm rebuild fetches stored objects instead of recompiling: its cost is the\nmodule parse plus I/O, giving an 8-12x speedup over the cold build — beyond\nwhat any processor count reaches on this workload (fig6 tops out near 4x),\nbecause recompilation is skipped rather than parallelized. Editing one\nfunction pays for exactly that function's recompilation."
    );
    out
}

/// §4.2.2 cross-check: the Katseff-style parallel assembler.
fn katseff() -> String {
    let e = Experiment::default();
    let sweeps = parcc::katseff_comparison(&e).expect("katseff");
    let mut out = String::new();
    let _ = writeln!(out, "katseff: §4.2.2 data-partitioned parallel assembler");
    for s in &sweeps {
        let _ = writeln!(out, "{} ({} functions):", s.label, s.functions);
        let mut procs = String::from("  procs  ");
        let mut speed = String::from("  speedup");
        for p in &s.points {
            let _ = write!(procs, " {:>5}", p.processors);
            let _ = write!(speed, " {:>5.2}", p.speedup);
        }
        let _ = writeln!(out, "{procs}");
        let _ = writeln!(out, "{speed}");
    }
    let _ = writeln!(
        out,
        "paper: \"speedup about 6 for a large program and 4 for a small one; adding\nprocessors past 8 for the large program (5 for the small one) yields no\nfurther decrease in elapsed time\""
    );
    out
}

/// §3.3/§4.3 scheduling comparison: FCFS vs cost-estimate grouping on
/// the user program across processor counts.
fn scheduling() -> String {
    use parcc::Placement;
    let e = Experiment::default();
    let src = warp_workload::user_program();
    let result = parcc::compile_module_source(&src, &e.opts).expect("compile");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scheduling: FCFS wrap-around vs LPT grouping (user program)"
    );
    let _ = writeln!(out, "{:>6} {:>12} {:>12}", "procs", "fcfs", "grouped");
    for p in [2usize, 3, 5, 9] {
        // FCFS restricted to p machines: emulate by a model with fewer
        // workstations visible to the wrap-around.
        let mut fcfs_model = e.clone();
        fcfs_model.model.host.workstations = p + 1; // + the master's
        let fcfs = fcfs_model.compare_result(&result, Placement::Fcfs);
        let grouped = e.compare_result(&result, Placement::Grouped { processors: p });
        let _ = writeln!(
            out,
            "{p:>6} {:>12.2} {:>12.2}",
            fcfs.speedup, grouped.speedup
        );
    }
    let _ = writeln!(
        out,
        "grouping by the LoC × nesting estimate matches or beats FCFS at every width\n(§4.3: \"smaller functions can be grouped and compiled on the same processor\")"
    );
    out
}

/// §5.2 host observations: shared-resource utilization during an
/// 8-way parallel compilation.
fn utilization() -> String {
    let e = Experiment::default();
    let src = warp_workload::synthetic_program(FunctionSize::Large, 8);
    let result = parcc::compile_module_source(&src, &e.opts).expect("compile");
    let a = parcc::fcfs(result.records.len(), e.model.host.workstations - 1);
    let rep = warp_netsim::simulate(
        e.model.host,
        parcc::simspec::par_spec(&result, &e.model, &a),
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "utilization: shared resources during parallel S8(f_large)"
    );
    let _ = writeln!(out, "  elapsed          {:>8.1} min", rep.elapsed_s / 60.0);
    let _ = writeln!(
        out,
        "  ethernet busy    {:>8.1} min ({:>4.1}% of elapsed)",
        rep.ethernet_busy_s / 60.0,
        rep.ethernet_busy_s / rep.elapsed_s * 100.0
    );
    let _ = writeln!(
        out,
        "  file-server busy {:>8.1} min ({:>4.1}% of elapsed)",
        rep.disk_busy_s / 60.0,
        rep.disk_busy_s / rep.elapsed_s * 100.0
    );
    let used = rep.workstations_used();
    let avg_cpu: f64 =
        rep.cpu_busy_s.iter().sum::<f64>() / used.max(1) as f64 / rep.elapsed_s * 100.0;
    let _ = writeln!(
        out,
        "  workstations     {used} used, avg CPU utilization {avg_cpu:.1}%"
    );
    let _ = writeln!(
        out,
        "\"general purpose systems such as workstations connected by local networks can\nserve as efficient parallel hosts\" (§5) — the file server is the shared\nbottleneck that limits scaling (§5.2)"
    );
    out
}

/// Writes the virtual-time traces behind the Figure 6 medium-size
/// series to `dir` as Chrome `trace_event` JSON (one `seq` and one
/// `par` file per function count), validating each file before it is
/// written. Returns the written paths. EXPERIMENTS.md documents how
/// the figures cross-check against these files.
///
/// # Errors
///
/// Returns an error if a trace fails validation or a file cannot be
/// written.
///
/// # Panics
///
/// Panics if a test program fails to compile (a bug in the workload
/// generator or compiler).
pub fn write_fig6_traces(dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    use std::io::{Error, ErrorKind};
    std::fs::create_dir_all(dir)?;
    let e = Experiment::default();
    let mut written = Vec::new();
    for n in NS {
        let src = warp_workload::synthetic_program(FunctionSize::Medium, n);
        let result = parcc::compile_module_source(&src, &e.opts)
            .unwrap_or_else(|err| panic!("compile medium n={n}: {err}"));
        let (_, traces) = e.compare_result_traced(&result, parcc::Placement::Fcfs);
        for (kind, snap) in [("seq", &traces.seq), ("par", &traces.par)] {
            let json = warp_obs::to_chrome_json(snap);
            let stats = warp_obs::validate_chrome_json(&json)
                .map_err(|m| Error::new(ErrorKind::InvalidData, m))?;
            if stats.spans == 0 {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!("fig6 {kind} n={n}: trace has no spans"),
                ));
            }
            let path = dir.join(format!("fig6-medium-n{n}-{kind}.json"));
            std::fs::write(&path, &json)?;
            written.push(path);
        }
    }
    Ok(written)
}

/// Renders one named figure from collected data.
///
/// # Panics
///
/// Panics on an unknown figure name (the binary validates first).
pub fn render(data: &EvalData, figure: &str) -> String {
    use FunctionSize::*;
    match figure {
        "fig3" => times_figure(data, Tiny, "fig3", "paper Figure 3"),
        "fig4" => times_figure(data, Large, "fig4", "paper Figure 4"),
        "fig5" => times_figure(data, Huge, "fig5", "paper Figure 5"),
        "fig12" => times_figure(data, Small, "fig12", "paper Figure 12"),
        "fig13" => times_figure(data, Medium, "fig13", "paper Figure 13"),
        "fig6" => fig6(data),
        "fig7" => fig7(data),
        "fig8" => overhead_figure(data, &[Tiny, Small], "fig8"),
        "fig9" => overhead_figure(data, &[Medium, Large], "fig9"),
        "fig10" => overhead_figure(data, &[Huge], "fig10"),
        "fig14" => abs_overhead_figure(data, &[Tiny, Small], "fig14"),
        "fig15" => abs_overhead_figure(data, &[Medium, Large], "fig15"),
        "fig16" => abs_overhead_figure(data, &[Huge], "fig16"),
        "fig11" => fig11(data),
        "user-table" => user_table(data),
        "headline" => headline(data),
        "ablation-inline" => ablation_inline(),
        "ablation-unroll" => ablation_unroll(),
        "parmake" => parmake(),
        "katseff" => katseff(),
        "scheduling" => scheduling(),
        "utilization" => utilization(),
        "ablation-ifconv" => ablation_ifconv(),
        "cache" => cache_figure(),
        "faults" => faults_figure(),
        other => panic!("unknown figure `{other}`"),
    }
}
