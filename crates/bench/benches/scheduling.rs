//! Criterion benches for the schedulers and the host simulator: the
//! master's partitioning cost (paper: "scheduling time") and the
//! discrete-event engine's throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parcc::simspec::{par_spec, seq_spec};
use parcc::{compile_module_source, fcfs, grouped_lpt, CompileOptions, Experiment};
use warp_netsim::simulate;
use warp_workload::{synthetic_program, FunctionSize};

fn bench_assignment(c: &mut Criterion) {
    let src = synthetic_program(FunctionSize::Small, 8);
    let result = compile_module_source(&src, &CompileOptions::default()).unwrap();
    // Replicate records to larger counts for scaling.
    let mut records = Vec::new();
    while records.len() < 64 {
        records.extend(result.records.iter().cloned());
    }
    let mut group = c.benchmark_group("assignment");
    for n in [8usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("fcfs", n), &n, |b, &n| {
            b.iter(|| fcfs(n, 14))
        });
        group.bench_with_input(BenchmarkId::new("grouped_lpt", n), &n, |b, &n| {
            b.iter(|| grouped_lpt(&records[..n], 5))
        });
    }
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let e = Experiment::default();
    let src = synthetic_program(FunctionSize::Medium, 4);
    let result = compile_module_source(&src, &e.opts).unwrap();
    let assignment = fcfs(result.records.len(), e.model.host.workstations - 1);
    let mut group = c.benchmark_group("netsim");
    group.bench_function("sequential_spec", |b| {
        b.iter(|| simulate(e.model.host, seq_spec(&result, &e.model)))
    });
    group.bench_function("parallel_spec", |b| {
        b.iter(|| simulate(e.model.host, par_spec(&result, &e.model, &assignment)))
    });
    group.finish();
}

fn bench_end_to_end_experiment(c: &mut Criterion) {
    let e = Experiment::default();
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("medium_n4", |b| {
        b.iter(|| e.synthetic(FunctionSize::Medium, 4).expect("experiment"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_assignment,
    bench_simulator,
    bench_end_to_end_experiment
);
criterion_main!(benches);
