//! Criterion benches for real (threaded) parallel compilation of the
//! paper's workloads — the modern analogue of the paper's experiment.
//! Wall-clock speedup is bounded by the host's core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parcc::threads::compile_parallel;
use parcc::{compile_module_source, CompileOptions};
use warp_workload::{synthetic_program, user_program, FunctionSize};

fn bench_user_program(c: &mut Criterion) {
    let src = user_program();
    let opts = CompileOptions::default();
    let mut group = c.benchmark_group("user_program");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| compile_module_source(&src, &opts).expect("seq"))
    });
    for workers in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", workers), &workers, |b, &w| {
            b.iter(|| compile_parallel(&src, &opts, w).expect("par"))
        });
    }
    group.finish();
}

fn bench_s4_large(c: &mut Criterion) {
    let src = synthetic_program(FunctionSize::Large, 4);
    let opts = CompileOptions::default();
    let mut group = c.benchmark_group("s4_large");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| compile_module_source(&src, &opts).expect("seq"))
    });
    group.bench_function("threads_4", |b| {
        b.iter(|| compile_parallel(&src, &opts, 4).expect("par"))
    });
    group.finish();
}

criterion_group!(benches, bench_user_program, bench_s4_large);
criterion_main!(benches);
