//! Criterion benches for the function-level compilation cache: a cold
//! build (every probe misses), a warm rebuild (every probe hits), and
//! the common edit-one-function rebuild. The warm numbers measure the
//! cache's service path — key hashing, lookup, decode — against the
//! full phase-2/3 pipeline it replaces.

use criterion::{criterion_group, criterion_main, Criterion};
use parcc::threads::compile_parallel_cached;
use parcc::{CompileOptions, FnCache};
use warp_workload::{synthetic_program, FunctionSize};

const WORKERS: usize = 4;

fn bench_incremental(c: &mut Criterion) {
    let src = synthetic_program(FunctionSize::Medium, 8);
    let opts = CompileOptions::default();
    let mut group = c.benchmark_group("incremental_s8_medium");
    group.sample_size(10);

    group.bench_function("cold", |b| {
        b.iter(|| {
            // Fresh cache every iteration: all 8 functions miss.
            let cache = FnCache::in_memory();
            compile_parallel_cached(&src, &opts, WORKERS, &cache).expect("cold")
        })
    });

    let warm_cache = FnCache::in_memory();
    compile_parallel_cached(&src, &opts, WORKERS, &warm_cache).expect("prime");
    group.bench_function("warm", |b| {
        b.iter(|| compile_parallel_cached(&src, &opts, WORKERS, &warm_cache).expect("warm"))
    });

    // Edit one function: same module with one loop bound changed,
    // compiled against a cache primed with the original — 7 hits + 1
    // miss per build. Each iteration forks the primed cache so the
    // edited function's store cannot turn later iterations warm.
    let edited_src = src.replacen("0 to 15", "0 to 16", 1);
    assert_ne!(
        edited_src, src,
        "workload must contain an editable loop bound"
    );
    let primed = FnCache::in_memory();
    compile_parallel_cached(&src, &opts, WORKERS, &primed).expect("prime");
    group.bench_function("one_edited", |b| {
        b.iter(|| {
            let cache = primed.fork_memory();
            compile_parallel_cached(&edited_src, &opts, WORKERS, &cache).expect("edited")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
