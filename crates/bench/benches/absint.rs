//! Criterion benches for the abstract interpreter: raw analysis cost
//! per function size, the fact-driven rewrite stage, and the marginal
//! cost `--absint` adds to a full compile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parcc::{compile_module_source, CompileOptions};
use warp_ir::phase2::phase2;
use warp_lang::phase1;
use warp_workload::{synthetic_program, FunctionSize};

fn bench_analyze_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("absint_analyze");
    for size in [
        FunctionSize::Tiny,
        FunctionSize::Small,
        FunctionSize::Medium,
    ] {
        let src = synthetic_program(size, 1);
        let checked = phase1(&src).unwrap();
        let f = &checked.module.sections[0].functions[0];
        let p2 = phase2(
            f,
            &checked.sections[0].symbol_tables[0],
            &checked.sections[0].signatures,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &p2.ir, |b, ir| {
            b.iter(|| warp_ir::analyze(std::hint::black_box(ir)))
        });
    }
    group.finish();
}

fn bench_apply_facts(c: &mut Criterion) {
    let src = synthetic_program(FunctionSize::Medium, 1);
    let checked = phase1(&src).unwrap();
    let f = &checked.module.sections[0].functions[0];
    let p2 = phase2(
        f,
        &checked.sections[0].symbol_tables[0],
        &checked.sections[0].signatures,
    )
    .unwrap();
    let analysis = warp_ir::analyze(&p2.ir);
    c.bench_function("absint_apply_facts/medium", |b| {
        b.iter(|| {
            let mut ir = p2.ir.clone();
            warp_ir::apply_facts(&mut ir, std::hint::black_box(&analysis.rewrites))
        })
    });
}

fn bench_compile_with_and_without(c: &mut Criterion) {
    let src = synthetic_program(FunctionSize::Small, 2);
    let mut group = c.benchmark_group("compile_small_x2");
    group.sample_size(10);
    for (label, absint) in [("absint_off", false), ("absint_on", true)] {
        let opts = CompileOptions {
            absint,
            ..CompileOptions::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| compile_module_source(std::hint::black_box(&src), &opts).expect("compile"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_analyze_by_size,
    bench_apply_facts,
    bench_compile_with_and_without
);
criterion_main!(benches);
