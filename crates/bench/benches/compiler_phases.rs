//! Criterion benches for the compiler phases themselves: where the
//! time goes inside one function master, and how compilation cost
//! scales across the paper's function sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parcc::{compile_module_source, CompileOptions};
use warp_codegen::phase3::{phase3, DEFAULT_MAX_II};
use warp_ir::phase2::phase2;
use warp_lang::phase1;
use warp_target::CellConfig;
use warp_workload::{synthetic_program, FunctionSize};

fn bench_phase1(c: &mut Criterion) {
    let src = synthetic_program(FunctionSize::Medium, 4);
    c.bench_function("phase1/medium_x4", |b| {
        b.iter(|| phase1(std::hint::black_box(&src)).expect("phase1"))
    });
}

fn bench_phase2(c: &mut Criterion) {
    let src = synthetic_program(FunctionSize::Medium, 1);
    let checked = phase1(&src).unwrap();
    let f = &checked.module.sections[0].functions[0];
    c.bench_function("phase2/medium", |b| {
        b.iter(|| {
            phase2(
                std::hint::black_box(f),
                &checked.sections[0].symbol_tables[0],
                &checked.sections[0].signatures,
            )
            .expect("phase2")
        })
    });
}

fn bench_phase3(c: &mut Criterion) {
    let src = synthetic_program(FunctionSize::Medium, 1);
    let checked = phase1(&src).unwrap();
    let f = &checked.module.sections[0].functions[0];
    let p2 = phase2(
        f,
        &checked.sections[0].symbol_tables[0],
        &checked.sections[0].signatures,
    )
    .unwrap();
    let cfg = CellConfig::default();
    c.bench_function("phase3/medium", |b| {
        b.iter(|| phase3(std::hint::black_box(&p2), &cfg, DEFAULT_MAX_II).expect("phase3"))
    });
}

fn bench_full_compile_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_compile");
    group.sample_size(10);
    for size in [
        FunctionSize::Tiny,
        FunctionSize::Small,
        FunctionSize::Medium,
        FunctionSize::Large,
    ] {
        let src = synthetic_program(size, 1);
        group.bench_with_input(BenchmarkId::from_parameter(size), &src, |b, src| {
            b.iter(|| compile_module_source(src, &CompileOptions::default()).expect("compile"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_phase1,
    bench_phase2,
    bench_phase3,
    bench_full_compile_by_size
);
criterion_main!(benches);
