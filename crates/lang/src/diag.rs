//! Diagnostics: errors and warnings with source locations.
//!
//! The paper's compiler reports syntax and semantic errors during the
//! sequential phase 1 and aborts the parallel compilation when any are
//! found; the diagnostic output produced *during* parallel compilation
//! of individual functions is collected by the section masters and
//! recombined in source order. [`DiagnosticBag`] supports both uses: it
//! is an append-only sink that can be merged deterministically.

use crate::span::{LineMap, Span};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational note (e.g. optimization report from a function master).
    Note,
    /// Suspicious but not fatal.
    Warning,
    /// Fatal: compilation of the module is aborted after phase 1.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        f.write_str(s)
    }
}

/// A single diagnostic message anchored to a source span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Error, warning, or note.
    pub severity: Severity,
    /// Source location the message refers to.
    pub span: Span,
    /// Human-readable message, lowercase, no trailing punctuation.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            span,
            message: message.into(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            span,
            message: message.into(),
        }
    }

    /// Creates a note diagnostic.
    pub fn note(span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Note,
            span,
            message: message.into(),
        }
    }

    /// Renders the diagnostic as `line:col: severity: message` using
    /// `lines` to resolve the span.
    pub fn render(&self, lines: &LineMap) -> String {
        let pos = lines.line_col(self.span.start);
        format!("{pos}: {}: {}", self.severity, self.message)
    }

    /// Renders the diagnostic with a source excerpt and a caret line
    /// underlining the span:
    ///
    /// ```text
    /// 3:9: error: undeclared variable `q`
    ///     t := q * 2.0;
    ///          ^
    /// ```
    pub fn render_with_source(&self, source: &str, lines: &LineMap) -> String {
        let mut out = self.render(lines);
        let pos = lines.line_col(self.span.start);
        let Some(line_text) = source.lines().nth(pos.line as usize - 1) else {
            return out;
        };
        out.push('\n');
        out.push_str("    ");
        out.push_str(line_text);
        out.push('\n');
        out.push_str("    ");
        for _ in 0..pos.col.saturating_sub(1) {
            out.push(' ');
        }
        // Caret width: clamp to the span portion on this line.
        let width = (self.span.len() as usize)
            .min(line_text.len().saturating_sub(pos.col as usize - 1))
            .max(1);
        for _ in 0..width {
            out.push('^');
        }
        out
    }
}

/// An append-only collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiagnosticBag {
    diagnostics: Vec<Diagnostic>,
}

impl DiagnosticBag {
    /// Creates an empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// Appends an error at `span`.
    pub fn error(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::error(span, message));
    }

    /// Appends a warning at `span`.
    pub fn warning(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::warning(span, message));
    }

    /// Appends a note at `span`.
    pub fn note(&mut self, span: Span, message: impl Into<String>) {
        self.push(Diagnostic::note(span, message));
    }

    /// `true` if any diagnostic is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// All diagnostics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter()
    }

    /// Number of diagnostics of any severity.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// `true` if no diagnostics have been recorded.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Merges `other` into `self` and re-sorts by source position so the
    /// combined output matches what the sequential compiler would print.
    ///
    /// This mirrors the section master's job of combining the diagnostic
    /// output of its function masters (paper §3.2).
    pub fn merge_sorted(&mut self, other: DiagnosticBag) {
        self.diagnostics.extend(other.diagnostics);
        self.diagnostics
            .sort_by_key(|d| (d.span.start, d.span.end, d.severity));
    }

    /// Renders every diagnostic with `lines`, one per line.
    pub fn render_all(&self, lines: &LineMap) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(lines));
            out.push('\n');
        }
        out
    }

    /// Renders every diagnostic with source excerpts and carets.
    pub fn render_all_with_source(&self, source: &str) -> String {
        let lines = crate::span::LineMap::new(source);
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_with_source(source, &lines));
            out.push('\n');
        }
        out
    }
}

impl IntoIterator for DiagnosticBag {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;

    fn into_iter(self) -> Self::IntoIter {
        self.diagnostics.into_iter()
    }
}

impl FromIterator<Diagnostic> for DiagnosticBag {
    fn from_iter<I: IntoIterator<Item = Diagnostic>>(iter: I) -> Self {
        DiagnosticBag {
            diagnostics: iter.into_iter().collect(),
        }
    }
}

impl Extend<Diagnostic> for DiagnosticBag {
    fn extend<I: IntoIterator<Item = Diagnostic>>(&mut self, iter: I) {
        self.diagnostics.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_errors_distinguishes_severities() {
        let mut bag = DiagnosticBag::new();
        bag.warning(Span::new(0, 1), "odd");
        assert!(!bag.has_errors());
        bag.error(Span::new(2, 3), "bad");
        assert!(bag.has_errors());
        assert_eq!(bag.error_count(), 1);
        assert_eq!(bag.len(), 2);
    }

    #[test]
    fn merge_sorted_restores_source_order() {
        let mut a = DiagnosticBag::new();
        a.error(Span::new(10, 11), "later");
        let mut b = DiagnosticBag::new();
        b.error(Span::new(2, 3), "earlier");
        a.merge_sorted(b);
        let spans: Vec<u32> = a.iter().map(|d| d.span.start).collect();
        assert_eq!(spans, vec![2, 10]);
    }

    #[test]
    fn render_includes_position_and_severity() {
        let lines = LineMap::new("abc\ndef");
        let d = Diagnostic::error(Span::new(4, 5), "unexpected thing");
        assert_eq!(d.render(&lines), "2:1: error: unexpected thing");
    }

    #[test]
    fn caret_rendering_underlines_span() {
        let source = "module m;\nsection s on cells 0..0;\n  t := qq * 2.0;";
        let lines = LineMap::new(source);
        // `qq` is at line 3, col 8, 2 bytes.
        let start = source.find("qq").unwrap() as u32;
        let d = Diagnostic::error(Span::new(start, start + 2), "undeclared variable `qq`");
        let r = d.render_with_source(source, &lines);
        assert!(r.contains("3:8: error"), "{r}");
        assert!(r.contains("t := qq * 2.0;"), "{r}");
        assert!(r.contains("       ^^"), "{r}");
    }

    #[test]
    fn caret_rendering_survives_out_of_range_spans() {
        let source = "x";
        let lines = LineMap::new(source);
        let d = Diagnostic::error(Span::new(50, 60), "weird");
        let _ = d.render_with_source(source, &lines);
    }

    #[test]
    fn collect_and_iterate() {
        let bag: DiagnosticBag = vec![Diagnostic::note(Span::point(0), "n")]
            .into_iter()
            .collect();
        assert_eq!(bag.len(), 1);
        assert_eq!(bag.into_iter().count(), 1);
    }
}
