//! Semantic analysis for the Warp language (the rest of compiler
//! phase 1).
//!
//! The checker validates the whole module: section cell ranges, name
//! uniqueness, symbol resolution, and type checking of every statement
//! and expression. As in the paper (§3.2), this phase requires global
//! information about a section — e.g. a type mismatch between a
//! function's return value and a call site can only be found by looking
//! at the complete section program — which is why the paper runs it
//! sequentially before the parallel phases.
//!
//! The result is a [`CheckedModule`]: the AST plus, for every function,
//! a [`SymbolTable`] and for every section a signature map. The IR
//! lowering in `warp-ir` consumes these to rediscover expression types
//! without re-running the full checker.

use crate::ast::*;
use crate::diag::DiagnosticBag;
use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What kind of entity a symbol names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymbolKind {
    /// A formal parameter.
    Param,
    /// A local variable.
    Var,
}

/// A resolved symbol: a parameter or local variable of one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Symbol {
    /// The symbol's name.
    pub name: String,
    /// Its declared type.
    pub ty: Type,
    /// Parameter or variable.
    pub kind: SymbolKind,
    /// Declaration site.
    pub span: Span,
}

/// The symbols of one function, keyed by name.
///
/// Warp functions have a single flat scope (parameters + locals); there
/// are no nested blocks with shadowing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SymbolTable {
    symbols: HashMap<String, Symbol>,
    order: Vec<String>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a symbol; returns the previous symbol with the same name
    /// if there was one (a redeclaration).
    pub fn insert(&mut self, sym: Symbol) -> Option<Symbol> {
        let prev = self.symbols.insert(sym.name.clone(), sym.clone());
        if prev.is_none() {
            self.order.push(sym.name);
        }
        prev
    }

    /// Looks up a symbol by name.
    pub fn get(&self, name: &str) -> Option<&Symbol> {
        self.symbols.get(name)
    }

    /// Iterates over symbols in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &Symbol> {
        self.order.iter().map(|n| &self.symbols[n])
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// `true` if the table has no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Total data-memory words needed by all symbols (arrays dominate).
    pub fn data_words(&self) -> u64 {
        self.iter().map(|s| s.ty.size_words()).sum()
    }
}

/// The externally visible signature of a function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Signature {
    /// Function name.
    pub name: String,
    /// Parameter types in order.
    pub params: Vec<Type>,
    /// Return type (`None` for procedures).
    pub ret: Option<Type>,
}

/// Per-section check results: signatures of all functions in the
/// section plus each function's symbol table (parallel to
/// `Section::functions`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckedSection {
    /// Signature of every function, keyed by name. Calls may only
    /// target functions in the same section (or builtins).
    pub signatures: HashMap<String, Signature>,
    /// Symbol tables, one per function, in source order.
    pub symbol_tables: Vec<SymbolTable>,
}

/// A fully checked module: AST plus all binding/type information.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckedModule {
    /// The underlying AST.
    pub module: Module,
    /// Check results per section, parallel to `module.sections`.
    pub sections: Vec<CheckedSection>,
}

impl CheckedModule {
    /// The symbol table for function `fi` of section `si`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn symbols(&self, si: usize, fi: usize) -> &SymbolTable {
        &self.sections[si].symbol_tables[fi]
    }
}

/// Type-checks `module`.
///
/// Always returns the (possibly only partially checked) results plus a
/// diagnostic bag; callers should treat the module as uncompilable when
/// [`DiagnosticBag::has_errors`] is true — the paper's master process
/// aborts the parallel compilation in that case.
pub fn check(module: Module) -> (CheckedModule, DiagnosticBag) {
    let mut diags = DiagnosticBag::new();
    let mut sections = Vec::with_capacity(module.sections.len());

    check_cell_ranges(&module, &mut diags);

    let mut seen_section_names: HashMap<&str, Span> = HashMap::new();
    for section in &module.sections {
        if let Some(&prev) = seen_section_names.get(section.name.as_str()) {
            diags.error(
                section.span,
                format!(
                    "duplicate section name `{}` (first declared at byte {})",
                    section.name, prev.start
                ),
            );
        } else {
            seen_section_names.insert(&section.name, section.span);
        }
        sections.push(check_section(section, &mut diags));
    }

    (CheckedModule { module, sections }, diags)
}

/// Checks one section in isolation, returning its [`CheckedSection`]
/// and the diagnostics it produced. Sections are independent (calls may
/// only target functions in the same section, §3.2), so the parallel
/// driver fans sections out to workers and recombines the results with
/// [`merge_checked`].
pub fn check_section_isolated(section: &Section) -> (CheckedSection, DiagnosticBag) {
    let mut diags = DiagnosticBag::new();
    let checked = check_section(section, &mut diags);
    (checked, diags)
}

/// Merges per-section results from [`check_section_isolated`] into the
/// output [`check`] would produce for the whole module: the module-wide
/// checks (cell-range overlap, duplicate section names) run here, and
/// diagnostics are recombined in exactly the sequential order.
///
/// `parts` must be parallel to `module.sections`.
///
/// # Panics
///
/// Panics if `parts` and `module.sections` have different lengths.
pub fn merge_checked(
    module: Module,
    parts: Vec<(CheckedSection, DiagnosticBag)>,
) -> (CheckedModule, DiagnosticBag) {
    assert_eq!(module.sections.len(), parts.len(), "one part per section");
    let mut diags = DiagnosticBag::new();
    check_cell_ranges(&module, &mut diags);
    let mut seen_section_names: HashMap<&str, Span> = HashMap::new();
    let mut sections = Vec::with_capacity(parts.len());
    for (section, (checked, part_diags)) in module.sections.iter().zip(parts) {
        if let Some(&prev) = seen_section_names.get(section.name.as_str()) {
            diags.error(
                section.span,
                format!(
                    "duplicate section name `{}` (first declared at byte {})",
                    section.name, prev.start
                ),
            );
        } else {
            seen_section_names.insert(&section.name, section.span);
        }
        diags.extend(part_diags);
        sections.push(checked);
    }
    drop(seen_section_names);
    (CheckedModule { module, sections }, diags)
}

fn check_cell_ranges(module: &Module, diags: &mut DiagnosticBag) {
    let mut ranges: Vec<(u32, u32, &str, Span)> = module
        .sections
        .iter()
        .map(|s| (s.first_cell, s.last_cell, s.name.as_str(), s.span))
        .collect();
    ranges.sort_by_key(|r| r.0);
    for pair in ranges.windows(2) {
        let (_, a_end, a_name, _) = pair[0];
        let (b_start, _, b_name, b_span) = pair[1];
        if b_start <= a_end {
            diags.error(
                b_span,
                format!("section `{b_name}` overlaps cells with section `{a_name}`"),
            );
        }
    }
}

fn check_section(section: &Section, diags: &mut DiagnosticBag) -> CheckedSection {
    // Collect signatures first: forward calls within a section are legal.
    let mut signatures: HashMap<String, Signature> = HashMap::new();
    for f in &section.functions {
        if builtin_arity(&f.name).is_some() {
            diags.error(f.span, format!("function `{}` shadows a builtin", f.name));
        }
        if signatures.contains_key(&f.name) {
            diags.error(
                f.span,
                format!(
                    "duplicate function `{}` in section `{}`",
                    f.name, section.name
                ),
            );
            continue;
        }
        signatures.insert(
            f.name.clone(),
            Signature {
                name: f.name.clone(),
                params: f.params.iter().map(|p| p.ty.clone()).collect(),
                ret: f.ret.clone(),
            },
        );
    }

    let mut symbol_tables = Vec::with_capacity(section.functions.len());
    for f in &section.functions {
        symbol_tables.push(check_function(f, &signatures, diags));
    }

    CheckedSection {
        signatures,
        symbol_tables,
    }
}

fn check_function(
    f: &Function,
    signatures: &HashMap<String, Signature>,
    diags: &mut DiagnosticBag,
) -> SymbolTable {
    let mut table = SymbolTable::new();
    for p in &f.params {
        if !p.ty.is_scalar() {
            // The calling convention passes arguments in registers, so
            // parameters must be scalar (arrays are local to a function).
            diags.error(
                p.span,
                format!("parameter `{}` has array type `{}`", p.name, p.ty),
            );
        }
        let sym = Symbol {
            name: p.name.clone(),
            ty: p.ty.clone(),
            kind: SymbolKind::Param,
            span: p.span,
        };
        if table.insert(sym).is_some() {
            diags.error(p.span, format!("duplicate parameter `{}`", p.name));
        }
    }
    for v in &f.vars {
        let sym = Symbol {
            name: v.name.clone(),
            ty: v.ty.clone(),
            kind: SymbolKind::Var,
            span: v.span,
        };
        if table.insert(sym).is_some() {
            diags.error(v.span, format!("duplicate declaration of `{}`", v.name));
        }
    }

    if let Some(ret) = &f.ret {
        if !ret.is_scalar() {
            diags.error(
                f.span,
                format!("function `{}` returns an array type", f.name),
            );
        }
    }

    let mut ck = FnChecker {
        table: &table,
        signatures,
        ret: f.ret.clone(),
        diags,
        fn_name: &f.name,
    };
    ck.stmts(&f.body);

    if f.ret.is_some() && !always_returns(&f.body) {
        diags.warning(
            f.span,
            format!(
                "function `{}` may reach end of body without returning a value",
                f.name
            ),
        );
    }

    table
}

/// Conservative all-paths-return analysis.
fn always_returns(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Return { .. } => true,
        Stmt::If {
            arms, else_body, ..
        } => {
            !else_body.is_empty()
                && arms.iter().all(|a| always_returns(&a.body))
                && always_returns(else_body)
        }
        _ => false,
    })
}

struct FnChecker<'a> {
    table: &'a SymbolTable,
    signatures: &'a HashMap<String, Signature>,
    ret: Option<Type>,
    diags: &'a mut DiagnosticBag,
    fn_name: &'a str,
}

impl FnChecker<'_> {
    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let target_ty = self.lvalue_type(target);
                let value_ty = self.expr(value);
                if let (Some(t), Some(v)) = (target_ty, value_ty) {
                    if !assignable(&t, &v) {
                        self.diags.error(
                            value.span,
                            format!("cannot assign `{v}` to location of type `{t}`"),
                        );
                    }
                }
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for arm in arms {
                    self.expect_bool(&arm.cond, "if condition");
                    self.stmts(&arm.body);
                }
                self.stmts(else_body);
            }
            Stmt::While { cond, body, .. } => {
                self.expect_bool(cond, "while condition");
                self.stmts(body);
            }
            Stmt::For {
                var,
                from,
                to,
                by,
                body,
                span,
                ..
            } => {
                match self.table.get(var) {
                    None => self
                        .diags
                        .error(*span, format!("loop variable `{var}` is not declared")),
                    Some(sym) if sym.ty != Type::int() => self.diags.error(
                        *span,
                        format!("loop variable `{var}` must be `int`, found `{}`", sym.ty),
                    ),
                    Some(_) => {}
                }
                self.expect_int(from, "loop bound");
                self.expect_int(to, "loop bound");
                if let Some(by) = by {
                    self.expect_int(by, "loop step");
                    if by.as_int_lit() == Some(0) {
                        self.diags.error(by.span, "loop step must be nonzero");
                    }
                }
                self.stmts(body);
            }
            Stmt::Call { name, args, span } => {
                // A call statement discards the value; calling a function
                // (not procedure) here is legal but pointless → warning.
                if let Some(ret) = self.check_call(name, args, *span) {
                    if ret.is_some() {
                        self.diags
                            .warning(*span, format!("result of function `{name}` is discarded"));
                    }
                }
            }
            Stmt::Send { value, .. } => {
                if let Some(ty) = self.expr(value) {
                    if !ty.is_scalar() {
                        self.diags.error(value.span, "can only send scalar values");
                    }
                }
            }
            Stmt::Receive { target, .. } => {
                if let Some(ty) = self.lvalue_type(target) {
                    if !ty.is_scalar() {
                        self.diags
                            .error(target.span, "can only receive into a scalar location");
                    }
                }
            }
            Stmt::Return { value, span } => match (self.ret.clone(), value) {
                (Some(expected), Some(e)) => {
                    let expected = &expected;
                    if let Some(actual) = self.expr(e) {
                        if !assignable(expected, &actual) {
                            self.diags.error(
                                e.span,
                                format!(
                                    "function `{}` returns `{expected}` but this value is `{actual}`",
                                    self.fn_name
                                ),
                            );
                        }
                    }
                }
                (Some(expected), None) => self.diags.error(
                    *span,
                    format!(
                        "function `{}` must return a `{expected}` value",
                        self.fn_name
                    ),
                ),
                (None, Some(e)) => self.diags.error(
                    e.span,
                    format!("procedure `{}` cannot return a value", self.fn_name),
                ),
                (None, None) => {}
            },
        }
    }

    fn expect_bool(&mut self, e: &Expr, what: &str) {
        if let Some(ty) = self.expr(e) {
            if ty != Type::bool() {
                self.diags
                    .error(e.span, format!("{what} must be `bool`, found `{ty}`"));
            }
        }
    }

    fn expect_int(&mut self, e: &Expr, what: &str) {
        if let Some(ty) = self.expr(e) {
            if ty != Type::int() {
                self.diags
                    .error(e.span, format!("{what} must be `int`, found `{ty}`"));
            }
        }
    }

    /// Type of an lvalue after applying its subscripts.
    fn lvalue_type(&mut self, lv: &LValue) -> Option<Type> {
        let Some(sym) = self.table.get(&lv.name) else {
            self.diags
                .error(lv.span, format!("undeclared variable `{}`", lv.name));
            // Still check subscripts for nested errors.
            for idx in &lv.indices {
                self.expr(idx);
            }
            return None;
        };
        let ty = sym.ty.clone();
        if lv.indices.len() > ty.dims.len() {
            self.diags.error(
                lv.span,
                format!(
                    "`{}` has {} dimension(s) but {} subscript(s) given",
                    lv.name,
                    ty.dims.len(),
                    lv.indices.len()
                ),
            );
            return None;
        }
        for idx in &lv.indices {
            self.expect_int(idx, "array subscript");
            // Static bounds check for constant subscripts.
            if let Some(c) = idx.as_int_lit() {
                let dim_pos = lv
                    .indices
                    .iter()
                    .position(|i| std::ptr::eq(i, idx))
                    .unwrap();
                let dim = ty.dims[dim_pos];
                if c < 0 || c as u64 >= dim as u64 {
                    self.diags.error(
                        idx.span,
                        format!("constant subscript {c} out of bounds for dimension of size {dim}"),
                    );
                }
            }
        }
        Some(Type {
            scalar: ty.scalar,
            dims: ty.dims[lv.indices.len()..].to_vec(),
        })
    }

    /// Checks a call and returns `Some(return type)` when the callee is
    /// known (builtin or section function), `None` after reporting an
    /// error.
    #[allow(clippy::type_complexity)]
    fn check_call(&mut self, name: &str, args: &[Expr], span: Span) -> Option<Option<Type>> {
        let arg_types: Vec<Option<Type>> = args.iter().map(|a| self.expr(a)).collect();
        if let Some(arity) = builtin_arity(name) {
            if args.len() != arity {
                self.diags.error(
                    span,
                    format!(
                        "builtin `{name}` takes {arity} argument(s), {} given",
                        args.len()
                    ),
                );
                return None;
            }
            for (a, ty) in args.iter().zip(&arg_types) {
                if let Some(ty) = ty {
                    if !ty.is_scalar() || ty.scalar == ScalarType::Bool {
                        self.diags.error(
                            a.span,
                            format!(
                                "builtin `{name}` requires numeric scalar arguments, found `{ty}`"
                            ),
                        );
                    }
                }
            }
            let ret = match name {
                "int" => Type::int(),
                "floor" => Type::int(),
                "abs" | "min" | "max" => {
                    // Polymorphic over int/float: result is float if any arg is.
                    let any_float = arg_types
                        .iter()
                        .flatten()
                        .any(|t| t.scalar == ScalarType::Float);
                    if any_float {
                        Type::float()
                    } else {
                        Type::int()
                    }
                }
                _ => Type::float(),
            };
            return Some(Some(ret));
        }
        let Some(sig) = self.signatures.get(name) else {
            self.diags.error(
                span,
                format!("call to unknown function `{name}` (functions may only call functions in the same section)"),
            );
            return None;
        };
        if sig.params.len() != args.len() {
            self.diags.error(
                span,
                format!(
                    "function `{name}` takes {} argument(s), {} given",
                    sig.params.len(),
                    args.len()
                ),
            );
            return None;
        }
        for ((a, expected), actual) in args.iter().zip(&sig.params).zip(&arg_types) {
            if let Some(actual) = actual {
                if !assignable(expected, actual) {
                    self.diags.error(
                        a.span,
                        format!(
                            "argument type `{actual}` does not match parameter type `{expected}`"
                        ),
                    );
                }
            }
        }
        Some(sig.ret.clone())
    }

    /// Infers the type of an expression, reporting errors along the way.
    fn expr(&mut self, e: &Expr) -> Option<Type> {
        match &e.kind {
            ExprKind::IntLit(_) => Some(Type::int()),
            ExprKind::FloatLit(_) => Some(Type::float()),
            ExprKind::BoolLit(_) => Some(Type::bool()),
            ExprKind::LValue(lv) => self.lvalue_type(lv),
            ExprKind::Unary { op, expr } => {
                let ty = self.expr(expr)?;
                match op {
                    UnOp::Neg => {
                        if ty == Type::int() || ty == Type::float() {
                            Some(ty)
                        } else {
                            self.diags
                                .error(e.span, format!("cannot negate a value of type `{ty}`"));
                            None
                        }
                    }
                    UnOp::Not => {
                        if ty == Type::bool() {
                            Some(ty)
                        } else {
                            self.diags.error(
                                e.span,
                                format!("`not` requires a `bool` operand, found `{ty}`"),
                            );
                            None
                        }
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.expr(lhs);
                let rt = self.expr(rhs);
                let (lt, rt) = (lt?, rt?);
                self.binary_type(*op, &lt, &rt, e.span)
            }
            ExprKind::Call { name, args } => match self.check_call(name, args, e.span)? {
                Some(ret) => Some(ret),
                None => {
                    self.diags.error(
                        e.span,
                        format!("procedure `{name}` does not return a value"),
                    );
                    None
                }
            },
        }
    }

    fn binary_type(&mut self, op: BinOp, lt: &Type, rt: &Type, span: Span) -> Option<Type> {
        if !lt.is_scalar() || !rt.is_scalar() {
            self.diags.error(span, "operators require scalar operands");
            return None;
        }
        let numeric = |t: &Type| t.scalar == ScalarType::Int || t.scalar == ScalarType::Float;
        match op {
            BinOp::And | BinOp::Or => {
                if lt == &Type::bool() && rt == &Type::bool() {
                    Some(Type::bool())
                } else {
                    self.diags.error(
                        span,
                        format!("`{op}` requires `bool` operands, found `{lt}` and `{rt}`"),
                    );
                    None
                }
            }
            BinOp::Eq | BinOp::Ne => {
                if (numeric(lt) && numeric(rt)) || (lt == &Type::bool() && rt == &Type::bool()) {
                    Some(Type::bool())
                } else {
                    self.diags
                        .error(span, format!("cannot compare `{lt}` with `{rt}`"));
                    None
                }
            }
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                if numeric(lt) && numeric(rt) {
                    Some(Type::bool())
                } else {
                    self.diags
                        .error(span, format!("cannot order `{lt}` and `{rt}`"));
                    None
                }
            }
            BinOp::IDiv | BinOp::Mod => {
                if lt == &Type::int() && rt == &Type::int() {
                    Some(Type::int())
                } else {
                    self.diags.error(
                        span,
                        format!("`{op}` requires `int` operands, found `{lt}` and `{rt}`"),
                    );
                    None
                }
            }
            BinOp::Div => {
                if numeric(lt) && numeric(rt) {
                    Some(Type::float())
                } else {
                    self.diags.error(
                        span,
                        format!("`/` requires numeric operands, found `{lt}` and `{rt}`"),
                    );
                    None
                }
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul => {
                if numeric(lt) && numeric(rt) {
                    if lt.scalar == ScalarType::Float || rt.scalar == ScalarType::Float {
                        Some(Type::float())
                    } else {
                        Some(Type::int())
                    }
                } else {
                    self.diags.error(
                        span,
                        format!("`{op}` requires numeric operands, found `{lt}` and `{rt}`"),
                    );
                    None
                }
            }
        }
    }
}

/// `true` if a value of type `from` may be stored in a location of type
/// `to`: exact match, or the implicit `int` → `float` promotion.
pub fn assignable(to: &Type, from: &Type) -> bool {
    if to == from {
        return true;
    }
    to.is_scalar()
        && from.is_scalar()
        && to.scalar == ScalarType::Float
        && from.scalar == ScalarType::Int
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> DiagnosticBag {
        let out = parse(src);
        assert!(
            !out.diagnostics.has_errors(),
            "parse failed: {:?}",
            out.diagnostics
        );
        let (_, diags) = check(out.module);
        diags
    }

    fn wrap(body: &str) -> String {
        format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; v: float[8]; i: int; b: bool; begin {body} end; end;"
        )
    }

    /// Per-section isolated checking merged via `merge_checked` must be
    /// indistinguishable from the whole-module `check`.
    fn assert_merged_matches(src: &str) {
        let module = parse(src).module;
        let (seq_checked, seq_diags) = check(module.clone());
        let parts: Vec<_> = module.sections.iter().map(check_section_isolated).collect();
        let (par_checked, par_diags) = merge_checked(module, parts);
        assert_eq!(
            par_checked, seq_checked,
            "checked module mismatch on {src:?}"
        );
        assert_eq!(
            par_diags.iter().collect::<Vec<_>>(),
            seq_diags.iter().collect::<Vec<_>>(),
            "diagnostics mismatch on {src:?}"
        );
    }

    #[test]
    fn merge_checked_matches_sequential_check() {
        // Clean multi-section module.
        assert_merged_matches(
            "module m;\n\
             section a on cells 0..1; function f(x: float): float begin return x; end; end;\n\
             section b on cells 2..3; function g() begin f2(); end; function f2() begin return; end; end;",
        );
        // Duplicate section names + overlapping cells + per-function
        // warnings: the module-wide and per-section diagnostics must
        // interleave exactly as `check` emits them.
        assert_merged_matches(
            "module m;\n\
             section a on cells 0..1; function f(): float begin return 1.0; end; end;\n\
             section a on cells 1..2; function g(x: int): int var u: int; begin return x; end; end;",
        );
        // Errors inside functions (undeclared variable, bad call).
        assert_merged_matches(&wrap("zz := 1.0; return x;"));
    }

    #[test]
    fn clean_program_checks() {
        let d = check_src(&wrap("t := x * 2.0; v[n] := t; return v[0] + float(n);"));
        assert!(!d.has_errors(), "{d:?}");
    }

    #[test]
    fn undeclared_variable() {
        let d = check_src(&wrap("zz := 1.0; return x;"));
        assert!(d.has_errors());
    }

    #[test]
    fn int_promotes_to_float() {
        let d = check_src(&wrap("t := n; return t;"));
        assert!(!d.has_errors(), "{d:?}");
    }

    #[test]
    fn float_does_not_demote_to_int() {
        let d = check_src(&wrap("i := x; return x;"));
        assert!(d.has_errors());
    }

    #[test]
    fn condition_must_be_bool() {
        let d = check_src(&wrap("if n then t := 1.0; end; return t;"));
        assert!(d.has_errors());
        let d = check_src(&wrap("if n > 0 then t := 1.0; end; return t;"));
        assert!(!d.has_errors(), "{d:?}");
    }

    #[test]
    fn loop_var_must_be_declared_int() {
        let d = check_src(&wrap("for t := 0 to 3 do i := 0; end; return x;"));
        assert!(d.has_errors());
        let d = check_src(&wrap("for i := 0 to 3 do t := 0.0; end; return x;"));
        assert!(!d.has_errors(), "{d:?}");
    }

    #[test]
    fn zero_step_rejected() {
        let d = check_src(&wrap("for i := 0 to 3 by 0 do t := 0.0; end; return x;"));
        assert!(d.has_errors());
    }

    #[test]
    fn subscript_count_checked() {
        let d = check_src(&wrap("v[0][1] := 1.0; return x;"));
        assert!(d.has_errors());
    }

    #[test]
    fn constant_subscript_bounds_checked() {
        let d = check_src(&wrap("v[8] := 1.0; return x;"));
        assert!(d.has_errors());
        let d = check_src(&wrap("v[7] := 1.0; return x;"));
        assert!(!d.has_errors(), "{d:?}");
    }

    #[test]
    fn idiv_requires_ints() {
        let d = check_src(&wrap("t := x div 2; return t;"));
        assert!(d.has_errors());
        let d = check_src(&wrap("i := n div 2; return x;"));
        assert!(!d.has_errors(), "{d:?}");
    }

    #[test]
    fn slash_yields_float() {
        let d = check_src(&wrap("i := n / 2; return x;"));
        assert!(d.has_errors()); // float can't be stored into int
        let d = check_src(&wrap("t := n / 2; return x;"));
        assert!(!d.has_errors(), "{d:?}");
    }

    #[test]
    fn return_type_checked() {
        let d = check_src(
            "module m; section a on cells 0..0; function f(): int begin return true; end; end;",
        );
        assert!(d.has_errors());
    }

    #[test]
    fn missing_return_warns() {
        let d = check_src(
            "module m; section a on cells 0..0; function f(): int var i: int; begin i := 1; end; end;",
        );
        assert!(!d.has_errors());
        assert!(!d.is_empty());
    }

    #[test]
    fn call_within_section_ok_cross_section_error() {
        let ok = check_src(
            "module m; section a on cells 0..0; \
             function g(y: float): float begin return y; end; \
             function f(): float begin return g(1.0); end; end;",
        );
        assert!(!ok.has_errors(), "{ok:?}");
        let bad = check_src(
            "module m; \
             section a on cells 0..0; function g(y: float): float begin return y; end; end; \
             section b on cells 1..1; function f(): float begin return g(1.0); end; end;",
        );
        assert!(bad.has_errors());
    }

    #[test]
    fn builtin_calls() {
        let d = check_src(&wrap(
            "t := sqrt(x) + min(x, 2.0); i := floor(x); return t;",
        ));
        assert!(!d.has_errors(), "{d:?}");
        let d = check_src(&wrap("t := sqrt(x, x); return t;"));
        assert!(d.has_errors());
    }

    #[test]
    fn overlapping_cell_ranges_rejected() {
        let d = check_src(
            "module m; \
             section a on cells 0..4; function f() begin return; end; end; \
             section b on cells 3..9; function g() begin return; end; end;",
        );
        assert!(d.has_errors());
    }

    #[test]
    fn duplicate_names_rejected() {
        let d = check_src(
            "module m; section a on cells 0..0; \
             function f() begin return; end; function f() begin return; end; end;",
        );
        assert!(d.has_errors());

        let d = check_src(
            "module m; section a on cells 0..1; function f(x: int, x: int) begin return; end; end;",
        );
        assert!(d.has_errors());
    }

    #[test]
    fn arity_mismatch() {
        let d = check_src(
            "module m; section a on cells 0..0; \
             function g(y: float): float begin return y; end; \
             function f(): float begin return g(1.0, 2.0); end; end;",
        );
        assert!(d.has_errors());
    }

    #[test]
    fn procedure_in_expression_is_error() {
        let d = check_src(
            "module m; section a on cells 0..0; \
             function p() begin return; end; \
             function f(): float var t: float; begin t := p(); return t; end; end;",
        );
        assert!(d.has_errors());
    }

    #[test]
    fn discarded_function_result_warns() {
        let d = check_src(
            "module m; section a on cells 0..0; \
             function g(): float begin return 1.0; end; \
             function f() begin g(); return; end; end;",
        );
        assert!(!d.has_errors());
        assert!(!d.is_empty());
    }

    #[test]
    fn send_receive_types() {
        let d = check_src(&wrap("send(right, x + 1.0); receive(left, t); return t;"));
        assert!(!d.has_errors(), "{d:?}");
        let d = check_src(&wrap("send(right, v); return x;"));
        assert!(d.has_errors());
    }

    #[test]
    fn symbol_table_data_words() {
        let out = parse(&wrap("return x;"));
        let (checked, d) = check(out.module);
        assert!(!d.has_errors());
        // x(1) + n(1) + t(1) + v(8) + i(1) + b(1) = 13 words
        assert_eq!(checked.symbols(0, 0).data_words(), 13);
    }
}
