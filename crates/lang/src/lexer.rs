//! Lexer for the Warp (W2-style) language.
//!
//! Converts source text into a vector of [`Token`]s. Comments come in
//! two forms: `-- line comment` and `{ block comment }` (Pascal style,
//! non-nesting). The lexer never fails catastrophically: invalid
//! characters produce error diagnostics and are skipped, so the parser
//! always receives a well-formed (if possibly truncated) stream.

use crate::diag::DiagnosticBag;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Result of lexing: the token stream plus any diagnostics produced.
#[derive(Debug, Clone)]
pub struct LexOutput {
    /// The tokens, always terminated by a single [`TokenKind::Eof`].
    pub tokens: Vec<Token>,
    /// Lexical errors (invalid characters, malformed numbers, unterminated
    /// comments). If non-empty, the tokens cover only the valid prefix
    /// portions of the input.
    pub diagnostics: DiagnosticBag,
}

/// Lexes `source` into tokens.
///
/// The returned token stream is always terminated by [`TokenKind::Eof`];
/// errors are reported through the output's diagnostic bag rather than
/// by failing, so `lex` is total.
pub fn lex(source: &str) -> LexOutput {
    Lexer::new(source).run()
}

struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
    tokens: Vec<Token>,
    diagnostics: DiagnosticBag,
}

impl<'src> Lexer<'src> {
    fn new(src: &'src str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
            diagnostics: DiagnosticBag::new(),
        }
    }

    fn run(mut self) -> LexOutput {
        while self.pos < self.bytes.len() {
            self.skip_trivia();
            if self.pos >= self.bytes.len() {
                break;
            }
            let start = self.pos;
            let b = self.bytes[self.pos];
            match b {
                b'0'..=b'9' => self.number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident_or_keyword(),
                _ => self.punct(),
            }
            // Defensive: every branch must make progress.
            debug_assert!(self.pos > start, "lexer failed to advance at byte {start}");
        }
        let eof = Span::point(self.src.len() as u32);
        self.tokens.push(Token::new(TokenKind::Eof, eof));
        LexOutput {
            tokens: self.tokens,
            diagnostics: self.diagnostics,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn span_from(&self, start: usize) -> Span {
        Span::new(start as u32, self.pos as u32)
    }

    fn emit(&mut self, kind: TokenKind, start: usize) {
        let span = self.span_from(start);
        self.tokens.push(Token::new(kind, span));
    }

    /// Skips whitespace and both comment forms.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'{') => {
                    let start = self.pos;
                    self.bump();
                    let mut closed = false;
                    while let Some(b) = self.bump() {
                        if b == b'}' {
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        self.diagnostics
                            .error(self.span_from(start), "unterminated block comment");
                    }
                }
                _ => break,
            }
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let mut is_float = false;
        // A '.' starts a fraction only if not part of a `..` range token.
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.bump(); // '.'
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mut ahead = self.pos + 1;
            if matches!(self.bytes.get(ahead), Some(b'+' | b'-')) {
                ahead += 1;
            }
            if matches!(self.bytes.get(ahead), Some(b'0'..=b'9')) {
                is_float = true;
                self.pos = ahead;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            match text.parse::<f64>() {
                Ok(v) => self.emit(TokenKind::FloatLit(v), start),
                Err(_) => {
                    self.diagnostics.error(
                        self.span_from(start),
                        format!("invalid float literal `{text}`"),
                    );
                }
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => self.emit(TokenKind::IntLit(v), start),
                Err(_) => {
                    self.diagnostics.error(
                        self.span_from(start),
                        format!("integer literal `{text}` out of range"),
                    );
                }
            }
        }
    }

    fn ident_or_keyword(&mut self) {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_string()));
        self.emit(kind, start);
    }

    fn punct(&mut self) {
        let start = self.pos;
        let b = self.bump().expect("punct called at EOF");
        let kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semicolon,
            b'+' => TokenKind::Plus,
            b'-' => TokenKind::Minus,
            b'*' => TokenKind::Star,
            b'/' => TokenKind::Slash,
            b'=' => TokenKind::Eq,
            b':' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Assign
                } else {
                    TokenKind::Colon
                }
            }
            b'.' => {
                if self.peek() == Some(b'.') {
                    self.bump();
                    TokenKind::DotDot
                } else {
                    self.diagnostics
                        .error(self.span_from(start), "unexpected character `.`");
                    return;
                }
            }
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    TokenKind::Le
                }
                Some(b'>') => {
                    self.bump();
                    TokenKind::Ne
                }
                _ => TokenKind::Lt,
            },
            b'>' => {
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            other => {
                self.diagnostics.error(
                    self.span_from(start),
                    format!("unexpected character `{}`", other as char),
                );
                return;
            }
        };
        self.emit(kind, start);
    }
}

// ---- chunked lexing -----------------------------------------------------
//
// The parallel driver cuts the source into chunks, lexes them on
// separate workers, and concatenates the results. Correctness rests on
// the cut points: a cut is only taken immediately after a newline that
// lies outside every comment, so no token, line comment, or block
// comment can straddle a boundary. A newline outside a comment is
// always between tokens (no Warp token contains a newline), which makes
// `lex(chunk)` on each piece — with spans shifted by the chunk's base
// offset — produce exactly the tokens and diagnostics `lex(source)`
// would for that region.

/// Positions at which `source` may be cut into independently lexable
/// chunks: a strictly increasing vector starting with `0` and ending
/// with `source.len()`, aiming for `chunks` pieces of roughly equal
/// size. Fewer boundaries are returned when the source has too few safe
/// cut points (pathologically, a giant block comment yields one chunk).
pub fn chunk_boundaries(source: &str, chunks: usize) -> Vec<usize> {
    let len = source.len();
    if chunks <= 1 || len == 0 {
        return vec![0, len];
    }
    // One pass tracking comment state; candidates are byte positions
    // just after a newline in normal (non-comment) state. A newline
    // also terminates a line comment, returning the state to normal,
    // so those positions qualify too.
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        BlockComment,
    }
    let bytes = source.as_bytes();
    let mut candidates: Vec<usize> = Vec::new();
    let mut state = State::Normal;
    let mut i = 0;
    while i < bytes.len() {
        match state {
            State::Normal => match bytes[i] {
                b'\n' => candidates.push(i + 1),
                b'-' if bytes.get(i + 1) == Some(&b'-') => state = State::LineComment,
                b'{' => state = State::BlockComment,
                _ => {}
            },
            State::LineComment => {
                if bytes[i] == b'\n' {
                    state = State::Normal;
                    candidates.push(i + 1);
                }
            }
            State::BlockComment => {
                if bytes[i] == b'}' {
                    state = State::Normal;
                }
            }
        }
        i += 1;
    }
    let mut bounds = vec![0];
    for k in 1..chunks {
        let target = len * k / chunks;
        // Smallest safe cut at or after the equal-size target.
        let pos = match candidates.binary_search(&target) {
            Ok(i) | Err(i) => i,
        };
        if let Some(&cut) = candidates.get(pos) {
            if cut > *bounds.last().expect("nonempty") && cut < len {
                bounds.push(cut);
            }
        }
    }
    bounds.push(len);
    bounds
}

/// Lexes the chunk `source[start..end]` as if it were lexed in place:
/// token and diagnostic spans are absolute positions in `source`. The
/// returned token vector carries **no** EOF terminator — chunks are
/// meant to be concatenated by [`merge_lexed_chunks`].
///
/// `start` and `end` must come from [`chunk_boundaries`]; an arbitrary
/// cut can split a token or comment and change what is lexed.
pub fn lex_chunk(source: &str, start: usize, end: usize) -> (Vec<Token>, DiagnosticBag) {
    let out = lex(&source[start..end]);
    let base = start as u32;
    let mut tokens = out.tokens;
    let eof = tokens.pop();
    debug_assert!(matches!(eof.map(|t| t.kind), Some(TokenKind::Eof)));
    for t in &mut tokens {
        t.span = Span::new(t.span.start + base, t.span.end + base);
    }
    let diagnostics = out
        .diagnostics
        .into_iter()
        .map(|mut d| {
            d.span = Span::new(d.span.start + base, d.span.end + base);
            d
        })
        .collect();
    (tokens, diagnostics)
}

/// Concatenates chunk-lex results (in source order) into a [`LexOutput`]
/// equal to `lex(source)`: tokens from every chunk, one EOF token at
/// `source_len`, and diagnostics in source order.
pub fn merge_lexed_chunks(source_len: usize, parts: Vec<(Vec<Token>, DiagnosticBag)>) -> LexOutput {
    let mut tokens = Vec::with_capacity(parts.iter().map(|(t, _)| t.len()).sum::<usize>() + 1);
    let mut diagnostics = DiagnosticBag::new();
    for (part_tokens, part_diags) in parts {
        tokens.extend(part_tokens);
        diagnostics.extend(part_diags);
    }
    tokens.push(Token::new(TokenKind::Eof, Span::point(source_len as u32)));
    LexOutput {
        tokens,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let out = lex(src);
        assert!(
            out.diagnostics.is_empty(),
            "unexpected diagnostics: {:?}",
            out.diagnostics
        );
        out.tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn empty_source_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("module m;"),
            vec![
                TokenKind::Module,
                TokenKind::Ident("m".into()),
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 23 4.5 1e3 2.5e-2"),
            vec![
                TokenKind::IntLit(1),
                TokenKind::IntLit(23),
                TokenKind::FloatLit(4.5),
                TokenKind::FloatLit(1e3),
                TokenKind::FloatLit(2.5e-2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dotdot_after_integer_is_range() {
        assert_eq!(
            kinds("0..9"),
            vec![
                TokenKind::IntLit(0),
                TokenKind::DotDot,
                TokenKind::IntLit(9),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            kinds(":= <= >= <> < > = : .."),
            vec![
                TokenKind::Assign,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Colon,
                TokenKind::DotDot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_comments_are_skipped() {
        assert_eq!(
            kinds("a -- comment\nb"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn block_comments_are_skipped() {
        assert_eq!(
            kinds("a { anything \n at all } b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_reports_error() {
        let out = lex("a { oops");
        assert!(out.diagnostics.has_errors());
        assert_eq!(out.tokens.len(), 2); // `a` + EOF
    }

    #[test]
    fn invalid_character_reports_error_and_continues() {
        let out = lex("a # b");
        assert!(out.diagnostics.has_errors());
        let idents = out
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Ident(_)))
            .count();
        assert_eq!(idents, 2);
    }

    #[test]
    fn minus_alone_is_not_comment() {
        assert_eq!(
            kinds("a - b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Minus,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn spans_cover_lexemes() {
        let out = lex("foo := 12");
        assert_eq!(out.tokens[0].span, Span::new(0, 3));
        assert_eq!(out.tokens[1].span, Span::new(4, 6));
        assert_eq!(out.tokens[2].span, Span::new(7, 9));
    }

    #[test]
    fn bool_literals() {
        assert_eq!(
            kinds("true false"),
            vec![
                TokenKind::BoolLit(true),
                TokenKind::BoolLit(false),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn huge_integer_overflow_is_diagnosed() {
        let out = lex("99999999999999999999999");
        assert!(out.diagnostics.has_errors());
    }

    /// Chunked lexing through `chunk_boundaries` must be byte-identical
    /// to one-shot lexing: same tokens, same spans, same diagnostics.
    fn assert_chunked_equal(src: &str, chunks: usize) {
        let seq = lex(src);
        let bounds = chunk_boundaries(src, chunks);
        assert_eq!(*bounds.first().unwrap(), 0);
        assert_eq!(*bounds.last().unwrap(), src.len());
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1] || src.is_empty()),
            "{bounds:?}"
        );
        let parts: Vec<_> = bounds
            .windows(2)
            .map(|w| lex_chunk(src, w[0], w[1]))
            .collect();
        let merged = merge_lexed_chunks(src.len(), parts);
        assert_eq!(merged.tokens, seq.tokens, "chunks={chunks} src={src:?}");
        assert_eq!(
            merged.diagnostics.iter().collect::<Vec<_>>(),
            seq.diagnostics.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn chunked_lexing_matches_sequential() {
        let src = "module m;\nsection a on cells 0..1;\n-- comment with { brace\n\
                   function f(x: float): float\nvar acc: float;\n{ block\ncomment }\n\
                   begin\nacc := 1.0e-3 + 4..0;\nreturn acc;\nend;\nend;\n";
        for chunks in [1, 2, 3, 4, 8, 32] {
            assert_chunked_equal(src, chunks);
        }
    }

    #[test]
    fn chunked_lexing_matches_on_edge_inputs() {
        for src in [
            "",
            "\n\n\n",
            "a\n#\nb\n",                    // invalid char diagnostics
            "{ never closed\nacross lines", // unterminated block comment
            "x -- tail comment no newline",
            "1e--3\n2\n", // `--` right after a number
            "module m; -- all on one line, no safe cuts",
        ] {
            for chunks in [2, 4, 7] {
                assert_chunked_equal(src, chunks);
            }
        }
    }

    #[test]
    fn chunk_boundaries_never_cut_comments() {
        let src = "a\n{ long block comment\nwith newlines\ninside }\nb -- line\nc\n";
        let bounds = chunk_boundaries(src, 16);
        let open = src.find('{').unwrap();
        let close = src.find('}').unwrap();
        for &b in &bounds[1..bounds.len() - 1] {
            assert!(b <= open || b > close, "cut {b} inside block comment");
            assert_eq!(&src[b - 1..b], "\n", "cut {b} not after a newline");
        }
    }
}
