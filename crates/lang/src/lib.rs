//! # warp-lang
//!
//! Front end for the Warp (W2-style) language used by the PLDI 1989
//! paper *Parallel Compilation for a Parallel Machine* (Gross, Zobel &
//! Zolg). This crate implements compiler **phase 1**: lexing, parsing,
//! and semantic checking of a complete module.
//!
//! A Warp *module* consists of *section programs*, each mapped onto a
//! contiguous group of cells of the systolic array; a section contains
//! one or more *functions*, which are the units the parallel compiler
//! translates independently (paper §3.1).
//!
//! ```text
//! module S;
//! section s1 on cells 0..3;
//!   function f(x: float): float
//!   var acc: float; i: int;
//!   begin
//!     acc := 0.0;
//!     for i := 0 to 15 do acc := acc + x * x; end;
//!     send(right, acc);
//!     return acc;
//!   end;
//! end;
//! ```
//!
//! # Example
//!
//! ```
//! use warp_lang::phase1;
//!
//! let src = "module m; section a on cells 0..1;\n\
//!            function f(x: float): float begin return x * 2.0; end; end;";
//! let checked = phase1(src)?;
//! assert_eq!(checked.module.function_count(), 1);
//! # Ok::<(), warp_lang::Phase1Error>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod interp;
pub mod lexer;
pub mod lint;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod span;
pub mod token;

pub use ast::{Direction, Function, Module, ScalarType, Section, Type};
pub use diag::{Diagnostic, DiagnosticBag, Severity};
pub use interp::{AstInterp, EvalError, QueueIo, RtValue};
pub use lint::{lint_function, lint_module};
pub use sema::{CheckedModule, Signature, Symbol, SymbolTable};
pub use span::{LineCol, LineMap, Span};

use std::fmt;

/// Error returned by [`phase1`] when the module has lexical, syntactic,
/// or semantic errors.
#[derive(Debug, Clone)]
pub struct Phase1Error {
    /// All diagnostics, including non-errors, in source order.
    pub diagnostics: DiagnosticBag,
    /// Rendered messages (line:col resolved), one per line.
    pub rendered: String,
}

impl fmt::Display for Phase1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phase 1 failed with {} error(s):\n{}",
            self.diagnostics.error_count(),
            self.rendered.trim_end()
        )
    }
}

impl std::error::Error for Phase1Error {}

/// Runs compiler phase 1 — parse and semantic check — on `source`.
///
/// On success returns the [`CheckedModule`] (AST + symbol tables +
/// signatures) that later phases consume. This corresponds to the work
/// the paper's master process performs before it sets up the parallel
/// compilation; if it fails, the compilation is aborted (paper §3.2).
///
/// # Errors
///
/// Returns [`Phase1Error`] carrying every diagnostic if the module does
/// not lex, parse, or type-check.
pub fn phase1(source: &str) -> Result<CheckedModule, Phase1Error> {
    phase1_with_warnings(source).map(|(checked, _)| checked)
}

/// Like [`phase1`], but on success also returns the non-fatal
/// diagnostics (warnings and notes) the front end produced, instead of
/// dropping them. Drivers surface the warning count in their
/// compilation summaries.
///
/// # Errors
///
/// Returns [`Phase1Error`] carrying every diagnostic if the module does
/// not lex, parse, or type-check.
pub fn phase1_with_warnings(source: &str) -> Result<(CheckedModule, DiagnosticBag), Phase1Error> {
    let parsed = parser::parse(source);
    let mut diagnostics = parsed.diagnostics;
    let (checked, sema_diags) = sema::check(parsed.module);
    diagnostics.merge_sorted(sema_diags);
    if diagnostics.has_errors() {
        let rendered = diagnostics.render_all_with_source(source);
        Err(Phase1Error {
            diagnostics,
            rendered,
        })
    } else {
        Ok((checked, diagnostics))
    }
}

/// Phase-1 work measurement: deterministic counts of the work performed,
/// used by the host simulator to convert real compilations into
/// 1989-scale times.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ParseWork {
    /// Number of tokens lexed.
    pub tokens: usize,
    /// Number of AST statements produced.
    pub statements: usize,
    /// Number of bytes of source text.
    pub source_bytes: usize,
}

impl ParseWork {
    /// Measures the phase-1 work for `source` (tokens, statements,
    /// bytes). Runs the lexer and parser but not the checker.
    pub fn measure(source: &str) -> ParseWork {
        let lexed = lexer::lex(source);
        let tokens = lexed.tokens.len();
        let parsed = parser::parse(source);
        ParseWork {
            tokens,
            statements: statement_count(&parsed.module),
            source_bytes: source.len(),
        }
    }
}

/// Counts the statements of every function body in `module`, recursing
/// into `if`/`while`/`for` bodies — the statement metric of
/// [`ParseWork`]. Exposed so a driver that already holds a parsed
/// module (e.g. the parallel phase-1 path) can compute the same work
/// numbers without re-parsing the source.
pub fn statement_count(module: &ast::Module) -> usize {
    fn count_stmts(stmts: &[ast::Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| {
                1 + match s {
                    ast::Stmt::If {
                        arms, else_body, ..
                    } => {
                        arms.iter().map(|a| count_stmts(&a.body)).sum::<usize>()
                            + count_stmts(else_body)
                    }
                    ast::Stmt::While { body, .. } | ast::Stmt::For { body, .. } => {
                        count_stmts(body)
                    }
                    _ => 0,
                }
            })
            .sum()
    }
    module
        .sections
        .iter()
        .flat_map(|s| &s.functions)
        .map(|f| count_stmts(&f.body))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase1_accepts_valid_module() {
        let src = "module m; section a on cells 0..1;\n\
                   function f(x: float): float begin return x * 2.0; end; end;";
        let checked = phase1(src).expect("valid module");
        assert_eq!(checked.module.name, "m");
    }

    #[test]
    fn phase1_rejects_semantic_error_with_rendered_location() {
        let src = "module m; section a on cells 0..1;\n\
                   function f(): float begin return q; end; end;";
        let err = phase1(src).unwrap_err();
        assert!(err.diagnostics.has_errors());
        assert!(err.rendered.contains("error"));
        assert!(err.to_string().contains("phase 1 failed"));
    }

    #[test]
    fn phase1_collects_parse_and_sema_errors_together() {
        // `x :=` is a parse error; `return q` would be a semantic error.
        let src = "module m; section a on cells 0..1;\n\
                   function f(): float var t: float; begin t := ; return q; end; end;";
        let err = phase1(src).unwrap_err();
        assert!(err.diagnostics.error_count() >= 2, "{}", err.rendered);
    }

    #[test]
    fn parse_work_is_positive_and_monotone() {
        let small = "module m; section a on cells 0..1;\n\
                     function f(x: float): float begin return x; end; end;";
        let large = "module m; section a on cells 0..1;\n\
                     function f(x: float): float var i: int; acc: float; begin \
                     acc := 0.0; for i := 0 to 9 do acc := acc + x; end; return acc; end; end;";
        let w1 = ParseWork::measure(small);
        let w2 = ParseWork::measure(large);
        assert!(w1.tokens > 0 && w1.statements > 0);
        assert!(w2.tokens > w1.tokens);
        assert!(w2.statements > w1.statements);
    }
}
