//! Recursive-descent parser for the Warp (W2-style) language.
//!
//! Grammar (EBNF, `[]` optional, `{}` repetition):
//!
//! ```text
//! module   = "module" ident ";" section { section } EOF
//! section  = "section" ident "on" "cells" int ".." int ";"
//!            function { function } "end" ";"
//! function = "function" ident "(" [ param { "," param } ] ")"
//!            [ ":" type ] [ vardecls ] "begin" { stmt } "end" ";"
//! param    = ident ":" type
//! vardecls = "var" ( ident { "," ident } ":" type ";" ) { ... }
//! type     = ( "int" | "float" | "bool" ) { "[" int "]" }
//! stmt     = if | while | for | send | receive | return | assign | call
//! expr     = or-expr with Pascal-like precedence
//! ```
//!
//! The parser recovers from errors by synchronizing to the next
//! semicolon or block keyword, so a single typo does not hide every
//! later diagnostic (the paper's compiler likewise reports all phase-1
//! errors before aborting).

use crate::ast::*;
use crate::diag::DiagnosticBag;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Result of parsing: a best-effort module plus all diagnostics.
///
/// If [`ParseOutput::diagnostics`] contains errors the module may be
/// missing sections, functions or statements that failed to parse.
#[derive(Debug, Clone)]
pub struct ParseOutput {
    /// The parsed module. Present even when errors occurred, so tools
    /// can still inspect the recognizable parts.
    pub module: Module,
    /// Lexical and syntactic diagnostics.
    pub diagnostics: DiagnosticBag,
}

/// Parses `source` into a [`Module`], returning the module and any
/// diagnostics. This is compiler **phase 1** (minus semantic checking,
/// which lives in [`crate::sema`]).
pub fn parse(source: &str) -> ParseOutput {
    let lexed = lex(source);
    let mut parser = Parser {
        tokens: lexed.tokens,
        pos: 0,
        diagnostics: lexed.diagnostics,
    };
    let module = parser.module();
    ParseOutput {
        module,
        diagnostics: parser.diagnostics,
    }
}

// ---- split parsing ------------------------------------------------------
//
// The parallel driver splits the token stream at every `section`
// keyword and parses the pieces on separate workers. On a module that
// parses cleanly this is exact: `section` is only legal at a section
// start, so a clean sequential parse consumes exactly the tokens of
// each piece for each section. Error recovery *can* consume a `section`
// token (crossing a piece boundary), so callers must fall back to the
// sequential [`parse`] whenever the combined diagnostics contain errors
// — see `docs/PARALLELISM.md` for the contract.

/// A token stream split at every `section` keyword for piece-wise
/// parallel parsing. Produced by [`split_tokens`].
#[derive(Debug, Clone)]
pub struct TokenPieces {
    /// Everything before the first `section` token (the module header
    /// plus any stray tokens), terminated by a synthesized EOF.
    pub header: Vec<Token>,
    /// One piece per `section` token: the token through everything
    /// before the next `section` (trailing junk included), terminated
    /// by a synthesized EOF (the last piece keeps the real one).
    pub sections: Vec<Vec<Token>>,
}

/// Splits an EOF-terminated token stream at every `section` keyword.
pub fn split_tokens(tokens: Vec<Token>) -> TokenPieces {
    let starts: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t.kind, TokenKind::Section))
        .map(|(i, _)| i)
        .collect();
    if starts.is_empty() {
        return TokenPieces {
            header: tokens,
            sections: Vec::new(),
        };
    }
    let mut pieces: Vec<Vec<Token>> = Vec::with_capacity(starts.len());
    let mut rest = tokens;
    // Split back-to-front so each boundary is a cheap split_off; the
    // prefix is re-terminated with a synthesized EOF at the start of
    // the `section` keyword just split away, so the preceding piece's
    // parser stops exactly where the sequential parser would meet the
    // next section.
    for &s in starts.iter().rev() {
        let piece = rest.split_off(s);
        let eof_at = piece[0].span.start;
        rest.push(Token::new(TokenKind::Eof, Span::point(eof_at)));
        pieces.push(piece);
    }
    pieces.reverse();
    TokenPieces {
        header: rest,
        sections: pieces,
    }
}

/// Result of parsing a header piece via [`parse_header_piece`].
#[derive(Debug, Clone)]
pub struct HeaderParse {
    /// The module's name (`"<error>"` when missing).
    pub name: String,
    /// Span of the first token — the module span's start anchor.
    pub start: Span,
    /// Syntax diagnostics from the header tokens.
    pub diagnostics: DiagnosticBag,
}

/// Parses a [`TokenPieces::header`] piece: `module NAME ;` plus an
/// error for every stray token before the first section, exactly as the
/// sequential parser reports them.
pub fn parse_header_piece(header: Vec<Token>) -> HeaderParse {
    let mut p = Parser {
        tokens: header,
        pos: 0,
        diagnostics: DiagnosticBag::new(),
    };
    let start = p.peek_span();
    p.expect(&TokenKind::Module);
    let name = p
        .expect_ident("module")
        .map(|(n, _)| n)
        .unwrap_or_else(|| "<error>".to_string());
    p.expect(&TokenKind::Semicolon);
    while !p.at_eof() {
        // Only stray tokens can appear here: the split gave every
        // `section` keyword its own piece. This mirrors the sequential
        // module loop's non-`section` arm.
        p.diagnostics.error(
            p.peek_span(),
            format!("expected `section`, found {}", p.peek().describe()),
        );
        p.recover();
    }
    HeaderParse {
        name,
        start,
        diagnostics: p.diagnostics,
    }
}

/// Result of parsing one section piece via [`parse_section_piece`].
#[derive(Debug, Clone)]
pub struct PieceParse {
    /// The sections recognized in the piece (one, for a clean piece).
    pub sections: Vec<Section>,
    /// Syntax diagnostics from the piece's tokens.
    pub diagnostics: DiagnosticBag,
}

/// Parses one [`TokenPieces::sections`] piece — a `section` keyword
/// through everything before the next one — by running the sequential
/// parser's module loop over the piece's tokens.
pub fn parse_section_piece(tokens: Vec<Token>) -> PieceParse {
    let mut p = Parser {
        tokens,
        pos: 0,
        diagnostics: DiagnosticBag::new(),
    };
    let mut sections = Vec::new();
    while !p.at_eof() {
        if matches!(p.peek(), TokenKind::Section) {
            if let Some(s) = p.section() {
                sections.push(s);
            }
        } else {
            p.diagnostics.error(
                p.peek_span(),
                format!("expected `section`, found {}", p.peek().describe()),
            );
            p.recover();
        }
    }
    PieceParse {
        sections,
        diagnostics: p.diagnostics,
    }
}

/// Reassembles piece-parse results into a [`ParseOutput`] with the same
/// module and the same diagnostic order as the sequential [`parse`]:
/// lexer diagnostics first, then header diagnostics, then each piece's
/// diagnostics in source order. `eof_span` is the real EOF token's span
/// (the module span's end anchor).
pub fn assemble_pieces(
    lex_diagnostics: DiagnosticBag,
    header: HeaderParse,
    pieces: Vec<PieceParse>,
    eof_span: Span,
) -> ParseOutput {
    let mut diagnostics = lex_diagnostics;
    diagnostics.extend(header.diagnostics);
    let mut sections = Vec::new();
    for piece in pieces {
        sections.extend(piece.sections);
        diagnostics.extend(piece.diagnostics);
    }
    if sections.is_empty() {
        diagnostics.error(header.start, "module contains no section programs");
    }
    let module = Module {
        name: header.name,
        sections,
        span: header.start.merge(eof_span),
    };
    ParseOutput {
        module,
        diagnostics,
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    diagnostics: DiagnosticBag,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if !matches!(tok.kind, TokenKind::Eof) {
            self.pos += 1;
        }
        tok
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Option<Token> {
        if self.peek() == kind {
            Some(self.bump())
        } else {
            self.diagnostics.error(
                self.peek_span(),
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek().describe()
                ),
            );
            None
        }
    }

    fn expect_ident(&mut self, what: &str) -> Option<(String, Span)> {
        if let TokenKind::Ident(name) = self.peek() {
            let name = name.clone();
            let tok = self.bump();
            Some((name, tok.span))
        } else {
            self.diagnostics.error(
                self.peek_span(),
                format!("expected {what} name, found {}", self.peek().describe()),
            );
            None
        }
    }

    fn expect_int(&mut self, what: &str) -> Option<i64> {
        if let TokenKind::IntLit(v) = *self.peek() {
            self.bump();
            Some(v)
        } else {
            self.diagnostics.error(
                self.peek_span(),
                format!("expected {what}, found {}", self.peek().describe()),
            );
            None
        }
    }

    /// [`Parser::synchronize`], but guaranteed to make progress: if the
    /// current token is itself a stop token the caller cannot handle,
    /// it is consumed. Use in loops that would otherwise spin.
    fn recover(&mut self) {
        let before = self.pos;
        self.synchronize();
        if self.pos == before && !self.at_eof() {
            self.bump();
        }
    }

    /// Skips tokens until a likely statement/declaration boundary.
    fn synchronize(&mut self) {
        while !self.at_eof() {
            match self.peek() {
                TokenKind::Semicolon => {
                    self.bump();
                    return;
                }
                TokenKind::End
                | TokenKind::Function
                | TokenKind::Section
                | TokenKind::Begin
                | TokenKind::Else
                | TokenKind::Elsif => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- declarations -------------------------------------------------

    fn module(&mut self) -> Module {
        let start = self.peek_span();
        self.expect(&TokenKind::Module);
        let name = self
            .expect_ident("module")
            .map(|(n, _)| n)
            .unwrap_or_else(|| "<error>".to_string());
        self.expect(&TokenKind::Semicolon);

        let mut sections = Vec::new();
        while !self.at_eof() {
            if matches!(self.peek(), TokenKind::Section) {
                if let Some(s) = self.section() {
                    sections.push(s);
                }
            } else {
                self.diagnostics.error(
                    self.peek_span(),
                    format!("expected `section`, found {}", self.peek().describe()),
                );
                self.recover();
            }
        }
        if sections.is_empty() {
            self.diagnostics
                .error(start, "module contains no section programs");
        }
        let end = self.peek_span();
        Module {
            name,
            sections,
            span: start.merge(end),
        }
    }

    fn section(&mut self) -> Option<Section> {
        let start = self.peek_span();
        self.expect(&TokenKind::Section)?;
        let (name, _) = self.expect_ident("section")?;
        self.expect(&TokenKind::On)?;
        self.expect(&TokenKind::Cells)?;
        let first = self.expect_int("first cell index")?;
        self.expect(&TokenKind::DotDot)?;
        let last = self.expect_int("last cell index")?;
        self.expect(&TokenKind::Semicolon)?;

        if first < 0 || last < first {
            self.diagnostics.error(
                start,
                format!("invalid cell range {first}..{last}: must be ascending and non-negative"),
            );
        }

        let mut functions = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Function => {
                    if let Some(f) = self.function() {
                        functions.push(f);
                    }
                }
                TokenKind::End => {
                    let end_tok = self.bump();
                    self.expect(&TokenKind::Semicolon);
                    if functions.is_empty() {
                        self.diagnostics
                            .error(start, format!("section `{name}` contains no functions"));
                    }
                    return Some(Section {
                        name,
                        first_cell: first.max(0) as u32,
                        last_cell: last.max(first.max(0)) as u32,
                        functions,
                        span: start.merge(end_tok.span),
                    });
                }
                TokenKind::Eof => {
                    self.diagnostics
                        .error(self.peek_span(), format!("unterminated section `{name}`"));
                    return Some(Section {
                        name,
                        first_cell: first.max(0) as u32,
                        last_cell: last.max(first.max(0)) as u32,
                        functions,
                        span: start.merge(self.peek_span()),
                    });
                }
                _ => {
                    self.diagnostics.error(
                        self.peek_span(),
                        format!(
                            "expected `function` or `end` in section, found {}",
                            self.peek().describe()
                        ),
                    );
                    self.recover();
                }
            }
        }
    }

    fn function(&mut self) -> Option<Function> {
        let start = self.peek_span();
        self.expect(&TokenKind::Function)?;
        let (name, _) = self.expect_ident("function")?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), TokenKind::RParen) {
            loop {
                if let Some(p) = self.param() {
                    params.push(p);
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;

        let ret = if self.eat(&TokenKind::Colon) {
            Some(self.ty()?)
        } else {
            None
        };

        let mut vars = Vec::new();
        if self.eat(&TokenKind::Var) {
            // Each group: name {, name} : type ;  — repeated until `begin`.
            while !matches!(self.peek(), TokenKind::Begin | TokenKind::Eof) {
                let mut names = Vec::new();
                loop {
                    match self.expect_ident("variable") {
                        Some((n, sp)) => names.push((n, sp)),
                        None => {
                            self.synchronize();
                            break;
                        }
                    }
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                if names.is_empty() {
                    break;
                }
                if self.expect(&TokenKind::Colon).is_none() {
                    self.synchronize();
                    continue;
                }
                let Some(ty) = self.ty() else {
                    self.synchronize();
                    continue;
                };
                self.expect(&TokenKind::Semicolon);
                for (n, sp) in names {
                    vars.push(VarDecl {
                        name: n,
                        ty: ty.clone(),
                        span: sp,
                    });
                }
            }
        }

        self.expect(&TokenKind::Begin)?;
        let body = self.stmts_until_block_end();
        let end_tok = self.expect(&TokenKind::End);
        self.expect(&TokenKind::Semicolon);
        let end_span = end_tok.map(|t| t.span).unwrap_or_else(|| self.peek_span());
        Some(Function {
            name,
            params,
            ret,
            vars,
            body,
            span: start.merge(end_span),
        })
    }

    fn param(&mut self) -> Option<Param> {
        let (name, span) = self.expect_ident("parameter")?;
        self.expect(&TokenKind::Colon)?;
        let ty = self.ty()?;
        Some(Param { name, ty, span })
    }

    fn ty(&mut self) -> Option<Type> {
        let scalar = match self.peek() {
            TokenKind::Int => ScalarType::Int,
            TokenKind::Float => ScalarType::Float,
            TokenKind::Bool => ScalarType::Bool,
            other => {
                let msg = format!("expected type, found {}", other.describe());
                self.diagnostics.error(self.peek_span(), msg);
                return None;
            }
        };
        self.bump();
        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            let span = self.peek_span();
            let d = self.expect_int("array dimension")?;
            if d <= 0 {
                self.diagnostics
                    .error(span, format!("array dimension must be positive, got {d}"));
            }
            dims.push(d.max(1) as u32);
            self.expect(&TokenKind::RBracket)?;
        }
        Some(Type { scalar, dims })
    }

    // ---- statements ---------------------------------------------------

    /// Parses statements until `end`, `else`, `elsif`, or EOF.
    fn stmts_until_block_end(&mut self) -> Vec<Stmt> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                TokenKind::End | TokenKind::Else | TokenKind::Elsif | TokenKind::Eof => {
                    return stmts
                }
                _ => match self.stmt() {
                    Some(s) => stmts.push(s),
                    None => self.recover(),
                },
            }
        }
    }

    fn stmt(&mut self) -> Option<Stmt> {
        match self.peek() {
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::For => self.for_stmt(),
            TokenKind::Send => self.send_stmt(),
            TokenKind::Receive => self.receive_stmt(),
            TokenKind::Return => self.return_stmt(),
            TokenKind::Ident(_) => self.assign_or_call(),
            other => {
                let msg = format!("expected statement, found {}", other.describe());
                self.diagnostics.error(self.peek_span(), msg);
                None
            }
        }
    }

    fn if_stmt(&mut self) -> Option<Stmt> {
        let start = self.peek_span();
        self.expect(&TokenKind::If)?;
        let mut arms = Vec::new();
        let cond = self.expr()?;
        self.expect(&TokenKind::Then)?;
        let body = self.stmts_until_block_end();
        arms.push(IfArm { cond, body });
        let mut else_body = Vec::new();
        loop {
            if self.eat(&TokenKind::Elsif) {
                let cond = self.expr()?;
                self.expect(&TokenKind::Then)?;
                let body = self.stmts_until_block_end();
                arms.push(IfArm { cond, body });
            } else if self.eat(&TokenKind::Else) {
                else_body = self.stmts_until_block_end();
                break;
            } else {
                break;
            }
        }
        let end_tok = self.expect(&TokenKind::End);
        self.expect(&TokenKind::Semicolon);
        let end_span = end_tok.map(|t| t.span).unwrap_or(start);
        Some(Stmt::If {
            arms,
            else_body,
            span: start.merge(end_span),
        })
    }

    fn while_stmt(&mut self) -> Option<Stmt> {
        let start = self.peek_span();
        self.expect(&TokenKind::While)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::Do)?;
        let body = self.stmts_until_block_end();
        let end_tok = self.expect(&TokenKind::End);
        self.expect(&TokenKind::Semicolon);
        let end_span = end_tok.map(|t| t.span).unwrap_or(start);
        Some(Stmt::While {
            cond,
            body,
            span: start.merge(end_span),
        })
    }

    fn for_stmt(&mut self) -> Option<Stmt> {
        let start = self.peek_span();
        self.expect(&TokenKind::For)?;
        let (var, _) = self.expect_ident("loop variable")?;
        self.expect(&TokenKind::Assign)?;
        let from = self.expr()?;
        let downto = match self.peek() {
            TokenKind::To => {
                self.bump();
                false
            }
            TokenKind::Downto => {
                self.bump();
                true
            }
            other => {
                let msg = format!("expected `to` or `downto`, found {}", other.describe());
                self.diagnostics.error(self.peek_span(), msg);
                return None;
            }
        };
        let to = self.expr()?;
        let by = if self.eat(&TokenKind::By) {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(&TokenKind::Do)?;
        let body = self.stmts_until_block_end();
        let end_tok = self.expect(&TokenKind::End);
        self.expect(&TokenKind::Semicolon);
        let end_span = end_tok.map(|t| t.span).unwrap_or(start);
        Some(Stmt::For {
            var,
            from,
            to,
            downto,
            by,
            body,
            span: start.merge(end_span),
        })
    }

    fn direction(&mut self) -> Option<Direction> {
        if let TokenKind::Ident(name) = self.peek() {
            let dir = match name.as_str() {
                "left" => Some(Direction::Left),
                "right" => Some(Direction::Right),
                _ => None,
            };
            if let Some(d) = dir {
                self.bump();
                return Some(d);
            }
        }
        self.diagnostics.error(
            self.peek_span(),
            format!(
                "expected `left` or `right`, found {}",
                self.peek().describe()
            ),
        );
        None
    }

    fn send_stmt(&mut self) -> Option<Stmt> {
        let start = self.peek_span();
        self.expect(&TokenKind::Send)?;
        self.expect(&TokenKind::LParen)?;
        let dir = self.direction()?;
        self.expect(&TokenKind::Comma)?;
        let value = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let semi = self.expect(&TokenKind::Semicolon);
        let end = semi.map(|t| t.span).unwrap_or(start);
        Some(Stmt::Send {
            dir,
            value,
            span: start.merge(end),
        })
    }

    fn receive_stmt(&mut self) -> Option<Stmt> {
        let start = self.peek_span();
        self.expect(&TokenKind::Receive)?;
        self.expect(&TokenKind::LParen)?;
        let dir = self.direction()?;
        self.expect(&TokenKind::Comma)?;
        let target = self.lvalue()?;
        self.expect(&TokenKind::RParen)?;
        let semi = self.expect(&TokenKind::Semicolon);
        let end = semi.map(|t| t.span).unwrap_or(start);
        Some(Stmt::Receive {
            dir,
            target,
            span: start.merge(end),
        })
    }

    fn return_stmt(&mut self) -> Option<Stmt> {
        let start = self.peek_span();
        self.expect(&TokenKind::Return)?;
        let value = if matches!(self.peek(), TokenKind::Semicolon) {
            None
        } else {
            Some(self.expr()?)
        };
        let semi = self.expect(&TokenKind::Semicolon);
        let end = semi.map(|t| t.span).unwrap_or(start);
        Some(Stmt::Return {
            value,
            span: start.merge(end),
        })
    }

    fn assign_or_call(&mut self) -> Option<Stmt> {
        let start = self.peek_span();
        let (name, name_span) = self.expect_ident("variable or procedure")?;
        if self.eat(&TokenKind::LParen) {
            // Procedure call statement.
            let mut args = Vec::new();
            if !matches!(self.peek(), TokenKind::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokenKind::RParen)?;
            let semi = self.expect(&TokenKind::Semicolon);
            let end = semi.map(|t| t.span).unwrap_or(start);
            return Some(Stmt::Call {
                name,
                args,
                span: start.merge(end),
            });
        }
        // Assignment: optional subscripts then `:=`.
        let mut indices = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            indices.push(self.expr()?);
            self.expect(&TokenKind::RBracket)?;
        }
        let lv_span = start.merge(self.peek_span());
        let target = LValue {
            name,
            indices,
            span: name_span.merge(lv_span),
        };
        self.expect(&TokenKind::Assign)?;
        let value = self.expr()?;
        let semi = self.expect(&TokenKind::Semicolon);
        let end = semi.map(|t| t.span).unwrap_or(start);
        Some(Stmt::Assign {
            target,
            value,
            span: start.merge(end),
        })
    }

    fn lvalue(&mut self) -> Option<LValue> {
        let (name, name_span) = self.expect_ident("variable")?;
        let mut indices = Vec::new();
        let mut span = name_span;
        while self.eat(&TokenKind::LBracket) {
            indices.push(self.expr()?);
            let rb = self.expect(&TokenKind::RBracket)?;
            span = span.merge(rb.span);
        }
        Some(LValue {
            name,
            indices,
            span,
        })
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Option<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.and_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Some(lhs)
    }

    fn and_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.cmp_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Some(lhs)
    }

    fn cmp_expr(&mut self) -> Option<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Some(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span.merge(rhs.span);
        Some(Expr {
            kind: ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        })
    }

    fn add_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Some(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
    }

    fn mul_expr(&mut self) -> Option<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Div => BinOp::IDiv,
                TokenKind::Mod => BinOp::Mod,
                _ => return Some(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
    }

    fn unary_expr(&mut self) -> Option<Expr> {
        let start = self.peek_span();
        let op = match self.peek() {
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Not => Some(UnOp::Not),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.unary_expr()?;
            let span = start.merge(expr.span);
            return Some(Expr {
                kind: ExprKind::Unary {
                    op,
                    expr: Box::new(expr),
                },
                span,
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Option<Expr> {
        let span = self.peek_span();
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::IntLit(v),
                    span,
                })
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::FloatLit(v),
                    span,
                })
            }
            TokenKind::BoolLit(v) => {
                self.bump();
                Some(Expr {
                    kind: ExprKind::BoolLit(v),
                    span,
                })
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Some(inner)
            }
            // `float(e)` / `int(e)` conversions: the names lex as type
            // keywords, so they need a dedicated production.
            kw @ (TokenKind::Float | TokenKind::Int) => {
                self.bump();
                let name = if matches!(kw, TokenKind::Float) {
                    "float"
                } else {
                    "int"
                };
                self.expect(&TokenKind::LParen)?;
                let arg = self.expr()?;
                let rp = self.expect(&TokenKind::RParen)?;
                Some(Expr {
                    kind: ExprKind::Call {
                        name: name.to_string(),
                        args: vec![arg],
                    },
                    span: span.merge(rp.span),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !matches!(self.peek(), TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let rp = self.expect(&TokenKind::RParen)?;
                    Some(Expr {
                        kind: ExprKind::Call { name, args },
                        span: span.merge(rp.span),
                    })
                } else {
                    let mut indices = Vec::new();
                    let mut full = span;
                    while self.eat(&TokenKind::LBracket) {
                        indices.push(self.expr()?);
                        let rb = self.expect(&TokenKind::RBracket)?;
                        full = full.merge(rb.span);
                    }
                    Some(Expr {
                        kind: ExprKind::LValue(LValue {
                            name,
                            indices,
                            span: full,
                        }),
                        span: full,
                    })
                }
            }
            other => {
                self.diagnostics.error(
                    span,
                    format!("expected expression, found {}", other.describe()),
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK_PROGRAM: &str = r#"
module s;
section s1 on cells 0..3;
  function f(x: float, n: int): float
  var
    acc: float;
    v: float[16];
    i: int;
  begin
    acc := 0.0;
    for i := 0 to 15 do
      v[i] := x * 2.0 + 1.0;
      acc := acc + v[i];
    end;
    if acc > 10.0 then
      acc := acc / 2.0;
    elsif acc > 5.0 then
      acc := acc - 1.0;
    else
      acc := 0.0;
    end;
    while acc > 0.0 do
      acc := acc - 1.0;
    end;
    receive(left, x);
    send(right, acc + x);
    return acc;
  end;
end;
"#;

    #[test]
    fn parses_full_program() {
        let out = parse(OK_PROGRAM);
        assert!(
            !out.diagnostics.has_errors(),
            "errors: {:?}",
            out.diagnostics.iter().collect::<Vec<_>>()
        );
        assert_eq!(out.module.name, "s");
        assert_eq!(out.module.sections.len(), 1);
        let sec = &out.module.sections[0];
        assert_eq!(sec.name, "s1");
        assert_eq!((sec.first_cell, sec.last_cell), (0, 3));
        assert_eq!(sec.functions.len(), 1);
        let f = &sec.functions[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Some(Type::float()));
        assert_eq!(f.vars.len(), 3);
        assert_eq!(f.body.len(), 7);
    }

    #[test]
    fn precedence_mul_over_add() {
        let out = parse(
            "module m; section a on cells 0..0; function f(): int begin return 1 + 2 * 3; end; end;",
        );
        assert!(!out.diagnostics.has_errors());
        let f = &out.module.sections[0].functions[0];
        let Stmt::Return { value: Some(e), .. } = &f.body[0] else {
            panic!("not return")
        };
        let ExprKind::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = &e.kind
        else {
            panic!("top is not +: {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn precedence_and_over_or_and_cmp() {
        let out = parse(
            "module m; section a on cells 0..0; function f(x: int): bool begin return x > 1 or x < 0 and true; end; end;",
        );
        assert!(!out.diagnostics.has_errors());
        let f = &out.module.sections[0].functions[0];
        let Stmt::Return { value: Some(e), .. } = &f.body[0] else {
            panic!()
        };
        // or(x>1, and(x<0, true))
        let ExprKind::Binary {
            op: BinOp::Or,
            lhs,
            rhs,
        } = &e.kind
        else {
            panic!("{e:?}")
        };
        assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Gt, .. }));
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn unary_binds_tighter_than_mul() {
        let out = parse(
            "module m; section a on cells 0..0; function f(x: int): int begin return -x * 3; end; end;",
        );
        assert!(!out.diagnostics.has_errors());
        let f = &out.module.sections[0].functions[0];
        let Stmt::Return { value: Some(e), .. } = &f.body[0] else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinOp::Mul,
            lhs,
            ..
        } = &e.kind
        else {
            panic!("{e:?}")
        };
        assert!(matches!(lhs.kind, ExprKind::Unary { op: UnOp::Neg, .. }));
    }

    #[test]
    fn for_downto_and_by() {
        let out = parse(
            "module m; section a on cells 0..0; function f(): int var i: int; s: int; begin s := 0; for i := 10 downto 0 by 2 do s := s + i; end; return s; end; end;",
        );
        assert!(!out.diagnostics.has_errors());
        let f = &out.module.sections[0].functions[0];
        let Stmt::For { downto, by, .. } = &f.body[1] else {
            panic!()
        };
        assert!(*downto);
        assert!(by.is_some());
    }

    #[test]
    fn multiple_sections_and_functions() {
        let src = "module m;\n\
            section a on cells 0..1; function f(); begin return; end; function g(); begin return; end; end;\n\
            section b on cells 2..9; function h(); begin return; end; end;";
        // note: `function f();` style — empty parens, no ret type, no vars
        let src = src.replace("();", "()");
        let out = parse(&src);
        assert!(
            !out.diagnostics.has_errors(),
            "errors: {:?}",
            out.diagnostics.iter().collect::<Vec<_>>()
        );
        assert_eq!(out.module.sections.len(), 2);
        assert_eq!(out.module.function_count(), 3);
    }

    #[test]
    fn missing_semicolon_is_reported() {
        let out =
            parse("module m; section a on cells 0..0; function f(): int begin return 1 end; end;");
        assert!(out.diagnostics.has_errors());
    }

    #[test]
    fn error_recovery_finds_multiple_errors() {
        let out = parse(
            "module m; section a on cells 0..0; function f(): int begin x := ; y := ; return 1; end; end;",
        );
        assert!(out.diagnostics.error_count() >= 2, "{:?}", out.diagnostics);
        // The good statement after the bad ones still parses.
        let f = &out.module.sections[0].functions[0];
        assert!(f.body.iter().any(|s| matches!(s, Stmt::Return { .. })));
    }

    #[test]
    fn empty_module_is_error() {
        let out = parse("module m;");
        assert!(out.diagnostics.has_errors());
    }

    #[test]
    fn descending_cell_range_is_error() {
        let out = parse("module m; section a on cells 5..2; function f() begin return; end; end;");
        assert!(out.diagnostics.has_errors());
    }

    #[test]
    fn call_statement_vs_assignment() {
        let out = parse(
            "module m; section a on cells 0..0; function g() begin return; end; function f() begin g(); end; end;",
        );
        assert!(!out.diagnostics.has_errors());
        let f = &out.module.sections[0].functions[1];
        assert!(matches!(&f.body[0], Stmt::Call { name, .. } if name == "g"));
    }

    #[test]
    fn nested_array_access() {
        let out = parse(
            "module m; section a on cells 0..0; function f() var t: float[4][4]; i: int; begin t[i][i+1] := 0.5; end; end;",
        );
        assert!(!out.diagnostics.has_errors());
        let f = &out.module.sections[0].functions[0];
        let Stmt::Assign { target, .. } = &f.body[0] else {
            panic!()
        };
        assert_eq!(target.indices.len(), 2);
    }

    #[test]
    fn parenthesized_expression() {
        let out = parse(
            "module m; section a on cells 0..0; function f(x: int): int begin return (1 + x) * 3; end; end;",
        );
        assert!(!out.diagnostics.has_errors());
        let f = &out.module.sections[0].functions[0];
        let Stmt::Return { value: Some(e), .. } = &f.body[0] else {
            panic!()
        };
        let ExprKind::Binary {
            op: BinOp::Mul,
            lhs,
            ..
        } = &e.kind
        else {
            panic!()
        };
        assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Add, .. }));
    }

    /// Runs the split pipeline (split at sections, parse pieces,
    /// reassemble) and compares with the sequential parser. On clean
    /// inputs the results must be identical; on erroring inputs the
    /// split path must also report errors (the fall-back-to-sequential
    /// trigger), though the exact diagnostics may differ.
    fn split_parse(src: &str) -> ParseOutput {
        let lexed = lex(src);
        let eof_span = lexed.tokens.last().expect("EOF-terminated").span;
        let pieces = split_tokens(lexed.tokens);
        let header = parse_header_piece(pieces.header);
        let parsed: Vec<PieceParse> = pieces
            .sections
            .into_iter()
            .map(parse_section_piece)
            .collect();
        assemble_pieces(lexed.diagnostics, header, parsed, eof_span)
    }

    fn assert_split_matches(src: &str) {
        let seq = parse(src);
        let split = split_parse(src);
        if seq.diagnostics.has_errors() {
            assert!(
                split.diagnostics.has_errors(),
                "split parse missed errors on {src:?}"
            );
            return;
        }
        assert_eq!(split.module, seq.module, "module mismatch on {src:?}");
        assert_eq!(
            split.diagnostics.iter().collect::<Vec<_>>(),
            seq.diagnostics.iter().collect::<Vec<_>>(),
            "diagnostics mismatch on {src:?}"
        );
    }

    #[test]
    fn split_parse_matches_sequential_on_clean_modules() {
        assert_split_matches(OK_PROGRAM);
        assert_split_matches(
            "module m;\n\
             section a on cells 0..1; function f() begin return; end; end;\n\
             section b on cells 2..9; function g() begin return; end; function h() begin g(); end; end;\n\
             section c on cells 10..10; function k(x: int): int begin return x + 1; end; end;",
        );
    }

    #[test]
    fn split_parse_flags_errors_on_broken_modules() {
        for src in [
            "module m;",                                // no sections
            "section a on cells 0..0; function f() begin return; end; end;", // no header
            "module m; section a on cells 0..0; begin end;", // junk in section
            "module m; section a on cells 0..0; function f() begin x := section; end; end;", // `section` mid-body
            "module m; stray tokens here; section a on cells 0..0; function f() begin return; end; end;",
            "module m; section a on cells 0..0; function f() begin return; end; end; trailing junk",
        ] {
            assert_split_matches(src);
        }
    }
}
