//! W2 source lints.
//!
//! Advisory checks that run after a module parses: they flag code that
//! is legal but almost certainly not what the programmer meant. All
//! lints are emitted as warnings through the standard
//! [`DiagnosticBag`] machinery, so drivers can render them with source
//! locations like any other diagnostic.
//!
//! Implemented lints:
//!
//! * **unused variable** — a local declared but never read or written;
//! * **assigned but never read** — a local that is only ever stored
//!   to, so every assignment is dead;
//! * **unreachable statement** — a statement that follows a `return`
//!   in the same statement list.
//!
//! Parameters are exempt from the unused lints: W2 functions often
//! take a fixed argument shape dictated by the host interface.

use std::collections::BTreeMap;

use crate::ast::{Expr, ExprKind, Function, LValue, Module, Stmt};
use crate::diag::DiagnosticBag;

/// How a function body uses each local variable.
#[derive(Default, Clone, Copy)]
struct VarUse {
    read: bool,
    written: bool,
}

/// Runs every lint over the module, returning the warnings found.
pub fn lint_module(module: &Module) -> DiagnosticBag {
    let mut diags = DiagnosticBag::new();
    for section in &module.sections {
        for function in &section.functions {
            lint_function(function, &mut diags);
        }
    }
    diags
}

/// Lints a single function.
pub fn lint_function(function: &Function, diags: &mut DiagnosticBag) {
    let mut uses: BTreeMap<&str, VarUse> = BTreeMap::new();
    for v in &function.vars {
        uses.insert(v.name.as_str(), VarUse::default());
    }
    scan_stmts(&function.body, &mut uses);
    for v in &function.vars {
        let u = uses[v.name.as_str()];
        if !u.read && !u.written {
            diags.warning(v.span, format!("unused variable `{}`", v.name));
        } else if !u.read {
            diags.warning(
                v.span,
                format!("variable `{}` is assigned but never read", v.name),
            );
        }
    }
    check_unreachable(&function.body, diags);
}

fn mark_read<'a>(name: &'a str, uses: &mut BTreeMap<&'a str, VarUse>) {
    if let Some(u) = uses.get_mut(name) {
        u.read = true;
    }
}

fn mark_written<'a>(name: &'a str, uses: &mut BTreeMap<&'a str, VarUse>) {
    if let Some(u) = uses.get_mut(name) {
        u.written = true;
    }
}

/// An lvalue used as an assignment *target*: the base variable is
/// written, but its subscripts are reads.
fn scan_target<'a>(target: &'a LValue, uses: &mut BTreeMap<&'a str, VarUse>) {
    mark_written(&target.name, uses);
    for idx in &target.indices {
        scan_expr(idx, uses);
    }
}

fn scan_expr<'a>(expr: &'a Expr, uses: &mut BTreeMap<&'a str, VarUse>) {
    match &expr.kind {
        ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::BoolLit(_) => {}
        ExprKind::LValue(lv) => {
            mark_read(&lv.name, uses);
            for idx in &lv.indices {
                scan_expr(idx, uses);
            }
        }
        ExprKind::Unary { expr, .. } => scan_expr(expr, uses),
        ExprKind::Binary { lhs, rhs, .. } => {
            scan_expr(lhs, uses);
            scan_expr(rhs, uses);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                scan_expr(a, uses);
            }
        }
    }
}

fn scan_stmts<'a>(stmts: &'a [Stmt], uses: &mut BTreeMap<&'a str, VarUse>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                scan_target(target, uses);
                scan_expr(value, uses);
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for arm in arms {
                    scan_expr(&arm.cond, uses);
                    scan_stmts(&arm.body, uses);
                }
                scan_stmts(else_body, uses);
            }
            Stmt::While { cond, body, .. } => {
                scan_expr(cond, uses);
                scan_stmts(body, uses);
            }
            Stmt::For {
                var,
                from,
                to,
                by,
                body,
                ..
            } => {
                // The induction variable is written by the loop header
                // and read by the exit test.
                mark_written(var.as_str(), uses);
                mark_read(var.as_str(), uses);
                scan_expr(from, uses);
                scan_expr(to, uses);
                if let Some(by) = by {
                    scan_expr(by, uses);
                }
                scan_stmts(body, uses);
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    scan_expr(a, uses);
                }
            }
            Stmt::Send { value, .. } => scan_expr(value, uses),
            Stmt::Receive { target, .. } => scan_target(target, uses),
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    scan_expr(v, uses);
                }
            }
        }
    }
}

/// Flags the first statement after a `return` in each statement list,
/// recursing into nested bodies.
fn check_unreachable(stmts: &[Stmt], diags: &mut DiagnosticBag) {
    let mut dead = false;
    for stmt in stmts {
        if dead {
            diags.warning(
                stmt.span(),
                "unreachable statement after return".to_string(),
            );
            dead = false; // one warning per list is enough
        }
        match stmt {
            Stmt::Return { .. } => dead = true,
            Stmt::If {
                arms, else_body, ..
            } => {
                for arm in arms {
                    check_unreachable(&arm.body, diags);
                }
                check_unreachable(else_body, diags);
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                check_unreachable(body, diags);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser;

    fn lint(src: &str) -> Vec<String> {
        let parsed = parser::parse(src);
        assert!(!parsed.diagnostics.has_errors(), "test source must parse");
        lint_module(&parsed.module)
            .iter()
            .map(|d| d.message.clone())
            .collect()
    }

    fn wrap(body_decls: &str) -> String {
        format!("module m; section a on cells 0..1;\n{body_decls}\nend;")
    }

    #[test]
    fn flags_unused_variable() {
        let src = wrap("function f(x: float): float var dead: int; begin return x; end;");
        let msgs = lint(&src);
        assert!(
            msgs.iter().any(|m| m.contains("unused variable `dead`")),
            "{msgs:?}"
        );
    }

    #[test]
    fn flags_assigned_never_read() {
        let src = wrap("function f(x: float): float var t: float; begin t := x; return x; end;");
        let msgs = lint(&src);
        assert!(
            msgs.iter()
                .any(|m| m.contains("`t` is assigned but never read")),
            "{msgs:?}"
        );
    }

    #[test]
    fn flags_unreachable_after_return() {
        let src = wrap(
            "function f(x: float): float var t: float; begin \
             return x; t := x; end;",
        );
        let msgs = lint(&src);
        assert!(
            msgs.iter().any(|m| m.contains("unreachable statement")),
            "{msgs:?}"
        );
    }

    #[test]
    fn clean_function_produces_no_warnings() {
        let src = wrap(
            "function f(x: float): float var t: float; i: int; begin \
             t := 0.0; for i := 0 to 3 do t := t + x; end; return t; end;",
        );
        let msgs = lint(&src);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn parameters_are_exempt() {
        let src = wrap("function f(x: float, unused: int): float begin return x; end;");
        let msgs = lint(&src);
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn array_subscripts_count_as_reads() {
        let src = wrap(
            "function f(x: float): float var v: float[8]; i: int; begin \
             for i := 0 to 7 do v[i] := x; end; return v[0]; end;",
        );
        let msgs = lint(&src);
        assert!(msgs.is_empty(), "{msgs:?}");
    }
}
