//! Source positions and spans.
//!
//! Every token and AST node carries a [`Span`] so that diagnostics can
//! point back into the original source text. Spans are byte offsets into
//! the source string; [`LineMap`] converts them to line/column pairs for
//! human-readable error messages.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first byte covered by this span.
    pub start: u32,
    /// Byte offset one past the last byte covered by this span.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start {start} after end {end}");
        Span { start, end }
    }

    /// A zero-length span at `pos`, used for synthesized nodes.
    pub fn point(pos: u32) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Number of bytes covered.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// `true` if the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// The slice of `source` covered by this span.
    ///
    /// # Panics
    ///
    /// Panics if the span is out of bounds for `source` or does not fall
    /// on UTF-8 character boundaries.
    pub fn slice(self, source: &str) -> &str {
        &source[self.start as usize..self.end as usize]
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A line/column position (both 1-based) for display purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes, which equals characters for the
    /// ASCII-only Warp language).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets to line/column pairs.
///
/// Construction is `O(n)` in the source length; lookups are
/// `O(log #lines)`.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset at which each line starts. `line_starts[0] == 0`.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds a line map for `source`.
    pub fn new(source: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in source.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Converts a byte offset to a 1-based line/column pair.
    ///
    /// Offsets past the end of the source resolve to the end of the last
    /// line rather than panicking, so diagnostics for EOF are printable.
    pub fn line_col(&self, offset: u32) -> LineCol {
        let line_idx = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: offset - self.line_starts[line_idx] + 1,
        }
    }

    /// Number of lines in the mapped source.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn point_is_empty() {
        assert!(Span::point(5).is_empty());
        assert!(!Span::new(5, 6).is_empty());
        assert_eq!(Span::new(5, 9).len(), 4);
    }

    #[test]
    fn slice_extracts_text() {
        let src = "hello world";
        assert_eq!(Span::new(6, 11).slice(src), "world");
    }

    #[test]
    fn line_map_basic() {
        let map = LineMap::new("ab\ncde\n\nf");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_col(1), LineCol { line: 1, col: 2 });
        assert_eq!(map.line_col(3), LineCol { line: 2, col: 1 });
        assert_eq!(map.line_col(5), LineCol { line: 2, col: 3 });
        assert_eq!(map.line_col(7), LineCol { line: 3, col: 1 });
        assert_eq!(map.line_col(8), LineCol { line: 4, col: 1 });
        assert_eq!(map.line_count(), 4);
    }

    #[test]
    fn line_map_offset_past_end() {
        let map = LineMap::new("ab");
        // Offset 2 == EOF: still maps to line 1.
        assert_eq!(map.line_col(2), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn line_map_empty_source() {
        let map = LineMap::new("");
        assert_eq!(map.line_col(0), LineCol { line: 1, col: 1 });
        assert_eq!(map.line_count(), 1);
    }
}
