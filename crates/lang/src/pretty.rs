//! Pretty printer: renders an AST back to parseable source text.
//!
//! Used by the workload generator tests (round-trip property: parsing
//! the pretty-printed module yields an equivalent AST) and for dumping
//! partitioned section programs the way the paper's master process
//! hands them to section masters.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a module as source text that [`crate::parser::parse`]
/// accepts and that parses back to an equivalent AST.
pub fn module_to_source(module: &Module) -> String {
    let mut p = Printer::default();
    p.module(module);
    p.out
}

/// Renders a single section as a standalone module (the partition a
/// section master receives).
pub fn section_to_source(module_name: &str, section: &Section) -> String {
    let mut p = Printer::default();
    let _ = writeln!(p.out, "module {module_name};");
    p.section(section);
    p.out
}

/// Renders one statement (chiefly for debugging and tests).
pub fn stmt_to_source(stmt: &Stmt) -> String {
    let mut p = Printer::default();
    p.stmt(stmt);
    p.out
}

/// Renders one expression.
pub fn expr_to_source(expr: &Expr) -> String {
    let mut p = Printer::default();
    p.expr(expr);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn module(&mut self, m: &Module) {
        self.line(&format!("module {};", m.name));
        for s in &m.sections {
            self.section(s);
        }
    }

    fn section(&mut self, s: &Section) {
        self.line(&format!(
            "section {} on cells {}..{};",
            s.name, s.first_cell, s.last_cell
        ));
        self.indent += 1;
        for f in &s.functions {
            self.function(f);
        }
        self.indent -= 1;
        self.line("end;");
    }

    fn function(&mut self, f: &Function) {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| format!("{}: {}", p.name, p.ty))
            .collect();
        let ret = f.ret.as_ref().map(|t| format!(": {t}")).unwrap_or_default();
        self.line(&format!(
            "function {}({}){}",
            f.name,
            params.join(", "),
            ret
        ));
        if !f.vars.is_empty() {
            self.line("var");
            self.indent += 1;
            for v in &f.vars {
                self.line(&format!("{}: {};", v.name, v.ty));
            }
            self.indent -= 1;
        }
        self.line("begin");
        self.indent += 1;
        for s in &f.body {
            self.stmt(s);
        }
        self.indent -= 1;
        self.line("end;");
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { target, value, .. } => {
                let t = lvalue_str(target);
                let v = expr_str(value);
                self.line(&format!("{t} := {v};"));
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (i, arm) in arms.iter().enumerate() {
                    let kw = if i == 0 { "if" } else { "elsif" };
                    self.line(&format!("{kw} {} then", expr_str(&arm.cond)));
                    self.indent += 1;
                    for st in &arm.body {
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                if !else_body.is_empty() {
                    self.line("else");
                    self.indent += 1;
                    for st in else_body {
                        self.stmt(st);
                    }
                    self.indent -= 1;
                }
                self.line("end;");
            }
            Stmt::While { cond, body, .. } => {
                self.line(&format!("while {} do", expr_str(cond)));
                self.indent += 1;
                for st in body {
                    self.stmt(st);
                }
                self.indent -= 1;
                self.line("end;");
            }
            Stmt::For {
                var,
                from,
                to,
                downto,
                by,
                body,
                ..
            } => {
                let dir = if *downto { "downto" } else { "to" };
                let by = by
                    .as_ref()
                    .map(|b| format!(" by {}", expr_str(b)))
                    .unwrap_or_default();
                self.line(&format!(
                    "for {var} := {} {dir} {}{by} do",
                    expr_str(from),
                    expr_str(to)
                ));
                self.indent += 1;
                for st in body {
                    self.stmt(st);
                }
                self.indent -= 1;
                self.line("end;");
            }
            Stmt::Call { name, args, .. } => {
                let args: Vec<String> = args.iter().map(expr_str).collect();
                self.line(&format!("{name}({});", args.join(", ")));
            }
            Stmt::Send { dir, value, .. } => {
                self.line(&format!("send({dir}, {});", expr_str(value)));
            }
            Stmt::Receive { dir, target, .. } => {
                self.line(&format!("receive({dir}, {});", lvalue_str(target)));
            }
            Stmt::Return { value, .. } => match value {
                Some(v) => self.line(&format!("return {};", expr_str(v))),
                None => self.line("return;"),
            },
        }
    }

    fn expr(&mut self, e: &Expr) {
        let s = expr_str(e);
        self.out.push_str(&s);
    }
}

fn lvalue_str(lv: &LValue) -> String {
    let mut s = lv.name.clone();
    for idx in &lv.indices {
        let _ = write!(s, "[{}]", expr_str(idx));
    }
    s
}

fn expr_str(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::FloatLit(v) => {
            // Always keep a decimal point (or exponent) so the literal
            // lexes back as a float.
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains('E') {
                s
            } else {
                format!("{s}.0")
            }
        }
        ExprKind::BoolLit(v) => v.to_string(),
        ExprKind::LValue(lv) => lvalue_str(lv),
        ExprKind::Unary { op, expr } => match op {
            UnOp::Neg => format!("-({})", expr_str(expr)),
            UnOp::Not => format!("not ({})", expr_str(expr)),
        },
        ExprKind::Binary { op, lhs, rhs } => {
            format!("({} {op} {})", expr_str(lhs), expr_str(rhs))
        }
        ExprKind::Call { name, args } => {
            let args: Vec<String> = args.iter().map(expr_str).collect();
            format!("{name}({})", args.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = "module s;\n\
        section s1 on cells 0..3;\n\
        function f(x: float): float\n\
        var acc: float; i: int; v: float[4];\n\
        begin\n\
          acc := 0.0;\n\
          for i := 0 to 3 do v[i] := x * 2.0; acc := acc + v[i]; end;\n\
          if acc > 1.0 then acc := acc / 2.0; else acc := -acc; end;\n\
          while acc > 0.0 do acc := acc - 1.0; end;\n\
          send(right, acc);\n\
          receive(left, x);\n\
          return min(acc, x);\n\
        end;\n\
        end;";

    /// Strips spans so ASTs can be compared structurally.
    fn normalize(m: &Module) -> String {
        // Pretty-printing is itself the normalization: if two modules
        // print identically they are structurally equal.
        module_to_source(m)
    }

    #[test]
    fn round_trip_is_stable() {
        let first = parse(SRC);
        assert!(!first.diagnostics.has_errors(), "{:?}", first.diagnostics);
        let printed = module_to_source(&first.module);
        let second = parse(&printed);
        assert!(
            !second.diagnostics.has_errors(),
            "reparse failed:\n{printed}\n{:?}",
            second.diagnostics
        );
        assert_eq!(normalize(&first.module), normalize(&second.module));
    }

    #[test]
    fn section_source_is_parseable() {
        let out = parse(SRC);
        let sec_src = section_to_source(&out.module.name, &out.module.sections[0]);
        let re = parse(&sec_src);
        assert!(
            !re.diagnostics.has_errors(),
            "{sec_src}\n{:?}",
            re.diagnostics
        );
        assert_eq!(re.module.sections.len(), 1);
    }

    #[test]
    fn float_literals_keep_decimal_point() {
        let out = parse(SRC);
        let printed = module_to_source(&out.module);
        assert!(printed.contains("0.0") || printed.contains("0."));
    }

    #[test]
    fn negative_literal_round_trips() {
        let src = "module m; section a on cells 0..0; function f(): int begin return -5; end; end;";
        let first = parse(src);
        assert!(!first.diagnostics.has_errors());
        let printed = module_to_source(&first.module);
        let second = parse(&printed);
        assert!(!second.diagnostics.has_errors());
        assert_eq!(normalize(&first.module), normalize(&second.module));
    }
}
