//! Reference interpreter over the AST.
//!
//! Defines the language's semantics independently of the compiler: the
//! differential tests compile a function with the full pipeline, run
//! the microcode on the strict machine interpreter, run the same source
//! here, and require identical results. Arithmetic is deliberately
//! `f32`/wrapping-`i32` to match the Warp cell exactly, so comparisons
//! are bit-exact.

use crate::ast::*;
use crate::sema::CheckedModule;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RtValue {
    /// 32-bit integer (and booleans as 0/1).
    I(i32),
    /// 32-bit float.
    F(f32),
}

impl RtValue {
    fn as_i(self) -> Result<i32, EvalError> {
        match self {
            RtValue::I(v) => Ok(v),
            RtValue::F(_) => Err(EvalError::Type("expected int, found float")),
        }
    }

    fn as_f(self) -> Result<f32, EvalError> {
        match self {
            RtValue::F(v) => Ok(v),
            RtValue::I(_) => Err(EvalError::Type("expected float, found int")),
        }
    }

    fn truthy(self) -> Result<bool, EvalError> {
        Ok(self.as_i()? != 0)
    }
}

impl fmt::Display for RtValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtValue::I(v) => write!(f, "{v}"),
            RtValue::F(v) => write!(f, "{v:?}"),
        }
    }
}

/// Evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A type error the checker should have caught.
    Type(&'static str),
    /// Unknown variable or function.
    Unbound(String),
    /// Array subscript out of range.
    Bounds {
        /// Array name.
        name: String,
        /// Offending linear index.
        index: i64,
    },
    /// Integer division by zero.
    DivByZero,
    /// `receive` on an empty queue.
    QueueEmpty,
    /// Execution exceeded the step limit.
    StepLimit,
    /// Wrong number of call arguments.
    Arity(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Type(m) => write!(f, "type error: {m}"),
            EvalError::Unbound(n) => write!(f, "unbound name `{n}`"),
            EvalError::Bounds { name, index } => {
                write!(f, "index {index} out of bounds for `{name}`")
            }
            EvalError::DivByZero => write!(f, "integer division by zero"),
            EvalError::QueueEmpty => write!(f, "receive on empty queue"),
            EvalError::StepLimit => write!(f, "step limit exceeded"),
            EvalError::Arity(n) => write!(f, "wrong argument count calling `{n}`"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The neighbor queues of the interpreted cell.
#[derive(Debug, Clone, Default)]
pub struct QueueIo {
    /// Incoming words from the left neighbor.
    pub in_left: VecDeque<RtValue>,
    /// Incoming words from the right neighbor.
    pub in_right: VecDeque<RtValue>,
    /// Words sent toward the left neighbor.
    pub out_left: Vec<RtValue>,
    /// Words sent toward the right neighbor.
    pub out_right: Vec<RtValue>,
}

enum Binding {
    Scalar(RtValue),
    Array { dims: Vec<u32>, data: Vec<RtValue> },
}

enum Flow {
    Normal,
    Returned(Option<RtValue>),
}

/// Interprets functions of one section of a checked module.
pub struct AstInterp<'a> {
    checked: &'a CheckedModule,
    section: usize,
    /// Queue state (shared across nested calls — the cell's queues).
    pub queues: QueueIo,
    steps_left: u64,
}

impl<'a> AstInterp<'a> {
    /// Creates an interpreter for section `section` with a step budget.
    pub fn new(checked: &'a CheckedModule, section: usize, max_steps: u64) -> Self {
        AstInterp {
            checked,
            section,
            queues: QueueIo::default(),
            steps_left: max_steps,
        }
    }

    /// Calls function `name` with `args`, returning its value (`None`
    /// for procedures).
    ///
    /// # Errors
    ///
    /// Any [`EvalError`]; execution state (queues) reflects the work
    /// done so far.
    pub fn call(&mut self, name: &str, args: &[RtValue]) -> Result<Option<RtValue>, EvalError> {
        let func = self.checked.module.sections[self.section]
            .functions
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| EvalError::Unbound(name.to_string()))?;
        if func.params.len() != args.len() {
            return Err(EvalError::Arity(name.to_string()));
        }
        let mut env: HashMap<String, Binding> = HashMap::new();
        for (p, &v) in func.params.iter().zip(args) {
            let v = coerce(&p.ty, v)?;
            env.insert(p.name.clone(), Binding::Scalar(v));
        }
        for d in &func.vars {
            let b = if d.ty.is_scalar() {
                Binding::Scalar(default_of(&d.ty))
            } else {
                let n = d.ty.element_count() as usize;
                Binding::Array {
                    dims: d.ty.dims.clone(),
                    data: vec![default_of(&d.ty); n],
                }
            };
            env.insert(d.name.clone(), b);
        }
        match self.block(&func.body, &mut env)? {
            Flow::Returned(v) => Ok(v),
            Flow::Normal => Ok(func.ret.as_ref().map(default_of)),
        }
    }

    fn tick(&mut self) -> Result<(), EvalError> {
        if self.steps_left == 0 {
            return Err(EvalError::StepLimit);
        }
        self.steps_left -= 1;
        Ok(())
    }

    fn block(
        &mut self,
        stmts: &[Stmt],
        env: &mut HashMap<String, Binding>,
    ) -> Result<Flow, EvalError> {
        for s in stmts {
            match self.stmt(s, env)? {
                Flow::Normal => {}
                r @ Flow::Returned(_) => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    fn stmt(&mut self, stmt: &Stmt, env: &mut HashMap<String, Binding>) -> Result<Flow, EvalError> {
        self.tick()?;
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let v = self.expr(value, env)?;
                self.store(target, v, env)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for arm in arms {
                    if self.expr(&arm.cond, env)?.truthy()? {
                        return self.block(&arm.body, env);
                    }
                }
                self.block(else_body, env)
            }
            Stmt::While { cond, body, .. } => {
                while self.expr(cond, env)?.truthy()? {
                    self.tick()?;
                    match self.block(body, env)? {
                        Flow::Normal => {}
                        r @ Flow::Returned(_) => return Ok(r),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                var,
                from,
                to,
                downto,
                by,
                body,
                ..
            } => {
                let from = self.expr(from, env)?.as_i()?;
                let to = self.expr(to, env)?.as_i()?;
                let step = match by {
                    Some(e) => self.expr(e, env)?.as_i()?,
                    None => 1,
                };
                let mut i = from;
                loop {
                    let cont = if *downto { i >= to } else { i <= to };
                    if !cont {
                        break;
                    }
                    self.tick()?;
                    set_scalar(env, var, RtValue::I(i))?;
                    match self.block(body, env)? {
                        Flow::Normal => {}
                        r @ Flow::Returned(_) => return Ok(r),
                    }
                    // Re-read: the body may assign the loop variable.
                    i = get_scalar(env, var)?.as_i()?;
                    i = if *downto {
                        i.wrapping_sub(step)
                    } else {
                        i.wrapping_add(step)
                    };
                    set_scalar(env, var, RtValue::I(i))?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Call { name, args, .. } => {
                let vals = args
                    .iter()
                    .map(|a| self.expr(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.call_any(name, &vals)?;
                Ok(Flow::Normal)
            }
            Stmt::Send { dir, value, .. } => {
                let v = self.expr(value, env)?;
                match dir {
                    Direction::Left => self.queues.out_left.push(v),
                    Direction::Right => self.queues.out_right.push(v),
                }
                Ok(Flow::Normal)
            }
            Stmt::Receive { dir, target, .. } => {
                let v = match dir {
                    Direction::Left => self.queues.in_left.pop_front(),
                    Direction::Right => self.queues.in_right.pop_front(),
                }
                .ok_or(EvalError::QueueEmpty)?;
                self.store(target, v, env)?;
                Ok(Flow::Normal)
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => Some(self.expr(e, env)?),
                    None => None,
                };
                Ok(Flow::Returned(v))
            }
        }
    }

    fn store(
        &mut self,
        lv: &LValue,
        v: RtValue,
        env: &mut HashMap<String, Binding>,
    ) -> Result<(), EvalError> {
        // Evaluate subscripts before borrowing the binding mutably.
        let idx = self.linear_index(lv, env)?;
        let binding = env
            .get_mut(&lv.name)
            .ok_or_else(|| EvalError::Unbound(lv.name.clone()))?;
        match binding {
            Binding::Scalar(slot) => {
                let v = match *slot {
                    RtValue::F(_) => promote(v),
                    RtValue::I(_) => v,
                };
                *slot = v;
            }
            Binding::Array { data, .. } => {
                let i = idx.ok_or(EvalError::Type("array store needs subscripts"))?;
                let v = promote(v); // all generated arrays are float; int arrays keep ints below
                let slot = data.get_mut(i as usize).ok_or(EvalError::Bounds {
                    name: lv.name.clone(),
                    index: i,
                })?;
                let v = match *slot {
                    RtValue::I(_) => v, // int array: keep as stored
                    RtValue::F(_) => v,
                };
                *slot = v;
            }
        }
        Ok(())
    }

    /// Row-major linear index of an lvalue's subscripts (`None` for
    /// scalars), with bounds checking.
    fn linear_index(
        &mut self,
        lv: &LValue,
        env: &mut HashMap<String, Binding>,
    ) -> Result<Option<i64>, EvalError> {
        if lv.indices.is_empty() {
            return Ok(None);
        }
        let idxs = lv
            .indices
            .iter()
            .map(|e| self.expr(e, env).and_then(|v| v.as_i()))
            .collect::<Result<Vec<i32>, _>>()?;
        let dims = match env.get(&lv.name) {
            Some(Binding::Array { dims, .. }) => dims.clone(),
            Some(Binding::Scalar(_)) => return Err(EvalError::Type("subscript on scalar")),
            None => return Err(EvalError::Unbound(lv.name.clone())),
        };
        let mut acc: i64 = 0;
        for (k, (&i, &d)) in idxs.iter().zip(dims.iter()).enumerate() {
            if i < 0 || i as u32 >= d {
                return Err(EvalError::Bounds {
                    name: lv.name.clone(),
                    index: i as i64,
                });
            }
            acc = if k == 0 {
                i as i64
            } else {
                acc * d as i64 + i as i64
            };
        }
        Ok(Some(acc))
    }

    fn call_any(&mut self, name: &str, args: &[RtValue]) -> Result<Option<RtValue>, EvalError> {
        if builtin_arity(name).is_some() {
            return Ok(Some(eval_builtin(name, args)?));
        }
        self.call(name, args)
    }

    fn expr(&mut self, e: &Expr, env: &mut HashMap<String, Binding>) -> Result<RtValue, EvalError> {
        self.tick()?;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(RtValue::I(*v as i32)),
            ExprKind::FloatLit(v) => Ok(RtValue::F(*v as f32)),
            ExprKind::BoolLit(v) => Ok(RtValue::I(*v as i32)),
            ExprKind::LValue(lv) => {
                let idx = self.linear_index(lv, env)?;
                match (env.get(&lv.name), idx) {
                    (Some(Binding::Scalar(v)), None) => Ok(*v),
                    (Some(Binding::Array { data, .. }), Some(i)) => {
                        data.get(i as usize).copied().ok_or(EvalError::Bounds {
                            name: lv.name.clone(),
                            index: i,
                        })
                    }
                    (Some(_), _) => Err(EvalError::Type("subscript mismatch")),
                    (None, _) => Err(EvalError::Unbound(lv.name.clone())),
                }
            }
            ExprKind::Unary { op, expr } => {
                let v = self.expr(expr, env)?;
                match op {
                    UnOp::Neg => Ok(match v {
                        RtValue::I(x) => RtValue::I(x.wrapping_neg()),
                        RtValue::F(x) => RtValue::F(-x),
                    }),
                    UnOp::Not => Ok(RtValue::I((v.as_i()? == 0) as i32)),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let a = self.expr(lhs, env)?;
                let b = self.expr(rhs, env)?;
                eval_binop(*op, a, b)
            }
            ExprKind::Call { name, args } => {
                let vals = args
                    .iter()
                    .map(|a| self.expr(a, env))
                    .collect::<Result<Vec<_>, _>>()?;
                self.call_any(name, &vals)?
                    .ok_or(EvalError::Type("procedure used as expression"))
            }
        }
    }
}

fn default_of(t: &Type) -> RtValue {
    match t.scalar {
        ScalarType::Float => RtValue::F(0.0),
        ScalarType::Int | ScalarType::Bool => RtValue::I(0),
    }
}

fn coerce(t: &Type, v: RtValue) -> Result<RtValue, EvalError> {
    match (t.scalar, v) {
        (ScalarType::Float, RtValue::I(x)) => Ok(RtValue::F(x as f32)),
        (ScalarType::Float, f @ RtValue::F(_)) => Ok(f),
        (ScalarType::Int | ScalarType::Bool, i @ RtValue::I(_)) => Ok(i),
        (ScalarType::Int | ScalarType::Bool, RtValue::F(_)) => {
            Err(EvalError::Type("float passed for int parameter"))
        }
    }
}

fn promote(v: RtValue) -> RtValue {
    match v {
        RtValue::I(x) => RtValue::F(x as f32),
        f => f,
    }
}

fn get_scalar(env: &HashMap<String, Binding>, name: &str) -> Result<RtValue, EvalError> {
    match env.get(name) {
        Some(Binding::Scalar(v)) => Ok(*v),
        _ => Err(EvalError::Unbound(name.to_string())),
    }
}

fn set_scalar(env: &mut HashMap<String, Binding>, name: &str, v: RtValue) -> Result<(), EvalError> {
    match env.get_mut(name) {
        Some(Binding::Scalar(slot)) => {
            *slot = v;
            Ok(())
        }
        _ => Err(EvalError::Unbound(name.to_string())),
    }
}

fn numeric_pair(a: RtValue, b: RtValue) -> (RtValue, RtValue) {
    match (a, b) {
        (RtValue::F(_), RtValue::I(y)) => (a, RtValue::F(y as f32)),
        (RtValue::I(x), RtValue::F(_)) => (RtValue::F(x as f32), b),
        _ => (a, b),
    }
}

fn eval_binop(op: BinOp, a: RtValue, b: RtValue) -> Result<RtValue, EvalError> {
    use BinOp::*;
    match op {
        And => Ok(RtValue::I((a.as_i()? != 0 && b.as_i()? != 0) as i32)),
        Or => Ok(RtValue::I((a.as_i()? != 0 || b.as_i()? != 0) as i32)),
        IDiv => {
            let d = b.as_i()?;
            if d == 0 {
                return Err(EvalError::DivByZero);
            }
            Ok(RtValue::I(a.as_i()?.wrapping_div(d)))
        }
        Mod => {
            let d = b.as_i()?;
            if d == 0 {
                return Err(EvalError::DivByZero);
            }
            Ok(RtValue::I(a.as_i()?.wrapping_rem(d)))
        }
        Div => {
            let (a, b) = numeric_pair(a, b);
            let (x, y) = match (a, b) {
                (RtValue::I(x), RtValue::I(y)) => (x as f32, y as f32),
                _ => (a.as_f()?, b.as_f()?),
            };
            Ok(RtValue::F(x / y))
        }
        Add | Sub | Mul => {
            let (a, b) = numeric_pair(a, b);
            Ok(match (a, b) {
                (RtValue::I(x), RtValue::I(y)) => RtValue::I(match op {
                    Add => x.wrapping_add(y),
                    Sub => x.wrapping_sub(y),
                    _ => x.wrapping_mul(y),
                }),
                _ => {
                    let (x, y) = (a.as_f()?, b.as_f()?);
                    RtValue::F(match op {
                        Add => x + y,
                        Sub => x - y,
                        _ => x * y,
                    })
                }
            })
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let (a, b) = numeric_pair(a, b);
            let res = match (a, b) {
                (RtValue::I(x), RtValue::I(y)) => cmp_eval(op, x.cmp(&y)),
                _ => {
                    let (x, y) = (a.as_f()?, b.as_f()?);
                    match x.partial_cmp(&y) {
                        Some(ord) => cmp_eval(op, ord),
                        None => matches!(op, Ne),
                    }
                }
            };
            Ok(RtValue::I(res as i32))
        }
    }
}

fn cmp_eval(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!("not a comparison"),
    }
}

fn eval_builtin(name: &str, args: &[RtValue]) -> Result<RtValue, EvalError> {
    if args.len() != builtin_arity(name).unwrap_or(0) {
        return Err(EvalError::Arity(name.to_string()));
    }
    let f1 = |v: RtValue| -> Result<f32, EvalError> {
        Ok(match v {
            RtValue::I(x) => x as f32,
            RtValue::F(x) => x,
        })
    };
    Ok(match name {
        "sqrt" => RtValue::F(f1(args[0])?.sqrt()),
        "sin" => RtValue::F(f1(args[0])?.sin()),
        "cos" => RtValue::F(f1(args[0])?.cos()),
        "exp" => RtValue::F(f1(args[0])?.exp()),
        "log" => RtValue::F(f1(args[0])?.ln()),
        "floor" => RtValue::I(f1(args[0])?.floor() as i32),
        "abs" => match args[0] {
            RtValue::I(x) => RtValue::I(x.wrapping_abs()),
            RtValue::F(x) => RtValue::F(x.abs()),
        },
        "min" | "max" => {
            let take_min = name == "min";
            match (args[0], args[1]) {
                (RtValue::I(x), RtValue::I(y)) => {
                    RtValue::I(if take_min { x.min(y) } else { x.max(y) })
                }
                (a, b) => {
                    let (x, y) = (f1(a)?, f1(b)?);
                    RtValue::F(if take_min { x.min(y) } else { x.max(y) })
                }
            }
        }
        "float" => RtValue::F(f1(args[0])?),
        "int" => match args[0] {
            RtValue::I(x) => RtValue::I(x),
            RtValue::F(x) => RtValue::I(x as i32),
        },
        _ => return Err(EvalError::Unbound(name.to_string())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase1;

    fn run_f(src: &str, func: &str, args: &[RtValue]) -> RtValue {
        let checked = phase1(src).expect("phase1");
        let mut it = AstInterp::new(&checked, 0, 10_000_000);
        it.call(func, args).expect("eval").expect("value")
    }

    fn wrap(body: &str) -> String {
        format!(
            "module m; section a on cells 0..0; function f(x: float, n: int): float \
             var t: float; v: float[16]; i: int; begin {body} end; end;"
        )
    }

    #[test]
    fn arithmetic_and_loop() {
        let got = run_f(
            &wrap("t := 0.0; for i := 1 to 10 do t := t + float(i); end; return t;"),
            "f",
            &[RtValue::F(0.0), RtValue::I(0)],
        );
        assert_eq!(got, RtValue::F(55.0));
    }

    #[test]
    fn downto_and_by() {
        let got = run_f(
            &wrap("t := 0.0; for i := 10 downto 2 by 2 do t := t + float(i); end; return t;"),
            "f",
            &[RtValue::F(0.0), RtValue::I(0)],
        );
        assert_eq!(got, RtValue::F(30.0)); // 10+8+6+4+2
    }

    #[test]
    fn arrays_and_conditionals() {
        let got = run_f(
            &wrap(
                "for i := 0 to 15 do v[i] := float(i) * 2.0; end; \
                 t := 0.0; for i := 0 to 15 do if v[i] > 10.0 then t := t + v[i]; end; end; return t;",
            ),
            "f",
            &[RtValue::F(0.0), RtValue::I(0)],
        );
        // elements 12..=30 step 2: 12+14+...+30 = 210
        assert_eq!(got, RtValue::F(210.0));
    }

    #[test]
    fn calls_between_functions() {
        let src = "module m; section a on cells 0..0; \
             function sq(y: float): float begin return y * y; end; \
             function f(x: float): float begin return sq(x) + sq(x + 1.0); end; end;";
        let got = run_f(src, "f", &[RtValue::F(2.0)]);
        assert_eq!(got, RtValue::F(13.0));
    }

    #[test]
    fn queues() {
        let src = wrap("receive(left, t); send(right, t * 2.0); return t;");
        let checked = phase1(&src).unwrap();
        let mut it = AstInterp::new(&checked, 0, 100_000);
        it.queues.in_left.push_back(RtValue::F(4.0));
        let got = it.call("f", &[RtValue::F(0.0), RtValue::I(0)]).unwrap();
        assert_eq!(got, Some(RtValue::F(4.0)));
        assert_eq!(it.queues.out_right, vec![RtValue::F(8.0)]);
    }

    #[test]
    fn receive_empty_queue_errors() {
        let src = wrap("receive(left, t); return t;");
        let checked = phase1(&src).unwrap();
        let mut it = AstInterp::new(&checked, 0, 100_000);
        let err = it.call("f", &[RtValue::F(0.0), RtValue::I(0)]).unwrap_err();
        assert_eq!(err, EvalError::QueueEmpty);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let src = wrap("while 1 > 0 do t := t + 1.0; end; return t;");
        let checked = phase1(&src).unwrap();
        let mut it = AstInterp::new(&checked, 0, 10_000);
        let err = it.call("f", &[RtValue::F(0.0), RtValue::I(0)]).unwrap_err();
        assert_eq!(err, EvalError::StepLimit);
    }

    #[test]
    fn int_division_semantics() {
        let got = run_f(
            &wrap("i := (0 - 7) div 2; return float(i);"),
            "f",
            &[RtValue::F(0.0), RtValue::I(0)],
        );
        assert_eq!(got, RtValue::F(-3.0)); // truncation toward zero
    }

    #[test]
    fn implicit_promotion_in_assignment() {
        let got = run_f(
            &wrap("t := n; return t;"),
            "f",
            &[RtValue::F(0.0), RtValue::I(7)],
        );
        assert_eq!(got, RtValue::F(7.0));
    }

    #[test]
    fn uninitialized_defaults_are_zero() {
        let got = run_f(
            &wrap("return t + v[3];"),
            "f",
            &[RtValue::F(0.0), RtValue::I(0)],
        );
        assert_eq!(got, RtValue::F(0.0));
    }
}
