//! Tokens of the Warp (W2-style) language.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a lexical token.
///
/// Keywords are distinguished from identifiers by the lexer; identifier
/// text is interned in the surrounding [`Token`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // keyword variants are self-describing
pub enum TokenKind {
    // Literals and identifiers
    /// An identifier such as `foo`.
    Ident(String),
    /// An integer literal such as `42`.
    IntLit(i64),
    /// A floating-point literal such as `3.5` or `1.0e-3`.
    FloatLit(f64),
    /// A boolean literal `true` or `false`.
    BoolLit(bool),

    // Keywords
    Module,
    Section,
    On,
    Cells,
    Function,
    Var,
    Begin,
    End,
    If,
    Then,
    Elsif,
    Else,
    While,
    Do,
    For,
    To,
    Downto,
    By,
    Return,
    Send,
    Receive,
    Int,
    Float,
    Bool,
    And,
    Or,
    Not,
    Div,
    Mod,

    // Punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `..`
    DotDot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword kind for `text`, if `text` is a keyword.
    pub fn keyword(text: &str) -> Option<TokenKind> {
        Some(match text {
            "module" => TokenKind::Module,
            "section" => TokenKind::Section,
            "on" => TokenKind::On,
            "cells" => TokenKind::Cells,
            "function" => TokenKind::Function,
            "var" => TokenKind::Var,
            "begin" => TokenKind::Begin,
            "end" => TokenKind::End,
            "if" => TokenKind::If,
            "then" => TokenKind::Then,
            "elsif" => TokenKind::Elsif,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "do" => TokenKind::Do,
            "for" => TokenKind::For,
            "to" => TokenKind::To,
            "downto" => TokenKind::Downto,
            "by" => TokenKind::By,
            "return" => TokenKind::Return,
            "send" => TokenKind::Send,
            "receive" => TokenKind::Receive,
            "int" => TokenKind::Int,
            "float" => TokenKind::Float,
            "bool" => TokenKind::Bool,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            "div" => TokenKind::Div,
            "mod" => TokenKind::Mod,
            "true" => TokenKind::BoolLit(true),
            "false" => TokenKind::BoolLit(false),
            _ => return None,
        })
    }

    /// A short human-readable description used in parse error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::IntLit(v) => format!("integer literal `{v}`"),
            TokenKind::FloatLit(v) => format!("float literal `{v}`"),
            TokenKind::BoolLit(v) => format!("boolean literal `{v}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.lexeme()),
        }
    }

    /// The canonical source text of a fixed token (keywords and
    /// punctuation). Literals and identifiers return a placeholder.
    pub fn lexeme(&self) -> &'static str {
        match self {
            TokenKind::Module => "module",
            TokenKind::Section => "section",
            TokenKind::On => "on",
            TokenKind::Cells => "cells",
            TokenKind::Function => "function",
            TokenKind::Var => "var",
            TokenKind::Begin => "begin",
            TokenKind::End => "end",
            TokenKind::If => "if",
            TokenKind::Then => "then",
            TokenKind::Elsif => "elsif",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::Do => "do",
            TokenKind::For => "for",
            TokenKind::To => "to",
            TokenKind::Downto => "downto",
            TokenKind::By => "by",
            TokenKind::Return => "return",
            TokenKind::Send => "send",
            TokenKind::Receive => "receive",
            TokenKind::Int => "int",
            TokenKind::Float => "float",
            TokenKind::Bool => "bool",
            TokenKind::And => "and",
            TokenKind::Or => "or",
            TokenKind::Not => "not",
            TokenKind::Div => "div",
            TokenKind::Mod => "mod",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semicolon => ";",
            TokenKind::Colon => ":",
            TokenKind::Assign => ":=",
            TokenKind::DotDot => "..",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Eq => "=",
            TokenKind::Ne => "<>",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Ident(_) => "<ident>",
            TokenKind::IntLit(_) => "<int>",
            TokenKind::FloatLit(_) => "<float>",
            TokenKind::BoolLit(_) => "<bool>",
            TokenKind::Eof => "<eof>",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(name) => write!(f, "{name}"),
            TokenKind::IntLit(v) => write!(f, "{v}"),
            TokenKind::FloatLit(v) => write!(f, "{v}"),
            TokenKind::BoolLit(v) => write!(f, "{v}"),
            other => write!(f, "{}", other.lexeme()),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source the token appears.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_round_trip() {
        for kw in ["module", "section", "function", "while", "downto", "mod"] {
            let kind = TokenKind::keyword(kw).expect("is a keyword");
            assert_eq!(kind.lexeme(), kw);
        }
    }

    #[test]
    fn non_keywords_are_none() {
        assert_eq!(TokenKind::keyword("modules"), None);
        assert_eq!(TokenKind::keyword(""), None);
        assert_eq!(TokenKind::keyword("x"), None);
    }

    #[test]
    fn bool_literals_are_keywords() {
        assert_eq!(TokenKind::keyword("true"), Some(TokenKind::BoolLit(true)));
        assert_eq!(TokenKind::keyword("false"), Some(TokenKind::BoolLit(false)));
    }

    #[test]
    fn describe_is_nonempty() {
        assert_eq!(TokenKind::Assign.describe(), "`:=`");
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier `x`");
        assert_eq!(TokenKind::Eof.describe(), "end of input");
    }
}
