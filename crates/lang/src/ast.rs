//! Abstract syntax tree for the Warp (W2-style) language.
//!
//! A source *module* is the unit of compilation handed to the master
//! process. It contains one or more *section programs*, each of which
//! runs on a contiguous group of cells of the systolic array and
//! contains one or more *functions* (paper §3.1, Figure 1). Functions
//! are the unit of parallel compilation.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete Warp program: `module S; section … end; …`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// The section programs, in source order.
    pub sections: Vec<Section>,
    /// Span of the whole module.
    pub span: Span,
}

impl Module {
    /// Total number of functions across all sections — the number of
    /// function-master processes the parallel compiler will create.
    pub fn function_count(&self) -> usize {
        self.sections.iter().map(|s| s.functions.len()).sum()
    }

    /// Iterates over `(section index, function)` pairs in source order.
    pub fn functions(&self) -> impl Iterator<Item = (usize, &Function)> {
        self.sections
            .iter()
            .enumerate()
            .flat_map(|(i, s)| s.functions.iter().map(move |f| (i, f)))
    }
}

/// A section program: the code for one group of processing elements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Section {
    /// Section name.
    pub name: String,
    /// Inclusive range of cell indices this section occupies.
    pub first_cell: u32,
    /// Inclusive upper end of the cell range.
    pub last_cell: u32,
    /// The functions of this section, in source order.
    pub functions: Vec<Function>,
    /// Span of the whole section.
    pub span: Span,
}

impl Section {
    /// Number of cells this section occupies.
    pub fn cell_count(&self) -> u32 {
        self.last_cell - self.first_cell + 1
    }
}

/// A function: the unit of work for one function-master process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (unique within its section).
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Return type, or `None` for a procedure.
    pub ret: Option<Type>,
    /// Local variable declarations.
    pub vars: Vec<VarDecl>,
    /// The statements of the body.
    pub body: Vec<Stmt>,
    /// Span of the whole function.
    pub span: Span,
}

impl Function {
    /// Number of source lines covered by the function body, the paper's
    /// rough size metric ("lines of code", §4.1 / Figure 7).
    pub fn line_count(&self, source: &str) -> usize {
        self.span.slice(source).lines().count()
    }

    /// Maximum loop nesting depth of the body; combined with line count
    /// this forms the compile-time estimate used for load balancing
    /// (paper §4.3).
    pub fn max_loop_depth(&self) -> usize {
        fn depth(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::While { body, .. } | Stmt::For { body, .. } => 1 + depth(body),
                    Stmt::If {
                        arms, else_body, ..
                    } => arms
                        .iter()
                        .map(|a| depth(&a.body))
                        .chain(std::iter::once(depth(else_body)))
                        .max()
                        .unwrap_or(0),
                    _ => 0,
                })
                .max()
                .unwrap_or(0)
        }
        depth(&self.body)
    }
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Span of the declaration.
    pub span: Span,
}

/// A local variable declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Span of the declaration.
    pub span: Span,
}

/// Scalar element types of the Warp cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalarType {
    /// 32-bit integer (address/loop arithmetic).
    Int,
    /// 32-bit IEEE float (the Warp cell's primary datatype).
    Float,
    /// Boolean (conditions only; stored as int).
    Bool,
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::Int => "int",
            ScalarType::Float => "float",
            ScalarType::Bool => "bool",
        };
        f.write_str(s)
    }
}

/// A (possibly array) type: a scalar element type plus zero or more
/// constant array dimensions, e.g. `float[16][16]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Type {
    /// Element type.
    pub scalar: ScalarType,
    /// Array dimensions, outermost first; empty for scalars.
    pub dims: Vec<u32>,
}

impl Type {
    /// A scalar type with no array dimensions.
    pub fn scalar(scalar: ScalarType) -> Self {
        Type {
            scalar,
            dims: Vec::new(),
        }
    }

    /// The `int` scalar type.
    pub fn int() -> Self {
        Type::scalar(ScalarType::Int)
    }

    /// The `float` scalar type.
    pub fn float() -> Self {
        Type::scalar(ScalarType::Float)
    }

    /// The `bool` scalar type.
    pub fn bool() -> Self {
        Type::scalar(ScalarType::Bool)
    }

    /// `true` if this is a scalar (non-array) type.
    pub fn is_scalar(&self) -> bool {
        self.dims.is_empty()
    }

    /// Total number of scalar elements (product of dimensions; 1 for
    /// scalars). Saturates instead of overflowing.
    pub fn element_count(&self) -> u64 {
        self.dims
            .iter()
            .fold(1u64, |acc, &d| acc.saturating_mul(d as u64))
    }

    /// Size in 32-bit words when stored in cell data memory.
    pub fn size_words(&self) -> u64 {
        self.element_count()
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.scalar)?;
        for d in &self.dims {
            write!(f, "[{d}]")?;
        }
        Ok(())
    }
}

/// Which neighbor queue a `send`/`receive` uses.
///
/// Each Warp cell has unidirectional queues to its left and right
/// neighbors; section boundaries map to the array boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// The queue toward the previous cell (toward the host interface).
    Left,
    /// The queue toward the next cell.
    Right,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::Left => "left",
            Direction::Right => "right",
        })
    }
}

/// A designatable location: a variable possibly indexed by array
/// subscripts, e.g. `a`, `v[i]`, `m[i][j]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LValue {
    /// Variable name.
    pub name: String,
    /// Subscript expressions, outermost first.
    pub indices: Vec<Expr>,
    /// Span of the whole lvalue.
    pub span: Span,
}

/// One arm of an `if`/`elsif` chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IfArm {
    /// The guarding condition.
    pub cond: Expr,
    /// Statements executed when the condition holds.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `target := value;`
    Assign {
        /// Destination location.
        target: LValue,
        /// Value assigned.
        value: Expr,
        /// Statement span.
        span: Span,
    },
    /// `if c then … elsif c2 then … else … end;`
    If {
        /// The `if` and `elsif` arms in order.
        arms: Vec<IfArm>,
        /// The `else` body (empty when absent).
        else_body: Vec<Stmt>,
        /// Statement span.
        span: Span,
    },
    /// `while c do … end;`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Statement span.
        span: Span,
    },
    /// `for i := a to|downto b [by s] do … end;`
    For {
        /// Induction variable name.
        var: String,
        /// Initial value.
        from: Expr,
        /// Final value (inclusive).
        to: Expr,
        /// `true` for `downto`.
        downto: bool,
        /// Optional step (defaults to 1).
        by: Option<Expr>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Statement span.
        span: Span,
    },
    /// A procedure call statement `p(args);`.
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
        /// Statement span.
        span: Span,
    },
    /// `send(left|right, e);` — enqueue a value to a neighbor.
    Send {
        /// Which queue.
        dir: Direction,
        /// Value sent.
        value: Expr,
        /// Statement span.
        span: Span,
    },
    /// `receive(left|right, x);` — dequeue a value from a neighbor.
    Receive {
        /// Which queue.
        dir: Direction,
        /// Where the received value is stored.
        target: LValue,
        /// Statement span.
        span: Span,
    },
    /// `return e;` or `return;`
    Return {
        /// Returned value for functions; `None` in procedures.
        value: Option<Expr>,
        /// Statement span.
        span: Span,
    },
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::Send { span, .. }
            | Stmt::Receive { span, .. }
            | Stmt::Return { span, .. } => *span,
        }
    }
}

/// Binary operators, in increasing precedence groups:
/// `or` < `and` < comparisons < `+ -` < `* / div mod`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Logical or (short-circuit).
    Or,
    /// Logical and (short-circuit).
    And,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (float division)
    Div,
    /// `div` (integer division)
    IDiv,
    /// `mod` (integer remainder)
    Mod,
}

impl BinOp {
    /// `true` for `= <> < <= > >=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// `true` for `and`/`or`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// `true` for the arithmetic operators.
    pub fn is_arithmetic(self) -> bool {
        !self.is_comparison() && !self.is_logical()
    }

    /// Source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::IDiv => "div",
            BinOp::Mod => "mod",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `not e`.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "not",
        })
    }
}

/// An expression together with its span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Expr {
    /// The expression's structure.
    pub kind: ExprKind,
    /// Source span.
    pub span: Span,
}

/// The structure of an expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Boolean literal.
    BoolLit(bool),
    /// A variable reference or array element.
    LValue(LValue),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// A call used as an expression (user function or builtin).
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for an integer literal.
    pub fn int(value: i64, span: Span) -> Self {
        Expr {
            kind: ExprKind::IntLit(value),
            span,
        }
    }

    /// `true` if this expression is a compile-time integer literal.
    pub fn as_int_lit(&self) -> Option<i64> {
        match self.kind {
            ExprKind::IntLit(v) => Some(v),
            _ => None,
        }
    }
}

/// The builtin scalar math functions the Warp cell library provides.
///
/// `float(x)` and `int(x)` perform explicit conversions; the rest map to
/// microcode library routines.
pub const BUILTINS: &[(&str, usize)] = &[
    ("sqrt", 1),
    ("abs", 1),
    ("sin", 1),
    ("cos", 1),
    ("exp", 1),
    ("log", 1),
    ("floor", 1),
    ("min", 2),
    ("max", 2),
    ("float", 1),
    ("int", 1),
];

/// Looks up a builtin by name, returning its arity.
pub fn builtin_arity(name: &str) -> Option<usize> {
    BUILTINS.iter().find(|(n, _)| *n == name).map(|&(_, a)| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_fn(body: Vec<Stmt>) -> Function {
        Function {
            name: "f".into(),
            params: vec![],
            ret: None,
            vars: vec![],
            body,
            span: Span::new(0, 0),
        }
    }

    fn for_loop(body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var: "i".into(),
            from: Expr::int(0, Span::point(0)),
            to: Expr::int(9, Span::point(0)),
            downto: false,
            by: None,
            body,
            span: Span::point(0),
        }
    }

    #[test]
    fn loop_depth_counts_nesting() {
        let f = dummy_fn(vec![for_loop(vec![for_loop(vec![for_loop(vec![])])])]);
        assert_eq!(f.max_loop_depth(), 3);
    }

    #[test]
    fn loop_depth_of_straightline_is_zero() {
        let f = dummy_fn(vec![Stmt::Return {
            value: None,
            span: Span::point(0),
        }]);
        assert_eq!(f.max_loop_depth(), 0);
    }

    #[test]
    fn loop_depth_through_if() {
        let inner = for_loop(vec![]);
        let f = dummy_fn(vec![Stmt::If {
            arms: vec![IfArm {
                cond: Expr {
                    kind: ExprKind::BoolLit(true),
                    span: Span::point(0),
                },
                body: vec![inner],
            }],
            else_body: vec![],
            span: Span::point(0),
        }]);
        assert_eq!(f.max_loop_depth(), 1);
    }

    #[test]
    fn type_display_and_size() {
        let t = Type {
            scalar: ScalarType::Float,
            dims: vec![16, 16],
        };
        assert_eq!(t.to_string(), "float[16][16]");
        assert_eq!(t.element_count(), 256);
        assert!(!t.is_scalar());
        assert!(Type::int().is_scalar());
    }

    #[test]
    fn builtin_lookup() {
        assert_eq!(builtin_arity("sqrt"), Some(1));
        assert_eq!(builtin_arity("min"), Some(2));
        assert_eq!(builtin_arity("nope"), None);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(BinOp::Add.is_arithmetic());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    fn module_function_count() {
        let m = Module {
            name: "s".into(),
            sections: vec![
                Section {
                    name: "a".into(),
                    first_cell: 0,
                    last_cell: 3,
                    functions: vec![dummy_fn(vec![]), dummy_fn(vec![])],
                    span: Span::point(0),
                },
                Section {
                    name: "b".into(),
                    first_cell: 4,
                    last_cell: 9,
                    functions: vec![dummy_fn(vec![])],
                    span: Span::point(0),
                },
            ],
            span: Span::point(0),
        };
        assert_eq!(m.function_count(), 3);
        assert_eq!(m.sections[1].cell_count(), 6);
        let idx: Vec<usize> = m.functions().map(|(i, _)| i).collect();
        assert_eq!(idx, vec![0, 0, 1]);
    }
}
