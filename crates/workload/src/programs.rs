//! Complete benchmark programs: the `S_n` series and the user program.

use crate::gen::{function_source, function_source_shaped, FunctionSize};
use serde::{Deserialize, Serialize};

/// The test programs of §4.1: `S_n` contains `n` copies of the size's
/// function in a single section (the paper varied n ∈ {1, 2, 4, 8}).
///
/// Each copy has a distinct name (`f_large_1`, `f_large_2`, …) and —
/// because the generator is seeded by name — a distinct body of
/// identical size, so the parallel tasks are "of equal size" as the
/// methodology requires while still being real, different functions.
pub fn synthetic_program(size: FunctionSize, n_functions: usize) -> String {
    assert!(n_functions >= 1, "a section needs at least one function");
    let mut s = format!(
        "module s_{}_{};\nsection main on cells 0..9;\n",
        size.paper_name(),
        n_functions
    );
    for k in 1..=n_functions {
        let name = format!("{}_{k}", size.paper_name());
        s.push_str(&function_source(&name, size));
        s.push('\n');
    }
    s.push_str("end;\n");
    s
}

/// A fully parameterized `S_n`: `n_functions` copies with an explicit
/// body line count and loop nesting depth, not restricted to the five
/// paper sizes. This is the scale knob of the fuzzing harness — it
/// supports corpora far beyond `f_huge` (tens of thousands of
/// functions, §4.1 only went to n = 8) while staying deterministic:
/// function `k` is named `{name_prefix}_{k}` and, as everywhere else,
/// the body is seeded by that name.
///
/// Generation is O(total lines); nothing is parsed here, so `S_10000`
/// is cheap to *produce* even when compiling it would not be.
pub fn synthetic_program_custom(
    name_prefix: &str,
    n_functions: usize,
    lines: usize,
    max_depth: usize,
) -> String {
    assert!(n_functions >= 1, "a section needs at least one function");
    assert!(
        lines >= 2,
        "a function needs at least a statement and a return"
    );
    assert!((1..=4).contains(&max_depth), "loop depth must be 1..=4");
    let mut s = format!("module s_{name_prefix}_{n_functions};\nsection main on cells 0..9;\n");
    for k in 1..=n_functions {
        let name = format!("{name_prefix}_{k}");
        s.push_str(&crate::gen::function_source_with(&name, lines, max_depth));
        s.push('\n');
    }
    s.push_str("end;\n");
    s
}

/// Description of one function of the user program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UserFunction {
    /// Function name.
    pub name: String,
    /// Body lines.
    pub lines: usize,
    /// Loop nesting depth used.
    pub depth: usize,
    /// Innermost kernel width (None = size default). The user
    /// program's small functions have dense kernels — the paper's
    /// 5–45-line functions took 2–6 minutes to compile.
    pub width: Option<usize>,
}

/// The 9-function mechanical-engineering application of §4.3: three
/// section programs with three functions each — per section one large
/// function (~300 lines; the paper's three compiled in 19–22 minutes)
/// and two small ones (5–45 lines; 2–6 minutes).
pub fn user_program_functions() -> Vec<Vec<UserFunction>> {
    vec![
        vec![
            UserFunction {
                name: "stress_solve".into(),
                lines: 300,
                depth: 4,
                width: None,
            },
            UserFunction {
                name: "load_vector".into(),
                lines: 10,
                depth: 1,
                width: Some(8),
            },
            UserFunction {
                name: "clamp_bounds".into(),
                lines: 30,
                depth: 2,
                width: Some(22),
            },
        ],
        vec![
            UserFunction {
                name: "stiffness_mat".into(),
                lines: 305,
                depth: 4,
                width: None,
            },
            UserFunction {
                name: "shape_fn".into(),
                lines: 20,
                depth: 2,
                width: Some(16),
            },
            UserFunction {
                name: "jacobian".into(),
                lines: 45,
                depth: 2,
                width: Some(22),
            },
        ],
        vec![
            UserFunction {
                name: "displacement".into(),
                lines: 295,
                depth: 4,
                width: None,
            },
            UserFunction {
                name: "residual".into(),
                lines: 5,
                depth: 1,
                width: Some(3),
            },
            UserFunction {
                name: "convergence".into(),
                lines: 38,
                depth: 2,
                width: Some(22),
            },
        ],
    ]
}

/// Source text of the user program: three sections of three functions
/// each on the 10-cell array.
pub fn user_program() -> String {
    let sections = user_program_functions();
    let cell_ranges = [(0u32, 3u32), (4, 6), (7, 9)];
    let mut s = String::from("module fem_app;\n");
    for (si, (funcs, (lo, hi))) in sections.iter().zip(cell_ranges).enumerate() {
        s.push_str(&format!("section stage{} on cells {lo}..{hi};\n", si + 1));
        for f in funcs {
            s.push_str(&function_source_shaped(&f.name, f.lines, f.depth, f.width));
            s.push('\n');
        }
        s.push_str("end;\n");
    }
    s
}

/// A program of many *small, frequently-called* functions — the shape
/// §5.1 says should be attacked with procedure inlining. `drivers`
/// top-level functions each call `helpers` small helper functions from
/// inside their loops; without inlining the parallel compiler sees
/// `drivers × (1 + helpers)` small tasks, with inlining it sees
/// `drivers` medium ones.
pub fn call_heavy_program(drivers: usize, helpers: usize) -> String {
    assert!(drivers >= 1 && helpers >= 1);
    let mut s = String::from(
        "module callheavy;
section main on cells 0..9;
",
    );
    for d in 0..drivers {
        for h in 0..helpers {
            s.push_str(&format!(
                "  function help_{d}_{h}(y: float): float
                   var u: float; w: float;
                   begin
                     u := y * {c1:.3} + {c2:.3};
                     w := sqrt(abs(u) + 0.5);
                     u := u + w * {c3:.3};
                     w := min(u, 4.0) * max(w, 0.25);
                     u := u * 0.5 + w;
                     return u;
                   end;
",
                c1 = 0.3 + 0.1 * (d + h) as f64,
                c2 = 0.7 + 0.05 * h as f64,
                c3 = 1.1 + 0.2 * d as f64,
            ));
        }
        let mut calls = String::new();
        for h in 0..helpers {
            calls.push_str(&format!(
                "      t := t + help_{d}_{h}(v[i]);
"
            ));
        }
        s.push_str(&format!(
            "  function drive_{d}(x: float): float
               var t: float; v: float[32]; i: int;
               begin
                 for i := 0 to 31 do v[i] := float(i) * 0.25 + x; end;
                 t := 0.0;
                 for i := 0 to 31 do
{calls}      end;
                 return t;
               end;
"
        ));
    }
    s.push_str(
        "end;
",
    );
    s
}

/// The compile-time estimate the paper's load balancer uses: "a
/// combination of lines of code and loop nesting can serve as
/// approximation of the compilation time" (§4.3). The master parses the
/// program anyway, so both quantities are free.
pub fn cost_estimate(lines: usize, max_loop_depth: usize) -> u64 {
    // Compilation cost grows superlinearly with size (scheduling is
    // worse than linear) and with nesting (more loops to pipeline).
    let l = lines as f64;
    (l.powf(1.25) * (1.0 + 0.35 * max_loop_depth as f64)) as u64
}

/// Cost estimate straight from a parsed function.
pub fn cost_estimate_of(f: &warp_lang::ast::Function, source: &str) -> u64 {
    cost_estimate(f.line_count(source), f.max_loop_depth())
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_lang::phase1;

    #[test]
    fn synthetic_programs_check_for_all_sizes_and_counts() {
        for size in [FunctionSize::Tiny, FunctionSize::Medium, FunctionSize::Huge] {
            for n in [1usize, 2, 8] {
                let src = synthetic_program(size, n);
                let checked = phase1(&src).unwrap_or_else(|e| panic!("{size} n={n} failed:\n{e}"));
                assert_eq!(checked.module.function_count(), n);
            }
        }
    }

    #[test]
    fn custom_program_checks_at_small_n() {
        let src = synthetic_program_custom("fz", 3, 24, 2);
        let checked = phase1(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert_eq!(checked.module.function_count(), 3);
        // Every copy has exactly the requested body line count.
        for part in src.split("function fz_").skip(1) {
            let begin = part.find("begin\n").unwrap() + 6;
            let end = part.find("\n  end;").unwrap();
            assert_eq!(part[begin..end].lines().count(), 24);
        }
    }

    #[test]
    fn custom_program_scales_to_ten_thousand_functions() {
        // Generation-only: S_10000 is a fuzz corpus, not a compile test.
        let n = 10_000;
        let src = synthetic_program_custom("bulk", n, 6, 1);
        assert_eq!(src.matches("function bulk_").count(), n);
        assert!(src.contains("function bulk_10000("));
        // Distinct seeded bodies, not one body repeated n times.
        let f1 = src.find("function bulk_1(").unwrap();
        let f2 = src.find("function bulk_2(").unwrap();
        let f3 = src.find("function bulk_3(").unwrap();
        assert_ne!(src[f1..f2], src[f2..f3]);
    }

    #[test]
    fn copies_have_distinct_bodies() {
        let src = synthetic_program(FunctionSize::Small, 2);
        let checked = phase1(&src).unwrap();
        let f1 = &checked.module.sections[0].functions[0];
        let f2 = &checked.module.sections[0].functions[1];
        assert_ne!(f1.body, f2.body, "seeding by name should vary bodies");
    }

    #[test]
    fn user_program_checks_and_has_paper_shape() {
        let src = user_program();
        let checked = phase1(&src).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(checked.module.sections.len(), 3);
        assert_eq!(checked.module.function_count(), 9);
        // Three large functions around 300 lines.
        let large: Vec<usize> = checked
            .module
            .functions()
            .map(|(_, f)| f.line_count(&src))
            .filter(|&l| l > 200)
            .collect();
        assert_eq!(large.len(), 3, "{large:?}");
        // Six small ones between 5 and ~50 lines of body.
        let small = checked
            .module
            .functions()
            .map(|(_, f)| f.line_count(&src))
            .filter(|&l| l < 60)
            .count();
        assert_eq!(small, 6);
    }

    #[test]
    fn cost_estimate_monotone_in_both_inputs() {
        assert!(cost_estimate(100, 2) > cost_estimate(35, 2));
        assert!(cost_estimate(100, 4) > cost_estimate(100, 2));
        assert!(cost_estimate(360, 5) > cost_estimate(280, 4));
        assert!(cost_estimate(4, 1) > 0);
    }

    #[test]
    fn cost_estimate_of_parsed_function() {
        let src = synthetic_program(FunctionSize::Medium, 1);
        let checked = phase1(&src).unwrap();
        let f = &checked.module.sections[0].functions[0];
        let est = cost_estimate_of(f, &src);
        assert!(est > cost_estimate(20, 1));
    }
}
