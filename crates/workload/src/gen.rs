//! Synthetic function generator.
//!
//! The paper's benchmark functions are "derived from one of our largest
//! application programs, a Monte Carlo style simulation": loop nests
//! (deeply nested for the larger sizes) of floating-point work that is
//! representative of a Warp computation kernel (§4.1). This generator
//! reproduces that shape with exact line counts — 4, 35, 100, 280 and
//! 360 lines — deterministically (seeded by the function name), so
//! measurements are reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five benchmark function sizes of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FunctionSize {
    /// 4 lines — `f_tiny`.
    Tiny,
    /// 35 lines — `f_small`.
    Small,
    /// 100 lines — `f_medium`.
    Medium,
    /// 280 lines — `f_large`.
    Large,
    /// 360 lines — `f_huge`.
    Huge,
}

impl FunctionSize {
    /// All sizes in increasing order.
    pub const ALL: [FunctionSize; 5] = [
        FunctionSize::Tiny,
        FunctionSize::Small,
        FunctionSize::Medium,
        FunctionSize::Large,
        FunctionSize::Huge,
    ];

    /// The body line count the paper reports for this size.
    pub fn lines(self) -> usize {
        match self {
            FunctionSize::Tiny => 4,
            FunctionSize::Small => 35,
            FunctionSize::Medium => 100,
            FunctionSize::Large => 280,
            FunctionSize::Huge => 360,
        }
    }

    /// Maximum loop nesting depth used at this size ("deeply nested
    /// loop bodies in the case of the larger programs").
    pub fn max_depth(self) -> usize {
        match self {
            FunctionSize::Tiny => 1,
            FunctionSize::Small => 2,
            FunctionSize::Medium => 3,
            FunctionSize::Large => 4,
            FunctionSize::Huge => 4,
        }
    }

    /// The paper's name for the function.
    pub fn paper_name(self) -> &'static str {
        match self {
            FunctionSize::Tiny => "f_tiny",
            FunctionSize::Small => "f_small",
            FunctionSize::Medium => "f_medium",
            FunctionSize::Large => "f_large",
            FunctionSize::Huge => "f_huge",
        }
    }
}

impl fmt::Display for FunctionSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Generates the source text of one synthetic function with exactly
/// `lines` body lines and loop nests up to `max_depth` deep.
///
/// The *structure* is deterministic in `(lines, max_depth)` — a
/// sequence of perfect loop nests ("kernels") whose innermost body
/// width grows with the function size, padded with straight-line
/// statements — so compile work scales predictably with size. The
/// random seed (derived from the name) only varies the arithmetic
/// inside the statements, giving every copy a distinct but equal-cost
/// body ("it is desirable that the parallel tasks be of equal size",
/// §4.1).
pub fn function_source_with(name: &str, lines: usize, max_depth: usize) -> String {
    function_source_shaped(name, lines, max_depth, None)
}

/// Like [`function_source_with`], with an explicit innermost kernel
/// width (clamped to what fits in `lines`). Wider kernels make the
/// software pipeliner work harder — used to give the user program's
/// small functions the multi-minute compile times the paper reports
/// for them (§4.3).
pub fn function_source_shaped(
    name: &str,
    lines: usize,
    max_depth: usize,
    kernel_width: Option<usize>,
) -> String {
    let mut seed = 0u64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(131).wrapping_add(b as u64);
    }
    seed = seed.wrapping_add(lines as u64);
    let mut rng = SmallRng::seed_from_u64(seed);

    let mut g = Gen {
        rng: &mut rng,
        lines: Vec::new(),
        indent: 2,
    };
    g.skeleton(lines.saturating_sub(1).max(1), max_depth, kernel_width);
    let mut body = g.lines;
    // Final accumulator return (1 line).
    body.push("    return acc;".to_string());

    let header = format!("  function {name}(x: float, samples: int): float");
    let vars = "  var\n    acc: float; t0: float; t1: float; t2: float; t3: float;\n    v: float[64]; w: float[64]; m: float[16][16];\n    seed: int; i0: int; i1: int; i2: int; i3: int; i4: int; i5: int;";
    format!("{header}\n{vars}\n  begin\n{}\n  end;", body.join("\n"))
}

/// Generates the source of the paper-named function for `size`.
pub fn function_source(name: &str, size: FunctionSize) -> String {
    function_source_with(name, size.lines(), size.max_depth())
}

struct Gen<'a> {
    rng: &'a mut SmallRng,
    lines: Vec<String>,
    indent: usize,
}

impl Gen<'_> {
    fn push(&mut self, text: &str) {
        let mut s = String::with_capacity(self.indent * 2 + text.len());
        for _ in 0..self.indent {
            s.push_str("  ");
        }
        s.push_str(text);
        self.lines.push(s);
    }

    /// Emits exactly `budget` body lines: perfect loop nests of depth
    /// `max_depth` with size-dependent innermost width, padded with
    /// straight-line statements.
    fn skeleton(&mut self, budget: usize, max_depth: usize, width_override: Option<usize>) {
        // Innermost kernel width grows with the function size: bigger
        // benchmark functions have fatter kernels, which is what makes
        // their software pipelining disproportionately expensive.
        let default_width = match budget {
            0..=6 => 1,
            7..=50 => 9,
            51..=150 => 13,
            151..=300 => 18,
            _ => 22,
        };
        let kernel_width = width_override
            .map(|w| w.clamp(1, budget.saturating_sub(2 * max_depth).max(1)))
            .unwrap_or(default_width);
        let mut remaining = budget;
        let mut kernel_seq = 0usize;
        while remaining > 0 {
            let overhead = 2 * max_depth;
            if remaining > overhead && kernel_width > 1 || remaining == overhead + kernel_width {
                // A perfect nest: max_depth headers, B statements, ends.
                let b = kernel_width.min(remaining - overhead);
                if b >= 1 {
                    self.kernel(max_depth, b, kernel_seq);
                    remaining -= overhead + b;
                    kernel_seq += 1;
                    continue;
                }
            }
            if remaining >= 3 && kernel_width == 1 {
                // Tiny functions: one minimal loop.
                self.kernel(1, remaining - 2, kernel_seq);
                remaining = 0;
                continue;
            }
            if remaining >= 5 && self.rng.gen_bool(0.12) {
                let guard = self.float_const();
                self.push(&format!("if t0 > {guard} then"));
                self.indent += 1;
                self.statement(0);
                self.indent -= 1;
                self.push("else");
                self.indent += 1;
                self.statement(0);
                self.indent -= 1;
                self.push("end;");
                remaining -= 5;
            } else {
                self.statement(0);
                remaining -= 1;
            }
        }
    }

    /// Emits a perfect nest of `depth` loops with `width` innermost
    /// statements (2·depth + width lines).
    fn kernel(&mut self, depth: usize, width: usize, seq: usize) {
        let bounds = [15, 31, 63, 7, 23];
        for d in 0..depth {
            let bound = bounds[(seq + d) % bounds.len()];
            self.push(&format!("for i{d} := 0 to {bound} do"));
            self.indent += 1;
        }
        for _ in 0..width {
            self.statement(depth);
        }
        for _ in 0..depth {
            self.indent -= 1;
            self.push("end;");
        }
    }

    fn float_const(&mut self) -> String {
        format!("{:.4}", self.rng.gen_range(0.1..4.0))
    }

    /// Emits one straight-line statement (1 line).
    fn statement(&mut self, depth: usize) {
        let idx = if depth == 0 {
            "0".to_string()
        } else {
            // Prefer the innermost index (unit-stride kernels).
            let d = if self.rng.gen_bool(0.7) {
                depth - 1
            } else {
                self.rng.gen_range(0..depth)
            };
            format!("i{}", d.min(5))
        };
        let c = self.float_const();
        let t_dst = self.rng.gen_range(0..4);
        let t_src = self.rng.gen_range(0..4);
        let choice = self.rng.gen_range(0..10);
        let stmt = match choice {
            0 => format!("acc := acc + v[{idx}] * {c};"),
            1 => format!("t{t_dst} := t{t_src} * {c} + acc;"),
            2 => format!("v[{idx}] := t{t_dst} * {c} + w[{idx}];"),
            3 => format!("w[{idx}] := sqrt(abs(t{t_src}) + {c});"),
            4 => format!("t{t_dst} := exp(min(t{t_src}, 2.0)) * {c};"),
            5 => format!("m[{idx} mod 16][{t_dst}] := m[{idx} mod 16][{t_src}] * {c} + t0;"),
            6 => "seed := (seed * 25173 + 13849) mod 8192;".to_string(),
            7 => format!("t{t_dst} := float(seed) * 0.0001 + x * {c};"),
            8 => format!("acc := acc + m[{t_dst}][{t_src}] * x;"),
            _ => format!("t{t_dst} := t{t_src} / ({c} + abs(x));"),
        };
        self.push(&stmt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body_lines(src: &str) -> usize {
        // Lines strictly between `begin` and the final `end;`.
        let begin = src.find("begin\n").unwrap() + 6;
        let end = src.rfind("\n  end;").unwrap();
        src[begin..end].lines().count()
    }

    #[test]
    fn exact_line_counts() {
        for size in FunctionSize::ALL {
            let src = function_source("probe", size);
            assert_eq!(
                body_lines(&src),
                size.lines(),
                "{size}: wrong body line count\n{src}"
            );
        }
    }

    #[test]
    fn deterministic_per_name() {
        let a = function_source("f1", FunctionSize::Medium);
        let b = function_source("f1", FunctionSize::Medium);
        assert_eq!(a, b);
        let c = function_source("f2", FunctionSize::Medium);
        assert_ne!(a, c, "different names should vary the body");
    }

    #[test]
    fn sizes_are_ordered() {
        assert!(FunctionSize::Tiny < FunctionSize::Huge);
        assert_eq!(FunctionSize::ALL.len(), 5);
        assert_eq!(FunctionSize::Large.lines(), 280);
    }

    #[test]
    fn generated_function_parses_in_section() {
        for size in FunctionSize::ALL {
            let f = function_source("k", size);
            let module = format!("module t;\nsection s on cells 0..9;\n{f}\nend;");
            let checked = warp_lang::phase1(&module);
            assert!(
                checked.is_ok(),
                "{size} failed: {}\n{module}",
                checked.unwrap_err()
            );
        }
    }

    #[test]
    fn larger_sizes_have_deeper_nesting() {
        let src = function_source("k", FunctionSize::Huge);
        let module = format!("module t;\nsection s on cells 0..9;\n{src}\nend;");
        let checked = warp_lang::phase1(&module).unwrap();
        let depth = checked.module.sections[0].functions[0].max_loop_depth();
        assert!(depth >= 3, "huge function should nest deeply, got {depth}");

        let src = function_source("k", FunctionSize::Tiny);
        let module = format!("module t;\nsection s on cells 0..9;\n{src}\nend;");
        let checked = warp_lang::phase1(&module).unwrap();
        let depth = checked.module.sections[0].functions[0].max_loop_depth();
        assert_eq!(depth, 1, "tiny must still be a (single) loop nest");
    }

    #[test]
    fn custom_line_count() {
        let src = function_source_with("u", 45, 2);
        assert_eq!(body_lines(&src), 45, "{src}");
    }
}
