//! # warp-workload
//!
//! Generators for the benchmark programs of the paper's evaluation
//! (§4.1, §4.3):
//!
//! * the five synthetic function sizes `f_tiny` (4 lines), `f_small`
//!   (35), `f_medium` (100), `f_large` (280) and `f_huge` (360) —
//!   Monte-Carlo-style loop nests derived from the authors' largest
//!   application;
//! * the `S_n` program series: one section with `n` equal-size
//!   functions, n ∈ {1, 2, 4, 8};
//! * the 9-function mechanical-engineering *user program* (three
//!   sections × three functions; three ~300-line and six 5–45-line
//!   functions);
//! * the lines-of-code × loop-nesting compile-cost heuristic used for
//!   load balancing.
//!
//! # Example
//!
//! ```
//! use warp_workload::{synthetic_program, FunctionSize};
//!
//! let src = synthetic_program(FunctionSize::Large, 4);
//! let checked = warp_lang::phase1(&src)?;
//! assert_eq!(checked.module.function_count(), 4);
//! # Ok::<(), warp_lang::Phase1Error>(())
//! ```

#![warn(missing_docs)]

pub mod gen;
pub mod programs;

pub use gen::{function_source, function_source_with, FunctionSize};
pub use programs::{
    call_heavy_program, cost_estimate, cost_estimate_of, synthetic_program, user_program,
    user_program_functions, UserFunction,
};
