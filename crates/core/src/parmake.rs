//! The §3.4 comparison: parallel `make` vs the parallel compiler.
//!
//! "While in parallel make several modules are compiled concurrently
//! with a sequential compiler, our system compiles a single module with
//! a parallel compiler. … In practice, both approaches could coexist,
//! with the parallel compiler speeding up the individual translations,
//! and the parallel make system organizing the system generation
//! effort."
//!
//! This module builds a small multi-module *system* (a makefile with
//! dependencies), compiles every module for real, and simulates four
//! build strategies on the 1989 host:
//!
//! 1. **sequential make** — modules one after another, sequential
//!    compiler;
//! 2. **parallel make** — dependency levels in parallel, sequential
//!    compiler per module (Baalbergen's scheme);
//! 3. **parallel compiler** — modules one after another, each compiled
//!    by the paper's parallel compiler;
//! 4. **combined** — dependency levels in parallel *and* the parallel
//!    compiler per module;
//! 5. **combined + warm cache** — strategy 4 after a prior identical
//!    build populated the function cache: every function is a hit, so
//!    each module's master fetches stored objects instead of forking
//!    function masters ([`crate::simspec::par_spec_cached`]);
//! 6. **combined, faulted** — strategy 4 again, but with a seeded
//!    [`FaultPlan`] injected over the fault-free makespan: the cost of
//!    the combined build when workstations crash, slow down, or drop
//!    off the Ethernet mid-build and the masters must re-dispatch
//!    orphaned work.
//!
//! Parallel make's ceiling is the critical path of the dependency
//! graph (the deepest chain of modules), whereas the parallel
//! compiler's ceiling is each module's largest function — which is
//! why the combined strategy beats either alone (`figures parmake`,
//! EXPERIMENTS.md "Parallel make").

use crate::costmodel::CostModel;
use crate::driver::{compile_module_source, CompileError, CompileResult};
use crate::experiment::Experiment;
use crate::scheduler::Assignment;
use crate::simspec::{par_spec, par_spec_cached, seq_spec, seq_spec_cached};
use serde::{Deserialize, Serialize};
use warp_netsim::{simulate, simulate_faulted, FaultPlan, ProcKind, ProcessSpec};
use warp_workload::{synthetic_program, FunctionSize};

/// One module of the system plus its dependency level (modules on the
/// same level are independent and may build concurrently).
#[derive(Debug, Clone)]
pub struct SystemModule {
    /// Module name (for reporting).
    pub name: String,
    /// Compiled result (real compilation).
    pub result: CompileResult,
    /// Dependency level (0 builds first).
    pub level: usize,
}

/// Elapsed seconds per build strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParmakeReport {
    /// Strategy 1: everything sequential.
    pub sequential_s: f64,
    /// Strategy 2: parallel make × sequential compiler.
    pub parallel_make_s: f64,
    /// Strategy 3: sequential make × parallel compiler.
    pub parallel_compiler_s: f64,
    /// Strategy 4: parallel make × parallel compiler.
    pub combined_s: f64,
    /// Strategy 5: strategy 4 with a fully warm compilation cache.
    pub combined_warm_s: f64,
    /// Strategy 6: strategy 4 under [`PARMAKE_FAULTS`] injected host
    /// faults (seed [`PARMAKE_FAULT_SEED`]) — what the combined build
    /// costs when the farm misbehaves mid-build and the masters must
    /// re-dispatch lost work.
    pub combined_faulted_s: f64,
}

/// Seed of the fault plan behind [`ParmakeReport::combined_faulted_s`].
pub const PARMAKE_FAULT_SEED: u64 = 0x1989;
/// Fault events injected for [`ParmakeReport::combined_faulted_s`].
pub const PARMAKE_FAULTS: usize = 3;

/// The default 4-module system: two independent leaf modules, a module
/// depending on both, and a final link-ish module.
///
/// # Errors
///
/// Propagates compilation errors.
pub fn default_system(e: &Experiment) -> Result<Vec<SystemModule>, CompileError> {
    let specs = [
        ("libmath", synthetic_program(FunctionSize::Medium, 2), 0),
        ("libsignal", synthetic_program(FunctionSize::Medium, 3), 0),
        ("kernels", synthetic_program(FunctionSize::Large, 2), 1),
        ("app", synthetic_program(FunctionSize::Small, 4), 2),
    ];
    let mut out = Vec::new();
    for (name, src, level) in specs {
        out.push(SystemModule {
            name: name.to_string(),
            result: compile_module_source(&src, &e.opts)?,
            level,
        });
    }
    Ok(out)
}

/// Groups module indices by level, ascending.
fn levels(modules: &[SystemModule]) -> Vec<Vec<usize>> {
    let max = modules.iter().map(|m| m.level).max().unwrap_or(0);
    (0..=max)
        .map(|l| {
            modules
                .iter()
                .enumerate()
                .filter(|(_, m)| m.level == l)
                .map(|(i, _)| i)
                .collect()
        })
        .collect()
}

/// Round-robin FCFS assignment starting at workstation offset `start`
/// (so concurrent modules spread over different machines).
fn offset_fcfs(n: usize, available: usize, start: usize) -> Assignment {
    let available = available.max(1);
    let workstation = (0..n).map(|i| 1 + (start + i) % available).collect();
    Assignment {
        workstation,
        processors: n.min(available),
    }
}

/// Builds the simulation spec for one strategy.
fn build_spec(
    modules: &[SystemModule],
    cm: &CostModel,
    parallel_modules: bool,
    parallel_compiler: bool,
    warm_cache: bool,
) -> ProcessSpec {
    let avail = cm.host.workstations.saturating_sub(1).max(1);
    let mut ws_cursor = 0usize;
    let mut module_spec = |idx: usize, m: &SystemModule| -> ProcessSpec {
        let n = m.result.records.len();
        if parallel_compiler {
            let a = offset_fcfs(n, avail, ws_cursor);
            ws_cursor += n;
            let mut spec = if warm_cache {
                par_spec_cached(&m.result, cm, &a, &vec![true; n])
            } else {
                par_spec(&m.result, cm, &a)
            };
            spec.name = format!("make {} (parallel-cc)", m.name);
            spec
        } else {
            let mut spec = if warm_cache {
                seq_spec_cached(&m.result, cm, &vec![true; n])
            } else {
                seq_spec(&m.result, cm)
            };
            // Each make job runs its compiler on its own workstation.
            spec.workstation = 1 + idx % avail;
            spec.name = format!("make {} (seqcc)", m.name);
            spec
        }
    };

    let mut root = ProcessSpec::new("make", 0, ProcKind::C);
    if parallel_modules {
        for level in levels(modules) {
            let children: Vec<ProcessSpec> = level
                .into_iter()
                .map(|i| module_spec(i, &modules[i]))
                .collect();
            root = root.fork(children).join();
        }
    } else {
        for (i, m) in modules.iter().enumerate() {
            root = root.fork(vec![module_spec(i, m)]).join();
        }
    }
    root
}

/// Runs all six strategies over [`default_system`].
///
/// # Errors
///
/// Propagates compilation errors.
pub fn parmake_comparison(e: &Experiment) -> Result<ParmakeReport, CompileError> {
    let modules = default_system(e)?;
    Ok(parmake_comparison_of(&modules, &e.model))
}

/// Runs all six strategies over a caller-supplied system.
pub fn parmake_comparison_of(modules: &[SystemModule], cm: &CostModel) -> ParmakeReport {
    let run = |pm: bool, pc: bool, wc: bool| {
        simulate(cm.host, build_spec(modules, cm, pm, pc, wc)).elapsed_s
    };
    let combined_s = run(true, true, false);
    // Strategy 6: the combined build again, with a seeded fault plan
    // spread over its fault-free makespan.
    let plan = FaultPlan::generate(
        PARMAKE_FAULT_SEED,
        PARMAKE_FAULTS,
        cm.host.workstations,
        combined_s,
    );
    let combined_faulted_s =
        simulate_faulted(cm.host, plan, build_spec(modules, cm, true, true, false)).elapsed_s;
    ParmakeReport {
        sequential_s: run(false, false, false),
        parallel_make_s: run(true, false, false),
        parallel_compiler_s: run(false, true, false),
        combined_s,
        combined_warm_s: run(true, true, true),
        combined_faulted_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_are_ordered_as_the_paper_argues() {
        let e = Experiment::default();
        let r = parmake_comparison(&e).expect("parmake");
        // Both parallel strategies beat fully sequential builds.
        assert!(r.parallel_make_s < r.sequential_s, "{r:?}");
        assert!(r.parallel_compiler_s < r.sequential_s, "{r:?}");
        // The combination is the best of all ("both approaches could
        // coexist").
        assert!(r.combined_s <= r.parallel_make_s + 1.0, "{r:?}");
        assert!(r.combined_s <= r.parallel_compiler_s + 1.0, "{r:?}");
        // A warm cache beats even the combined strategy by a wide
        // margin: nothing is recompiled, only fetched.
        assert!(r.combined_warm_s < 0.5 * r.combined_s, "{r:?}");
        // Faults only ever delay the combined build — and the build
        // still terminates (the masters re-dispatch lost work).
        assert!(r.combined_faulted_s >= r.combined_s, "{r:?}");
        assert!(r.combined_faulted_s.is_finite(), "{r:?}");
    }

    #[test]
    fn levels_partition_modules() {
        let e = Experiment::default();
        let modules = default_system(&e).unwrap();
        let ls = levels(&modules);
        assert_eq!(ls.len(), 3);
        assert_eq!(ls.iter().map(Vec::len).sum::<usize>(), modules.len());
        assert_eq!(ls[0].len(), 2, "two independent leaf modules");
    }

    #[test]
    fn offset_assignment_spreads_modules() {
        let a = offset_fcfs(3, 10, 0);
        let b = offset_fcfs(3, 10, 3);
        assert_eq!(a.workstation, vec![1, 2, 3]);
        assert_eq!(b.workstation, vec![4, 5, 6]);
    }
}
