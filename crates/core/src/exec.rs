//! The work-stealing stage executor.
//!
//! [`run_stealing`] fans a list of independent jobs out over a fixed
//! set of worker threads using per-worker deques ([`crossbeam::deque`])
//! seeded round-robin in the caller's order: each worker drains its own
//! queue first and steals from siblings when it runs dry, so the stage
//! finishes when the *slowest single job* finishes, not when the
//! unluckiest worker's pre-assigned share does. Used for the phases the
//! 1989 paper left sequential — chunked lexing, per-section parsing and
//! sema (phase 1), and per-function address resolution (phase 4) — and
//! as the substrate of the compile-stage scheduler in
//! [`crate::threads`].
//!
//! Results are returned **in job order** regardless of which worker ran
//! what, which is what makes every parallel stage bit-identical to its
//! sequential counterpart: ordering is decided by the job list, never
//! by thread timing.
//!
//! # Observability
//!
//! With an enabled [`Trace`] the executor records the scheduler events
//! documented in `docs/TRACING.md`:
//!
//! * `sched` **steal** instants on the thief's track (`steal from
//!   worker V`);
//! * `sched` **idle** instants when a worker finds no work anywhere
//!   (one per idle episode, not per poll);
//! * a **`queue w`** counter per worker tracking its deque depth as
//!   jobs are seeded and drained.

use crossbeam::deque::{Stealer, Worker};
use std::sync::atomic::{AtomicUsize, Ordering};
use warp_obs::{Trace, TrackId};

/// Interns one trace track per worker (`worker 0` … `worker N-1`).
/// Tracks are interned by name, so repeated calls — and the sequential
/// driver's own `worker 0` — share rows.
pub(crate) fn worker_tracks(trace: &Trace, workers: usize) -> Vec<TrackId> {
    (0..workers)
        .map(|w| trace.track(&format!("worker {w}")))
        .collect()
}

/// Runs `jobs` to completion on up to `workers` stealing workers and
/// returns the results in job order.
///
/// Jobs are seeded round-robin over per-worker FIFO deques in the given
/// order (pass an LPT-sorted list to spread the expensive heads across
/// workers). `f` is called as `f(worker, job_index, job)`. With one
/// worker (or one job) everything runs inline on the calling thread as
/// worker 0 — no threads are spawned, which keeps the degenerate case
/// exactly as cheap as a sequential loop.
///
/// A panic inside `f` propagates to the caller once the scope joins,
/// the same way it would in a sequential loop.
pub(crate) fn run_stealing<T, R, F>(
    workers: usize,
    jobs: Vec<T>,
    tracks: &[TrackId],
    trace: &Trace,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, usize, T) -> R + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    if workers == 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| f(0, i, job))
            .collect();
    }

    let locals: Vec<Worker<(usize, T)>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, T)>> = locals.iter().map(Worker::stealer).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        locals[i % workers].push((i, job));
    }
    if trace.is_enabled() {
        let ts = trace.now_ns();
        for (w, local) in locals.iter().enumerate() {
            let track = tracks.get(w).copied().unwrap_or(TrackId(0));
            trace.counter(format!("queue {w}"), track, ts, local.len() as f64);
        }
    }

    let completed = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = locals
            .into_iter()
            .enumerate()
            .map(|(w, local)| {
                let stealers = &stealers;
                let completed = &completed;
                let f = &f;
                let track = tracks.get(w).copied().unwrap_or(TrackId(0));
                scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    let mut was_idle = false;
                    loop {
                        let task = local
                            .pop()
                            .or_else(|| steal_from_siblings(w, stealers, trace, track));
                        match task {
                            Some((i, job)) => {
                                if trace.is_enabled() {
                                    trace.counter(
                                        format!("queue {w}"),
                                        track,
                                        trace.now_ns(),
                                        local.len() as f64,
                                    );
                                }
                                was_idle = false;
                                out.push((i, f(w, i, job)));
                                completed.fetch_add(1, Ordering::Release);
                            }
                            None => {
                                if completed.load(Ordering::Acquire) >= n {
                                    break;
                                }
                                if !was_idle {
                                    was_idle = true;
                                    trace.instant_now("sched", "idle", track);
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("stage worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every job produced a result"))
        .collect()
}

/// One steal sweep over the victim ring starting after `w`. Records a
/// `sched` steal instant on success.
fn steal_from_siblings<T>(
    w: usize,
    stealers: &[Stealer<T>],
    trace: &Trace,
    track: TrackId,
) -> Option<T> {
    let k = stealers.len();
    for off in 1..k {
        let victim = (w + off) % k;
        if let Some(task) = stealers[victim].steal().success() {
            if trace.is_enabled() {
                trace.instant_now("sched", format!("steal from worker {victim}"), track);
            }
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<usize> = (0..100).collect();
        let out = run_stealing(4, jobs, &[], &Trace::disabled(), |_, i, job| {
            assert_eq!(i, job);
            job * 3
        });
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_job_lists() {
        let out: Vec<u32> =
            run_stealing(8, Vec::<u32>::new(), &[], &Trace::disabled(), |_, _, j| j);
        assert!(out.is_empty());
        let out = run_stealing(8, vec![7u32], &[], &Trace::disabled(), |w, _, j| {
            assert_eq!(w, 0, "single job runs inline");
            j + 1
        });
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn uneven_jobs_are_stolen_not_stranded() {
        // Worker 0's seeded share includes one slow job; the other
        // workers must steal the rest of its queue rather than idle.
        let ran_by: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let jobs: Vec<usize> = (0..64).collect();
        let out = run_stealing(4, jobs, &[], &Trace::disabled(), |w, i, job| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            ran_by[i].store(w, Ordering::Relaxed);
            job
        });
        assert_eq!(out.len(), 64);
        let thieves: std::collections::BTreeSet<usize> =
            ran_by.iter().map(|a| a.load(Ordering::Relaxed)).collect();
        assert!(thieves.len() > 1, "work spread across workers: {thieves:?}");
    }

    #[test]
    fn sched_instants_and_queue_counters_are_recorded() {
        let trace = Trace::new(warp_obs::ClockDomain::Monotonic);
        let tracks = worker_tracks(&trace, 4);
        let jobs: Vec<usize> = (0..32).collect();
        let _ = run_stealing(4, jobs, &tracks, &trace, |_, _, j| {
            if j % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            j
        });
        let snap = trace.snapshot();
        assert!(
            snap.counters.iter().any(|c| c.name.starts_with("queue ")),
            "queue-depth counters recorded"
        );
        // Steal/idle instants are timing-dependent, but with stalled
        // jobs on a seeded share at least one worker must have gone
        // hunting or idle at some point.
        assert!(
            snap.instants.iter().any(|i| i.cat == "sched"),
            "sched instants recorded: {:?}",
            snap.instants
        );
    }
}
