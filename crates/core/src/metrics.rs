//! Measurements and the paper's overhead decomposition (§4.2).
//!
//! * *Elapsed (user) time* — wall clock until the master finishes.
//! * *CPU time, per-processor* — the paper reports per-processor CPU
//!   rather than cumulative ("we found the cumulative CPU time … not
//!   nearly as informative").
//! * *Total overhead* — parallel elapsed minus the ideal
//!   `sequential / k`.
//! * *Implementation overhead* — CPU the parallel scheme adds: the
//!   master's setup (one extra parse) and scheduling, plus the section
//!   masters' work.
//! * *System overhead* — everything else: process startup, network and
//!   file-server contention, GC, paging. **May be negative** when the
//!   sequential compiler thrashes on a program that does not fit in one
//!   workstation's memory (Figure 9).

use crate::simspec::{FN_PREFIX, MASTER_NAME, PARSER_NAME, SECTION_PREFIX, SEQ_NAME};
use serde::{Deserialize, Serialize};
use warp_netsim::SimReport;

/// One compilation measurement (sequential or parallel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Elapsed wall-clock seconds (the user time of §4.2.1).
    pub elapsed_s: f64,
    /// Per-workstation CPU busy seconds.
    pub cpu_per_processor: Vec<f64>,
    /// Maximum per-processor CPU seconds (what the paper plots as "CPU
    /// time" for the parallel compiler).
    pub max_cpu_s: f64,
    /// Master CPU seconds (setup + scheduling + assembly) — 0 for the
    /// sequential compiler.
    pub master_cpu_s: f64,
    /// Parser-child CPU seconds (the extra parse).
    pub parser_cpu_s: f64,
    /// Section-master CPU seconds.
    pub section_cpu_s: f64,
    /// Function-master CPU seconds (or the whole sequential compiler).
    pub compile_cpu_s: f64,
    /// GC + paging overhead seconds across Lisp processes.
    pub memory_overhead_s: f64,
}

impl Measurement {
    /// Extracts a measurement from a simulator report.
    pub fn from_report(report: &SimReport) -> Measurement {
        let cpu_of = |prefix: &str| report.cpu_with_prefix(prefix);
        let memory_overhead_s = report.processes.iter().map(|p| p.overhead_s).sum();
        Measurement {
            elapsed_s: report.elapsed_s,
            cpu_per_processor: report.cpu_busy_s.clone(),
            max_cpu_s: report.max_cpu_busy_s(),
            master_cpu_s: cpu_of(MASTER_NAME),
            parser_cpu_s: cpu_of(PARSER_NAME),
            section_cpu_s: cpu_of(SECTION_PREFIX),
            compile_cpu_s: cpu_of(FN_PREFIX) + cpu_of(SEQ_NAME),
            memory_overhead_s,
        }
    }

    /// Implementation overhead per §4.2.3: master time (setup +
    /// scheduling) plus section time plus the extra parse.
    pub fn implementation_overhead_s(&self) -> f64 {
        self.master_cpu_s + self.parser_cpu_s + self.section_cpu_s
    }
}

/// The overhead decomposition of one parallel run against its
/// sequential baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overheads {
    /// Processors assumed for the ideal time (`min(k, functions)`).
    pub k: usize,
    /// `parallel_elapsed − sequential_elapsed / k` seconds.
    pub total_s: f64,
    /// Master + parser + section-master CPU seconds.
    pub implementation_s: f64,
    /// `total − implementation`; negative when the sequential compiler
    /// thrashes.
    pub system_s: f64,
    /// Total overhead as a fraction of parallel elapsed time.
    pub total_frac: f64,
    /// System overhead as a fraction of parallel elapsed time.
    pub system_frac: f64,
}

/// Computes the §4.2.3 decomposition.
pub fn overheads(par: &Measurement, seq: &Measurement, k: usize) -> Overheads {
    let k = k.max(1);
    let ideal = seq.elapsed_s / k as f64;
    let total = par.elapsed_s - ideal;
    let implementation = par.implementation_overhead_s();
    let system = total - implementation;
    Overheads {
        k,
        total_s: total,
        implementation_s: implementation,
        system_s: system,
        total_frac: total / par.elapsed_s,
        system_frac: system / par.elapsed_s,
    }
}

/// Speedup of `par` over `seq` on elapsed time.
pub fn speedup(seq: &Measurement, par: &Measurement) -> f64 {
    seq.elapsed_s / par.elapsed_s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(elapsed: f64, master: f64, parser: f64, section: f64) -> Measurement {
        Measurement {
            elapsed_s: elapsed,
            cpu_per_processor: vec![],
            max_cpu_s: 0.0,
            master_cpu_s: master,
            parser_cpu_s: parser,
            section_cpu_s: section,
            compile_cpu_s: 0.0,
            memory_overhead_s: 0.0,
        }
    }

    #[test]
    fn overhead_decomposition() {
        let seq = meas(100.0, 0.0, 0.0, 0.0);
        let par = meas(30.0, 1.0, 2.0, 1.0);
        let o = overheads(&par, &seq, 4);
        assert!((o.total_s - 5.0).abs() < 1e-9); // 30 - 25
        assert!((o.implementation_s - 4.0).abs() < 1e-9);
        assert!((o.system_s - 1.0).abs() < 1e-9);
        assert!((o.total_frac - 5.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn negative_system_overhead_possible() {
        // Sequential thrashes: 100s for work the parallel version does
        // in 26s on 4 processors with 1s of implementation overhead —
        // total overhead 1s < implementation 4s → system −3s.
        let seq = meas(100.0, 0.0, 0.0, 0.0);
        let par = meas(26.0, 1.0, 2.0, 1.0);
        let o = overheads(&par, &seq, 4);
        assert!(o.system_s < 0.0, "{o:?}");
    }

    #[test]
    fn speedup_is_elapsed_ratio() {
        let seq = meas(120.0, 0.0, 0.0, 0.0);
        let par = meas(30.0, 0.0, 0.0, 0.0);
        assert!((speedup(&seq, &par) - 4.0).abs() < 1e-9);
    }
}
