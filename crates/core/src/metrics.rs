//! Measurements and the paper's overhead decomposition (§4.2).
//!
//! * *Elapsed (user) time* — wall clock until the master finishes.
//! * *CPU time, per-processor* — the paper reports per-processor CPU
//!   rather than cumulative ("we found the cumulative CPU time … not
//!   nearly as informative").
//! * *Total overhead* — parallel elapsed minus the ideal
//!   `sequential / k`.
//! * *Implementation overhead* — CPU the parallel scheme adds: the
//!   master's setup (one extra parse) and scheduling, plus the section
//!   masters' work.
//! * *System overhead* — everything else: process startup, network and
//!   file-server contention, GC, paging. **May be negative** when the
//!   sequential compiler thrashes on a program that does not fit in one
//!   workstation's memory (Figure 9).

use crate::simspec::{FN_PREFIX, MASTER_NAME, PARSER_NAME, SECTION_PREFIX, SEQ_NAME};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use warp_netsim::SimReport;
use warp_obs::TraceSnapshot;

/// One compilation measurement (sequential or parallel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Elapsed wall-clock seconds (the user time of §4.2.1).
    pub elapsed_s: f64,
    /// Per-workstation CPU busy seconds.
    pub cpu_per_processor: Vec<f64>,
    /// Maximum per-processor CPU seconds (what the paper plots as "CPU
    /// time" for the parallel compiler).
    pub max_cpu_s: f64,
    /// Master CPU seconds (setup + scheduling + assembly) — 0 for the
    /// sequential compiler.
    pub master_cpu_s: f64,
    /// Parser-child CPU seconds (the extra parse).
    pub parser_cpu_s: f64,
    /// Section-master CPU seconds.
    pub section_cpu_s: f64,
    /// Function-master CPU seconds (or the whole sequential compiler).
    pub compile_cpu_s: f64,
    /// GC + paging overhead seconds across Lisp processes.
    pub memory_overhead_s: f64,
}

impl Measurement {
    /// Extracts a measurement from a simulator report.
    pub fn from_report(report: &SimReport) -> Measurement {
        let cpu_of = |prefix: &str| report.cpu_with_prefix(prefix);
        let memory_overhead_s = report.processes.iter().map(|p| p.overhead_s).sum();
        Measurement {
            elapsed_s: report.elapsed_s,
            cpu_per_processor: report.cpu_busy_s.clone(),
            max_cpu_s: report.max_cpu_busy_s(),
            master_cpu_s: cpu_of(MASTER_NAME),
            parser_cpu_s: cpu_of(PARSER_NAME),
            section_cpu_s: cpu_of(SECTION_PREFIX),
            compile_cpu_s: cpu_of(FN_PREFIX) + cpu_of(SEQ_NAME),
            memory_overhead_s,
        }
    }

    /// Implementation overhead per §4.2.3: master time (setup +
    /// scheduling) plus section time plus the extra parse.
    pub fn implementation_overhead_s(&self) -> f64 {
        self.master_cpu_s + self.parser_cpu_s + self.section_cpu_s
    }

    /// Extracts a measurement from a virtual-time trace snapshot — the
    /// span-buffer route to the same numbers [`from_report`] computes
    /// from the simulator's counters (`docs/TRACING.md`; the figure
    /// runs assert the two agree).
    ///
    /// Reads `"cpu"` service spans (name = process name, `ws` +
    /// `overhead_ns` args) and the `workstations` counter; elapsed time
    /// is the trace horizon.
    ///
    /// [`from_report`]: Measurement::from_report
    pub fn from_trace(snap: &TraceSnapshot) -> Measurement {
        let counted_ws = snap
            .counters
            .iter()
            .rev()
            .find(|c| c.name == "workstations")
            .map(|c| c.value as usize)
            .unwrap_or(0);
        // Per-process CPU totals in integer nanoseconds (converted to
        // seconds once per process, matching the report's rounding).
        let mut per_proc: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        let mut cpu_ns: Vec<u64> = vec![0; counted_ws];
        for s in snap.spans_in("cpu") {
            let ws = s.arg("ws").unwrap_or(0.0) as usize;
            if ws >= cpu_ns.len() {
                cpu_ns.resize(ws + 1, 0);
            }
            cpu_ns[ws] += s.dur_ns;
            let e = per_proc.entry(s.name.as_str()).or_insert((0, 0));
            e.0 += s.dur_ns;
            e.1 += s.arg("overhead_ns").unwrap_or(0.0) as u64;
        }
        let cpu_of = |prefix: &str| -> f64 {
            per_proc
                .iter()
                .filter(|(name, _)| name.starts_with(prefix))
                .map(|(_, (ns, _))| *ns as f64 / 1e9)
                .sum()
        };
        let cpu_per_processor: Vec<f64> = cpu_ns.iter().map(|&ns| ns as f64 / 1e9).collect();
        let max_cpu_s = cpu_per_processor.iter().copied().fold(0.0, f64::max);
        let memory_overhead_s = per_proc.values().map(|(_, ov)| *ov as f64 / 1e9).sum();
        Measurement {
            elapsed_s: snap.end_ns() as f64 / 1e9,
            cpu_per_processor,
            max_cpu_s,
            master_cpu_s: cpu_of(MASTER_NAME),
            parser_cpu_s: cpu_of(PARSER_NAME),
            section_cpu_s: cpu_of(SECTION_PREFIX),
            compile_cpu_s: cpu_of(FN_PREFIX) + cpu_of(SEQ_NAME),
            memory_overhead_s,
        }
    }
}

/// The overhead decomposition of one parallel run against its
/// sequential baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Overheads {
    /// Processors assumed for the ideal time (`min(k, functions)`).
    pub k: usize,
    /// `parallel_elapsed − sequential_elapsed / k` seconds.
    pub total_s: f64,
    /// Master + parser + section-master CPU seconds.
    pub implementation_s: f64,
    /// `total − implementation`; negative when the sequential compiler
    /// thrashes.
    pub system_s: f64,
    /// Total overhead as a fraction of parallel elapsed time.
    pub total_frac: f64,
    /// System overhead as a fraction of parallel elapsed time.
    pub system_frac: f64,
}

/// Computes the §4.2.3 decomposition. A zero parallel elapsed time
/// (possible for degenerate empty workloads) yields zero fractions
/// rather than NaN.
pub fn overheads(par: &Measurement, seq: &Measurement, k: usize) -> Overheads {
    let k = k.max(1);
    let ideal = seq.elapsed_s / k as f64;
    let total = par.elapsed_s - ideal;
    let implementation = par.implementation_overhead_s();
    let system = total - implementation;
    let frac = |x: f64| {
        if par.elapsed_s > 0.0 {
            x / par.elapsed_s
        } else {
            0.0
        }
    };
    Overheads {
        k,
        total_s: total,
        implementation_s: implementation,
        system_s: system,
        total_frac: frac(total),
        system_frac: frac(system),
    }
}

/// Speedup of `par` over `seq` on elapsed time.
pub fn speedup(seq: &Measurement, par: &Measurement) -> f64 {
    seq.elapsed_s / par.elapsed_s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(elapsed: f64, master: f64, parser: f64, section: f64) -> Measurement {
        Measurement {
            elapsed_s: elapsed,
            cpu_per_processor: vec![],
            max_cpu_s: 0.0,
            master_cpu_s: master,
            parser_cpu_s: parser,
            section_cpu_s: section,
            compile_cpu_s: 0.0,
            memory_overhead_s: 0.0,
        }
    }

    #[test]
    fn overhead_decomposition() {
        let seq = meas(100.0, 0.0, 0.0, 0.0);
        let par = meas(30.0, 1.0, 2.0, 1.0);
        let o = overheads(&par, &seq, 4);
        assert!((o.total_s - 5.0).abs() < 1e-9); // 30 - 25
        assert!((o.implementation_s - 4.0).abs() < 1e-9);
        assert!((o.system_s - 1.0).abs() < 1e-9);
        assert!((o.total_frac - 5.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn negative_system_overhead_possible() {
        // Sequential thrashes: 100s for work the parallel version does
        // in 26s on 4 processors with 1s of implementation overhead —
        // total overhead 1s < implementation 4s → system −3s.
        let seq = meas(100.0, 0.0, 0.0, 0.0);
        let par = meas(26.0, 1.0, 2.0, 1.0);
        let o = overheads(&par, &seq, 4);
        assert!(o.system_s < 0.0, "{o:?}");
    }

    #[test]
    fn speedup_is_elapsed_ratio() {
        let seq = meas(120.0, 0.0, 0.0, 0.0);
        let par = meas(30.0, 0.0, 0.0, 0.0);
        assert!((speedup(&seq, &par) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elapsed_yields_finite_fractions() {
        // A degenerate empty workload: both runs take no time at all.
        // The decomposition must not produce NaN fractions.
        let seq = meas(0.0, 0.0, 0.0, 0.0);
        let par = meas(0.0, 0.0, 0.0, 0.0);
        let o = overheads(&par, &seq, 4);
        assert_eq!(o.total_s, 0.0);
        assert_eq!(o.total_frac, 0.0);
        assert_eq!(o.system_frac, 0.0);
        assert!(o.total_frac.is_finite() && o.system_frac.is_finite());
    }

    #[test]
    fn k_of_one_compares_against_full_sequential_time() {
        // On one processor the ideal time IS the sequential time, so
        // total overhead is just the parallel scheme's slowdown.
        let seq = meas(100.0, 0.0, 0.0, 0.0);
        let par = meas(110.0, 3.0, 2.0, 1.0);
        let o = overheads(&par, &seq, 1);
        assert_eq!(o.k, 1);
        assert!((o.total_s - 10.0).abs() < 1e-9);
        assert!((o.system_s - 4.0).abs() < 1e-9);
        // k = 0 is clamped to 1, not a division by zero.
        let o0 = overheads(&par, &seq, 0);
        assert_eq!(o0.k, 1);
        assert_eq!(o0.total_s, o.total_s);
    }

    #[test]
    fn superlinear_parallel_run_gives_negative_total_overhead() {
        // Parallel beats even the ideal seq/k split (Figure 9's
        // thrashing regime): total overhead goes negative and the
        // fractions follow the sign.
        let seq = meas(100.0, 0.0, 0.0, 0.0);
        let par = meas(20.0, 1.0, 0.5, 0.5);
        let o = overheads(&par, &seq, 4);
        assert!(o.total_s < 0.0, "{o:?}");
        assert!(o.system_s < o.total_s, "{o:?}");
        assert!(o.total_frac < 0.0 && o.total_frac.is_finite());
        assert!((speedup(&seq, &par) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn from_trace_of_empty_snapshot_is_all_zero() {
        let snap = warp_obs::TraceSnapshot {
            domain: warp_obs::ClockDomain::Virtual,
            tracks: vec![],
            spans: vec![],
            instants: vec![],
            counters: vec![],
        };
        let m = Measurement::from_trace(&snap);
        assert_eq!(m.elapsed_s, 0.0);
        assert!(m.cpu_per_processor.is_empty());
        assert_eq!(m.max_cpu_s, 0.0);
        assert_eq!(m.implementation_overhead_s(), 0.0);
    }
}
