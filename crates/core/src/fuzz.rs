//! `warp-fuzz`: the large-scale differential fuzzing harness.
//!
//! The repository has *three* independent opinions about what a
//! compiled W2 program means: the strict reference interpreter
//! ([`warp_target::interp::Cell`]), the batched vectorized interpreter
//! ([`warp_target::batch::BatchInterp`]), and the static machine-code
//! verifier ([`warp_analyze::verify_section_image`]). This module
//! generates seeded corpora far beyond the paper's `f_huge` — deep
//! loop nests, adversarial register pressure, data-dependent trip
//! counts, division traps, pipelined-loop edge cases — and runs every
//! program all three ways:
//!
//! 1. the **verifier** must accept every compiler-produced image;
//! 2. the **batch** interpreter must agree with a solo **strict** run
//!    lane for lane: same halt/trap status, same cycle count, same
//!    register file down to the bit and poison-bit level.
//!
//! Any disagreement is shrunk to a minimal reproducer by greedy line
//! removal (re-compiling each candidate) and surfaced as a
//! [`Disagreement`]; CI commits shrunk reproducers under
//! `tests/fixtures/fuzz/` where [`replay_fixture`] keeps them green
//! forever. The `warp_fuzz` binary drives the same loop from the
//! command line, honouring `WARP_FUZZ_SEED` / `WARP_FUZZ_ITERS` so a
//! nightly job can dig deeper than the bounded PR job. See
//! `docs/FUZZING.md` for the full protocol.
//!
//! The harness doubles as the soundness oracle for the abstract
//! interpreter ([`warp_ir::absint`]): for every agreeing program,
//! [`check_absint`] re-derives each function's final IR and
//! [`warp_ir::FactSet`], replays every lane through the strict IR
//! evaluator and rejects any *false fact* — a "no-trap" claim on a
//! site that traps concretely, a "dead" edge that is taken, a loop
//! bound that is exceeded. It also compiles the module a second time
//! with the fact-driven optimization enabled and requires the strict
//! machine outcomes (halt/trap, return bits, output queues) to be
//! unchanged lane for lane. See `docs/ANALYSIS.md` for the protocol.

use crate::driver::{compile_module_source, run_phase1, CompileOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use warp_target::batch::{BatchInterp, LaneInput, LaneStatus};
use warp_target::interp::{Cell, InterpError, Value};
use warp_target::isa::Reg;
use warp_target::program::SectionImage;

/// Knobs of one fuzzing run. Everything is derived from `seed`, so a
/// `(seed, programs, lanes)` triple names a corpus exactly.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; program `p` uses a splitmix of `seed` and `p`.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub programs: usize,
    /// Independent input lanes run per program (the batch width).
    pub lanes: usize,
    /// Cycle budget per lane; exceeding it is a `CycleLimit` trap,
    /// which both engines must report identically.
    pub max_cycles: u64,
    /// Body statement budget per generated function.
    pub max_stmts: usize,
    /// Maximum loop nesting depth in generated bodies.
    pub max_depth: usize,
    /// Run the absint soundness oracle ([`check_absint`]) on every
    /// agreeing program.
    pub check_facts: bool,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 1,
            programs: 100,
            lanes: 8,
            max_cycles: 200_000,
            max_stmts: 28,
            max_depth: 3,
            check_facts: true,
        }
    }
}

/// One engine disagreement (or a generator-produced compile failure),
/// shrunk as far as the shrinker could take it.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// The per-program seed that produced the original source.
    pub program_seed: u64,
    /// Human-readable description of the first divergence found.
    pub detail: String,
    /// The (shrunk) W2 module source that reproduces it.
    pub source: String,
}

/// Aggregate result of [`run`].
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Programs generated and checked.
    pub programs: usize,
    /// Total lanes executed across all programs.
    pub lanes: usize,
    /// Lanes that trapped (identically in both engines) — traps are
    /// expected outcomes, not failures.
    pub trapped_lanes: usize,
    /// Engine disagreements, each shrunk to a minimal reproducer.
    pub disagreements: Vec<Disagreement>,
    /// Absint oracle statistics (all zero unless
    /// [`FuzzConfig::check_facts`] is set).
    pub facts: FactOracleStats,
}

/// Outcome of checking one source program three ways.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// All three engines agree; the payload counts `(lanes, trapped)`.
    Agree {
        /// Lanes executed.
        lanes: usize,
        /// Lanes that trapped, identically in both interpreters.
        trapped: usize,
    },
    /// The source did not compile — a generator bug, not an engine
    /// disagreement (the shrinker never trades one for the other).
    CompileError(String),
    /// Two engines produced different answers.
    Disagree(String),
}

fn splitmix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

struct FuzzGen<'a> {
    rng: &'a mut SmallRng,
    out: Vec<String>,
    indent: usize,
    /// Loop indices currently in scope (i0..i3), innermost last.
    loop_vars: usize,
    /// Inside a `while`: statements must not write the counter `k`.
    in_while: bool,
}

impl FuzzGen<'_> {
    fn push(&mut self, text: &str) {
        let mut s = String::with_capacity(2 * self.indent + text.len());
        for _ in 0..self.indent {
            s.push_str("  ");
        }
        s.push_str(text);
        self.out.push(s);
    }

    fn fconst(&mut self) -> String {
        format!("{:.4}", self.rng.gen_range(0.05..3.5))
    }

    /// An in-bounds index expression for the 48-element arrays.
    fn index(&mut self) -> String {
        if self.loop_vars > 0 {
            let d = if self.rng.gen_bool(0.7) {
                self.loop_vars - 1
            } else {
                self.rng.gen_range(0..self.loop_vars)
            };
            if self.loop_vars >= 2 && self.rng.gen_bool(0.2) {
                // Two loop indices, each bounded by 15: max 30 < 48.
                format!("i{} + i{}", d, self.rng.gen_range(0..self.loop_vars))
            } else {
                format!("i{d}")
            }
        } else {
            self.rng.gen_range(0..48usize).to_string()
        }
    }

    /// One straight-line statement.
    fn statement(&mut self) {
        let a = self.rng.gen_range(0..8);
        let b = self.rng.gen_range(0..8);
        let c = self.fconst();
        let idx = self.index();
        let stmt = match self.rng.gen_range(0..100) {
            // Register-pressure chains over the eight live floats.
            0..=19 => format!("t{a} := t{b} * {c} + t{};", (a + 1) % 8),
            20..=29 => format!("t{a} := t{a} - t{b} * {c};"),
            30..=36 => format!("t{a} := t{b} / ({c} + abs(x));"),
            37..=44 => format!("v[{idx}] := t{a} * {c} + w[{idx}];"),
            45..=52 => format!("acc := acc + v[{idx}] * {c};"),
            // Pipelined reduction shape.
            53..=60 => format!("acc := acc + v[{idx}] * w[{idx}];"),
            61..=66 => format!("w[{idx}] := sqrt(abs(t{b}) + {c});"),
            67..=72 => "s := (s * 25173 + 13849) mod 8192;".to_string(),
            // Data-dependent divisor: traps on lanes where n mod m = 0.
            73..=77 => {
                let m = self.rng.gen_range(3..6);
                format!("s := (s + {}) mod (n mod {m});", self.rng.gen_range(1..9))
            }
            78..=84 => format!("t{a} := float(s) * 0.0001 + x * {c};"),
            85..=90 => format!("t{a} := exp(min(t{b}, 2.0)) * {c};"),
            91..=95 => format!("t{a} := max(t{b}, {c}) * min(x, 4.0);"),
            _ => format!("acc := acc + t{a} * {c};"),
        };
        self.push(&stmt);
    }

    /// Emits statements consuming `budget`, recursing into loops and
    /// conditionals while `depth_left` allows.
    fn block(&mut self, budget: usize, depth_left: usize) {
        let mut remaining = budget;
        while remaining > 0 {
            let want_loop = remaining >= 5 && depth_left > 0 && self.rng.gen_bool(0.38);
            if want_loop {
                let inner = self.rng.gen_range(3..(remaining - 2).min(10) + 1);
                match self.rng.gen_range(0..10) {
                    // A while with a guaranteed-decrementing counter.
                    0..=2 if !self.in_while => {
                        let init = if self.rng.gen_bool(0.5) {
                            format!("k := {};", self.rng.gen_range(2..9))
                        } else {
                            // Data-dependent trip count (0 when n <= 0).
                            format!("k := n mod {};", self.rng.gen_range(4..11))
                        };
                        self.push(&init);
                        self.push("while k > 0 do");
                        self.indent += 1;
                        self.in_while = true;
                        self.block(inner.saturating_sub(1), depth_left - 1);
                        self.in_while = false;
                        self.push("k := k - 1;");
                        self.indent -= 1;
                        self.push("end;");
                    }
                    // A branch diamond on data.
                    3..=4 => {
                        let g = self.fconst();
                        let cond = match self.rng.gen_range(0..3) {
                            0 => format!("t{} > {g}", self.rng.gen_range(0..8)),
                            1 => format!("x < {g}"),
                            _ => format!("n > {}", self.rng.gen_range(0..6)),
                        };
                        self.push(&format!("if {cond} then"));
                        self.indent += 1;
                        let half = (inner / 2).max(1);
                        self.block(half, depth_left - 1);
                        self.indent -= 1;
                        self.push("else");
                        self.indent += 1;
                        self.block(inner - half, depth_left - 1);
                        self.indent -= 1;
                        self.push("end;");
                    }
                    // A for loop; trip-count edge cases included. Never
                    // reuse an index already live in an enclosing loop:
                    // an inner `for i3` resetting an outer `i3` would
                    // keep the outer loop from ever terminating.
                    _ if self.loop_vars >= 4 => {
                        for _ in 0..inner + 2 {
                            self.statement();
                        }
                    }
                    _ => {
                        let d = self.loop_vars;
                        let header = match self.rng.gen_range(0..10) {
                            0 => format!("for i{d} := 0 to 0 do"),
                            1 => format!("for i{d} := 0 to 1 do"),
                            2 => format!("for i{d} := 0 to n mod 7 do"),
                            3 => format!("for i{d} := {} downto 0 do", self.rng.gen_range(2..9)),
                            4 => format!("for i{d} := 0 to {} by 2 do", self.rng.gen_range(4..15)),
                            _ => format!("for i{d} := 0 to {} do", self.rng.gen_range(2..15)),
                        };
                        self.push(&header);
                        self.indent += 1;
                        self.loop_vars += 1;
                        self.block(inner, depth_left - 1);
                        self.loop_vars -= 1;
                        self.indent -= 1;
                        self.push("end;");
                    }
                }
                remaining -= (inner + 2).min(remaining);
            } else {
                self.statement();
                remaining -= 1;
            }
        }
    }
}

/// Generates one seeded W2 module: a single `fz(x: float, n: int)`
/// function whose body mixes deep loop nests, register-pressure
/// chains, data-dependent trip counts and trap-capable arithmetic.
/// Deterministic in `(seed, cfg.max_stmts, cfg.max_depth)`.
pub fn generate_source(seed: u64, cfg: &FuzzConfig) -> String {
    let mut rng = SmallRng::seed_from_u64(seed);
    let budget = rng.gen_range((cfg.max_stmts / 2).max(4)..cfg.max_stmts.max(5) + 1);
    let mut g = FuzzGen {
        rng: &mut rng,
        out: Vec::new(),
        indent: 2,
        loop_vars: 0,
        in_while: false,
    };
    g.block(budget, cfg.max_depth);
    let body = g.out.join("\n");
    format!(
        "module fuzz_{seed:x};\n\
         section main on cells 0..9;\n\
         \x20 function fz(x: float, n: int): float\n\
         \x20 var\n\
         \x20   acc: float; t0: float; t1: float; t2: float; t3: float;\n\
         \x20   t4: float; t5: float; t6: float; t7: float;\n\
         \x20   v: float[48]; w: float[48];\n\
         \x20   k: int; s: int; i0: int; i1: int; i2: int; i3: int;\n\
         \x20 begin\n\
         {body}\n\
         \x20   return acc + t0 + float(s) * 0.001;\n\
         \x20 end;\n\
         end;\n"
    )
}

// ---------------------------------------------------------------------------
// Three-way differential check
// ---------------------------------------------------------------------------

/// The lane input vector used for a program with `param_count` formal
/// parameters. The harness convention (and the generator's signature)
/// is `(x: float, n: int)`; the `n` values deliberately include 0,
/// negatives and values that zero out small moduli, so division traps
/// and zero-trip loops are exercised on some lanes of every corpus.
pub fn lane_args(lane: usize, param_count: usize) -> Vec<Value> {
    const NS: [i32; 8] = [-5, 0, 1, 2, 3, 7, 12, 60];
    (0..param_count)
        .map(|p| {
            if p == 1 {
                Value::I(NS[lane % NS.len()] + (lane / NS.len()) as i32 * 17)
            } else {
                Value::F(-1.5 + 0.733 * lane as f32 + p as f32)
            }
        })
        .collect()
}

fn check_with(batch: &mut BatchInterp, source: &str, cfg: &FuzzConfig) -> CheckOutcome {
    let opts = CompileOptions::default();
    let compiled = match compile_module_source(source, &opts) {
        Ok(r) => r,
        Err(e) => return CheckOutcome::CompileError(e.to_string()),
    };
    let sec = &compiled.module_image.section_images[0];

    // Opinion 1: the static verifier must accept compiler output.
    let errs = warp_analyze::verify_section_image(sec, &opts.cell);
    if !errs.is_empty() {
        let mut d = String::from("static verifier rejects compiler output:");
        for e in errs.iter().take(4) {
            let _ = write!(d, " [{e}]");
        }
        return CheckOutcome::Disagree(d);
    }

    let entry = &sec.functions[sec.entry];
    let fn_name = entry.name.clone();
    let n_params = entry.param_count as usize;

    // Opinion 2: the batched interpreter, all lanes at once.
    batch.reset();
    let pid = match batch.add_program(sec) {
        Ok(p) => p,
        Err(e) => return CheckOutcome::Disagree(format!("batch rejects image: {e}")),
    };
    for lane in 0..cfg.lanes {
        let input = LaneInput::call(pid, &fn_name, lane_args(lane, n_params));
        if let Err(e) = batch.add_lane(&input) {
            return CheckOutcome::Disagree(format!("batch rejects lane {lane}: {e}"));
        }
    }
    batch.execute(cfg.max_cycles);

    // Opinion 3: a solo strict run per lane, compared bit for bit.
    let mut trapped = 0usize;
    for lane in 0..cfg.lanes {
        let mut cell = match Cell::new(opts.cell, sec.clone()) {
            Ok(c) => c,
            Err(e) => return CheckOutcome::Disagree(format!("strict rejects image: {e}")),
        };
        cell.set_strict(true);
        if let Err(e) = cell.prepare_call(&fn_name, &lane_args(lane, n_params)) {
            return CheckOutcome::Disagree(format!("strict rejects lane {lane} call: {e}"));
        }
        let strict = cell.run(cfg.max_cycles);
        let report = batch.report(lane);
        match (&strict, &report.status) {
            (Ok(cycles), LaneStatus::Halted) => {
                if report.cycles != *cycles {
                    return CheckOutcome::Disagree(format!(
                        "lane {lane}: strict halted at cycle {cycles}, batch at {}",
                        report.cycles
                    ));
                }
            }
            (Err(se), LaneStatus::Trapped(be)) => {
                trapped += 1;
                if se != be {
                    return CheckOutcome::Disagree(format!(
                        "lane {lane}: strict trapped with `{se}`, batch with `{be}`"
                    ));
                }
            }
            (s, b) => {
                return CheckOutcome::Disagree(format!("lane {lane}: strict {s:?} vs batch {b:?}"));
            }
        }
        // Register file + poison bits, bit for bit.
        let (regs, defs) = batch.lane_regs(lane);
        for (ri, (&bv, &bd)) in regs.iter().zip(defs.iter()).enumerate() {
            let r = Reg(ri as u16);
            let strict_read = cell.reg(r);
            if bd != strict_read.is_ok() {
                return CheckOutcome::Disagree(format!(
                    "lane {lane}: poison bit of {r} differs (batch def={bd})"
                ));
            }
            if let Ok(sv) = strict_read {
                if bv.to_bits() != sv.to_bits() {
                    return CheckOutcome::Disagree(format!(
                        "lane {lane}: {r} = {bv:?} in batch but {sv:?} in strict"
                    ));
                }
            }
        }
        // Output queues (empty for standalone programs, but cheap).
        let (bl, br) = (batch.out_left(lane), batch.out_right(lane));
        let sl: Vec<Value> = cell.out_left.iter().copied().collect();
        let sr: Vec<Value> = cell.out_right.iter().copied().collect();
        if bl != sl.as_slice() || br != sr.as_slice() {
            return CheckOutcome::Disagree(format!("lane {lane}: output queues differ"));
        }
    }
    CheckOutcome::Agree {
        lanes: cfg.lanes,
        trapped,
    }
}

/// Runs one source program through all three engines and compares.
pub fn check_source(source: &str, cfg: &FuzzConfig) -> CheckOutcome {
    let mut batch = BatchInterp::new(CompileOptions::default().cell, true);
    check_with(&mut batch, source, cfg)
}

// ---------------------------------------------------------------------------
// Absint soundness oracle
// ---------------------------------------------------------------------------

/// Aggregate counters of the absint soundness oracle: how much static
/// claim surface the campaign actually checked.
#[derive(Debug, Clone, Copy, Default)]
pub struct FactOracleStats {
    /// Functions analyzed (facts derived and checked).
    pub functions: usize,
    /// Machine-checkable claims across all fact sets
    /// ([`warp_ir::FactSet::claim_count`]).
    pub claims: usize,
    /// Concrete strict-evaluator runs the claims were checked against.
    pub eval_runs: usize,
    /// Fact-driven rewrites performed (branches pruned + trap checks
    /// elided) while compiling with `absint` on.
    pub rewrites: usize,
}

/// Observables of one strict lane run that the fact-driven
/// optimization must preserve (cycle counts deliberately excluded —
/// pruning code shortens schedules).
struct StrictLane {
    status: Result<(), InterpError>,
    /// `(defined, bits)` of the return register, when halted.
    ret: Option<(bool, u64)>,
    out_left: Vec<u64>,
    out_right: Vec<u64>,
}

fn value_bits(v: &Value) -> u64 {
    match v {
        // Tag ints so `I(0)` and `F(0.0)` never compare equal.
        Value::I(i) => 0x1_0000_0000 | u64::from(*i as u32),
        Value::F(f) => u64::from(f.to_bits()),
    }
}

fn strict_lane(
    sec: &SectionImage,
    opts: &CompileOptions,
    fn_name: &str,
    args: &[Value],
    max_cycles: u64,
) -> Result<StrictLane, String> {
    let mut cell =
        Cell::new(opts.cell, sec.clone()).map_err(|e| format!("strict rejects image: {e}"))?;
    cell.set_strict(true);
    cell.prepare_call(fn_name, args)
        .map_err(|e| format!("strict rejects call: {e}"))?;
    let status = cell.run(max_cycles).map(|_| ());
    let ret = if status.is_ok() {
        match cell.reg(Reg::RET) {
            Ok(v) => Some((true, value_bits(&v))),
            Err(_) => Some((false, 0)),
        }
    } else {
        None
    };
    Ok(StrictLane {
        status,
        ret,
        out_left: cell.out_left.iter().map(value_bits).collect(),
        out_right: cell.out_right.iter().map(value_bits).collect(),
    })
}

/// The absint soundness oracle, run per agreeing program.
///
/// Two layers:
///
/// 1. **Fact soundness** — every function's final IR and
///    [`warp_ir::FactSet`] are re-derived (phase 1 + phase 2 with
///    `absint` on, exactly as the driver runs them) and every lane's
///    arguments are replayed through [`warp_ir::eval_ir`]; any
///    [`warp_ir::eval::fact_violations`] hit is a false fact.
/// 2. **Rewrite transparency** — the module is compiled with and
///    without `absint` and each lane is run on the strict interpreter
///    both ways; halt/trap status, trap payloads, return-register bits
///    and output queues must match (cycle counts may differ — pruning
///    shortens schedules, so lanes that exhaust the cycle budget on
///    either image are skipped).
///
/// # Errors
///
/// Returns a description of the first false fact or observable
/// divergence found.
pub fn check_absint(
    source: &str,
    cfg: &FuzzConfig,
    stats: &mut FactOracleStats,
) -> Result<(), String> {
    let opts_off = CompileOptions::default();
    let opts_on = CompileOptions {
        absint: true,
        ..CompileOptions::default()
    };

    // Layer 1: claims vs the strict IR evaluator, lane for lane.
    let (checked, _, _) = run_phase1(source).map_err(|e| format!("phase1: {e}"))?;
    for (si, sec) in checked.module.sections.iter().enumerate() {
        for (fi, func) in sec.functions.iter().enumerate() {
            let p2 = warp_ir::phase2_verified(
                func,
                checked.symbols(si, fi),
                &checked.sections[si].signatures,
                opts_on.unroll.as_ref(),
                opts_on.if_convert.as_ref(),
                true,
                false,
            )
            .map_err(|e| format!("phase2({}): {e}", func.name))?;
            let facts = p2.facts.as_ref().expect("absint requested");
            stats.functions += 1;
            stats.claims += facts.claim_count();
            stats.rewrites += p2.work.branches_pruned + p2.work.trap_checks_elided;
            for lane in 0..cfg.lanes {
                let args = lane_args(lane, p2.ir.params.len());
                let outcome = warp_ir::eval_ir(&p2.ir, &args, cfg.max_cycles);
                if !outcome.unsupported {
                    stats.eval_runs += 1;
                }
                let bad = warp_ir::eval::fact_violations(facts, &outcome);
                if !bad.is_empty() {
                    return Err(format!(
                        "false fact in `{}` on lane {lane} (args {args:?}): {}",
                        func.name,
                        bad.join("; ")
                    ));
                }
            }
        }
    }

    // Layer 2: absint-on vs absint-off machine behaviour.
    let on =
        compile_module_source(source, &opts_on).map_err(|e| format!("absint-on compile: {e}"))?;
    let off =
        compile_module_source(source, &opts_off).map_err(|e| format!("absint-off compile: {e}"))?;
    let sec_on = &on.module_image.section_images[0];
    let sec_off = &off.module_image.section_images[0];
    let errs = warp_analyze::verify_section_image(sec_on, &opts_on.cell);
    if !errs.is_empty() {
        return Err(format!("verifier rejects absint-on image: {}", errs[0]));
    }
    let entry = &sec_on.functions[sec_on.entry];
    let fn_name = entry.name.clone();
    let n_params = entry.param_count as usize;
    for lane in 0..cfg.lanes {
        let args = lane_args(lane, n_params);
        let a = strict_lane(sec_on, &opts_on, &fn_name, &args, cfg.max_cycles)?;
        let b = strict_lane(sec_off, &opts_off, &fn_name, &args, cfg.max_cycles)?;
        if matches!(a.status, Err(InterpError::CycleLimit { .. }))
            || matches!(b.status, Err(InterpError::CycleLimit { .. }))
        {
            continue;
        }
        match (&a.status, &b.status) {
            (Ok(()), Ok(())) => {
                if a.ret != b.ret {
                    return Err(format!(
                        "lane {lane}: absint changed the return register: \
                         {:?} (on) vs {:?} (off)",
                        a.ret, b.ret
                    ));
                }
            }
            // Traps compare modulo the faulting pc: the same data fault
            // fires at a different schedule address once code has been
            // pruned, but its function and kind are observables.
            (
                Err(InterpError::Fault {
                    function: fa,
                    kind: ka,
                    ..
                }),
                Err(InterpError::Fault {
                    function: fb,
                    kind: kb,
                    ..
                }),
            ) if fa == fb && ka == kb => {}
            (Err(x), Err(y)) if x == y => {}
            (x, y) => {
                return Err(format!(
                    "lane {lane}: absint changed the outcome: {x:?} (on) vs {y:?} (off)"
                ));
            }
        }
        if a.out_left != b.out_left || a.out_right != b.out_right {
            return Err(format!("lane {lane}: absint changed the output queues"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

/// Greedy ddmin-style line removal: repeatedly drops chunks of lines
/// (halving the chunk size down to single lines) and keeps a candidate
/// iff `still_fails` holds for it. Candidates that unbalance a loop or
/// otherwise stop compiling simply fail the predicate and are
/// discarded, so no grammar knowledge is needed here.
pub fn shrink<F>(source: &str, mut still_fails: F) -> String
where
    F: FnMut(&str) -> bool,
{
    let mut lines: Vec<&str> = source.lines().collect();
    let mut chunk = (lines.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < lines.len() && lines.len() > 4 {
            let end = (i + chunk).min(lines.len());
            let mut candidate = lines.clone();
            candidate.drain(i..end);
            let text = candidate.join("\n");
            if still_fails(&text) {
                lines = candidate;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    lines.join("\n")
}

/// Shrinks a disagreeing program with the engine check itself as the
/// predicate: a candidate survives only if it still *compiles* and
/// still *disagrees* (compile failures never replace a real
/// disagreement).
pub fn shrink_disagreement(source: &str, cfg: &FuzzConfig) -> String {
    let mut batch = BatchInterp::new(CompileOptions::default().cell, true);
    shrink(source, move |src| {
        matches!(check_with(&mut batch, src, cfg), CheckOutcome::Disagree(_))
    })
}

// ---------------------------------------------------------------------------
// Campaign driver
// ---------------------------------------------------------------------------

/// Runs a whole fuzzing campaign: `cfg.programs` seeded programs, each
/// checked three ways, each disagreement shrunk. One [`BatchInterp`]
/// is reused across all programs (lane slabs recycle), which is what
/// makes the batched engine the throughput backbone of the harness.
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    let mut batch = BatchInterp::new(CompileOptions::default().cell, true);
    for p in 0..cfg.programs {
        let pseed = splitmix(cfg.seed, p as u64);
        let source = generate_source(pseed, cfg);
        report.programs += 1;
        match check_with(&mut batch, &source, cfg) {
            CheckOutcome::Agree { lanes, trapped } => {
                report.lanes += lanes;
                report.trapped_lanes += trapped;
                if cfg.check_facts {
                    if let Err(detail) = check_absint(&source, cfg, &mut report.facts) {
                        // A false fact shrinks like any disagreement:
                        // keep a candidate iff it still compiles and
                        // the oracle still rejects it (a candidate that
                        // stopped compiling fails the oracle too, so
                        // the compile gate comes first).
                        let mut scratch = FactOracleStats::default();
                        let shrunk = shrink(&source, |src| {
                            compile_module_source(src, &CompileOptions::default()).is_ok()
                                && check_absint(src, cfg, &mut scratch).is_err()
                        });
                        report.disagreements.push(Disagreement {
                            program_seed: pseed,
                            detail: format!("absint: {detail}"),
                            source: shrunk,
                        });
                    }
                }
            }
            CheckOutcome::CompileError(e) => {
                report.disagreements.push(Disagreement {
                    program_seed: pseed,
                    detail: format!("generated program failed to compile: {e}"),
                    source,
                });
            }
            CheckOutcome::Disagree(detail) => {
                let shrunk = shrink_disagreement(&source, cfg);
                report.disagreements.push(Disagreement {
                    program_seed: pseed,
                    detail,
                    source: shrunk,
                });
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Regression fixtures
// ---------------------------------------------------------------------------

/// A fixture file: `-- key: value` metadata lines followed by W2
/// source. The metadata records provenance (seed, original
/// disagreement) and replay parameters (`lanes`, `max_cycles`).
#[derive(Debug, Clone)]
pub struct Fixture {
    /// `(key, value)` pairs from the `--` header, in file order.
    pub meta: Vec<(String, String)>,
    /// The W2 module source (everything after the header).
    pub source: String,
}

impl Fixture {
    /// First value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Writes a reproducer as a fixture file.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_fixture(path: &Path, source: &str, meta: &[(&str, String)]) -> io::Result<()> {
    let mut text = String::from("-- warp-fuzz fixture\n");
    for (k, v) in meta {
        let _ = writeln!(text, "-- {k}: {v}");
    }
    text.push_str(source);
    if !text.ends_with('\n') {
        text.push('\n');
    }
    fs::write(path, text)
}

/// Parses a fixture file: leading `--` lines are metadata, the rest is
/// source.
///
/// # Errors
///
/// Propagates I/O errors from reading `path`.
pub fn read_fixture(path: &Path) -> io::Result<Fixture> {
    let text = fs::read_to_string(path)?;
    let mut meta = Vec::new();
    let mut body_start = 0;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("--") {
            if let Some((k, v)) = rest.split_once(':') {
                meta.push((k.trim().to_string(), v.trim().to_string()));
            }
            body_start += line.len() + 1;
        } else {
            break;
        }
    }
    Ok(Fixture {
        meta,
        source: text[body_start.min(text.len())..].to_string(),
    })
}

/// Replays one committed fixture: the program must now *agree* across
/// all three engines (fixtures are disagreements that have been
/// fixed — they stay green forever).
///
/// # Errors
///
/// Returns a description of the failure if the fixture cannot be read,
/// no longer compiles, or the engines disagree again.
pub fn replay_fixture(path: &Path) -> Result<(), String> {
    let fixture = read_fixture(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut cfg = FuzzConfig::default();
    if let Some(l) = fixture.get("lanes").and_then(|v| v.parse().ok()) {
        cfg.lanes = l;
    }
    if let Some(m) = fixture.get("max_cycles").and_then(|v| v.parse().ok()) {
        cfg.max_cycles = m;
    }
    match check_source(&fixture.source, &cfg) {
        CheckOutcome::Agree { .. } => Ok(()),
        CheckOutcome::CompileError(e) => Err(format!(
            "{}: fixture no longer compiles: {e}",
            path.display()
        )),
        CheckOutcome::Disagree(d) => {
            Err(format!("{}: engines disagree again: {d}", path.display()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_compiles() {
        let cfg = FuzzConfig::default();
        let a = generate_source(42, &cfg);
        let b = generate_source(42, &cfg);
        assert_eq!(a, b);
        assert_ne!(a, generate_source(43, &cfg));
        match check_source(&a, &cfg) {
            CheckOutcome::Agree { lanes, .. } => assert_eq!(lanes, cfg.lanes),
            other => panic!("seed 42 should agree, got {other:?}\n{a}"),
        }
    }

    #[test]
    fn small_campaign_has_no_disagreements() {
        let cfg = FuzzConfig {
            programs: 8,
            max_stmts: 16,
            ..FuzzConfig::default()
        };
        let report = run(&cfg);
        assert_eq!(report.programs, 8);
        assert!(
            report.disagreements.is_empty(),
            "{:#?}",
            report
                .disagreements
                .iter()
                .map(|d| (&d.detail, &d.source))
                .collect::<Vec<_>>()
        );
        assert_eq!(report.lanes, 8 * cfg.lanes);
    }

    #[test]
    fn some_lanes_trap_somewhere_in_the_corpus() {
        // The corpus must actually exercise the trap paths: across a
        // handful of programs at least one lane should divide by zero
        // (lane args include n values that zero out every modulus).
        let cfg = FuzzConfig {
            programs: 12,
            seed: 7,
            ..FuzzConfig::default()
        };
        let report = run(&cfg);
        assert!(report.disagreements.is_empty());
        assert!(report.trapped_lanes > 0, "corpus never trapped: too tame");
    }

    #[test]
    fn absint_oracle_finds_no_false_facts_on_a_small_campaign() {
        // The soundness gate in miniature: every fact the analyzer
        // proves over a seeded corpus must hold on every lane, and the
        // fact-driven rewrites must be observably transparent. The
        // full-size version of this gate is the CI fuzz job.
        let cfg = FuzzConfig {
            programs: 10,
            seed: 1989,
            ..FuzzConfig::default()
        };
        assert!(cfg.check_facts, "oracle must be on by default");
        let report = run(&cfg);
        assert!(
            report.disagreements.is_empty(),
            "{:#?}",
            report
                .disagreements
                .iter()
                .map(|d| (&d.detail, &d.source))
                .collect::<Vec<_>>()
        );
        assert_eq!(report.facts.functions, 10);
        assert!(report.facts.claims > 0, "corpus proved no facts: too tame");
        assert!(report.facts.eval_runs > 0);
    }

    #[test]
    fn absint_oracle_checks_trapping_programs() {
        // A program whose divisor is data-dependent: some lanes trap.
        // The analyzer must not claim div-trap freedom, and the oracle
        // must agree fact-by-fact on both the trapping and the clean
        // lanes.
        let src = "module m;\nsection s on cells 0..9;\n\
                   function fz(x: float, n: int): float\n\
                   var s: int;\n\
                   begin\n  s := 100 mod (n mod 3);\n  return float(s);\nend;\nend;\n";
        let cfg = FuzzConfig::default();
        let mut stats = FactOracleStats::default();
        check_absint(src, &cfg, &mut stats).expect("oracle must pass");
        assert_eq!(stats.functions, 1);
        assert!(stats.eval_runs >= cfg.lanes);
    }

    #[test]
    fn shrinker_reduces_while_preserving_the_predicate() {
        let source = "alpha\nbeta\ngamma\nMAGIC\ndelta\nepsilon\nzeta\neta";
        let shrunk = shrink(source, |s| s.contains("MAGIC"));
        assert!(shrunk.contains("MAGIC"));
        assert!(shrunk.lines().count() <= 4, "{shrunk}");
    }

    #[test]
    fn fixture_roundtrip_preserves_source_and_meta() {
        let dir = std::env::temp_dir().join("warp_fuzz_fixture_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.w2");
        let src = "module m;\nsection s on cells 0..9;\nend;\n";
        write_fixture(&path, src, &[("seed", "99".into()), ("lanes", "4".into())]).unwrap();
        let fixture = read_fixture(&path).unwrap();
        assert_eq!(fixture.source, src);
        assert_eq!(fixture.get("seed"), Some("99"));
        assert_eq!(fixture.get("lanes"), Some("4"));
        fs::remove_file(&path).ok();
    }
}
