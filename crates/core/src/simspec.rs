//! Building simulator process trees from real compilations.
//!
//! The compilation has already happened (really, in this process, via
//! [`crate::driver`]); these functions translate its deterministic work
//! profile into the process structure of paper §3.2 — master → section
//! masters → function masters — or into the single sequential Lisp
//! process, for the discrete-event host simulator.
//!
//! The naming constants below ([`SEQ_NAME`], [`MASTER_NAME`],
//! [`PARSER_NAME`], [`SECTION_PREFIX`], [`FN_PREFIX`]) are the shared
//! vocabulary between spec construction and measurement extraction:
//! both `Measurement::from_report` (prefix-summing the simulator's
//! process table) and `Measurement::from_trace` (prefix-summing `cpu`
//! spans in a virtual-time trace) attribute CPU time to the paper's
//! §4.2.3 categories by these prefixes. Renaming a process here is a
//! breaking change to the trace schema (`docs/TRACING.md`).

use crate::costmodel::CostModel;
use crate::driver::CompileResult;
use crate::scheduler::Assignment;
use warp_netsim::{ProcKind, ProcessSpec};

/// Name of the sequential-compiler process.
pub const SEQ_NAME: &str = "seqc";
/// Name of the master process.
pub const MASTER_NAME: &str = "master";
/// Name of the master's Lisp parser child.
pub const PARSER_NAME: &str = "parser";
/// Prefix of section-master process names.
pub const SECTION_PREFIX: &str = "section-master";
/// Prefix of function-master process names.
pub const FN_PREFIX: &str = "fn-master";

/// Appends a compile burst of `units` at `heap` live words: CPU work
/// in chunks with its paging traffic to the file server interleaved
/// (diskless workstations swap over the network — §4.2.3's "multiple
/// processes swap off the same file server").
fn compile_burst(mut p: ProcessSpec, cm: &CostModel, units: u64, heap: u64) -> ProcessSpec {
    let chunks = cm.compile_chunks.max(1);
    let swap = cm.swap_bytes(units, heap);
    p = p.heap(heap);
    for c in 0..chunks {
        // Distribute remainders deterministically.
        let u = units / chunks + u64::from(c < units % chunks);
        p = p.cpu(u);
        let b = swap / chunks + u64::from(c < swap % chunks);
        if b > 0 {
            p = p.disk(b);
        }
    }
    p
}

/// The sequential compiler: one Lisp process on workstation 0 that
/// parses, compiles every function in order (heap growing as it
/// retains results), then assembles. Its image carries every phase
/// plus whole-module data (`seq_extra_heap`), so larger programs push
/// it past physical memory.
pub fn seq_spec(result: &CompileResult, cm: &CostModel) -> ProcessSpec {
    seq_spec_inner(result, cm, None)
}

/// [`seq_spec`] with a compilation cache enabled: `warm[i]` marks
/// function `i` as a cache hit. A hit is serviced by probing the
/// index (`cache_lookup_units`) and fetching the stored object from
/// the file server ([`CostModel::hit_fetch_bytes`]) instead of the
/// phase-2/3 compile burst; the compiler still parses the module
/// (phase 1 builds the interface the cache key hashes) and still
/// assembles at the end. Misses additionally pay the lookup before
/// recompiling.
///
/// # Panics
///
/// Panics if `warm.len() != result.records.len()`.
pub fn seq_spec_cached(result: &CompileResult, cm: &CostModel, warm: &[bool]) -> ProcessSpec {
    assert_eq!(warm.len(), result.records.len());
    seq_spec_inner(result, cm, Some(warm))
}

fn seq_spec_inner(result: &CompileResult, cm: &CostModel, warm: Option<&[bool]>) -> ProcessSpec {
    let base = cm.base_lisp_heap + cm.seq_extra_heap;
    let mut p = ProcessSpec::new(SEQ_NAME, 0, ProcKind::Lisp)
        .heap(base)
        .cpu(result.phase1_units);
    let mut retained = 0u64;
    for (i, rec) in result.records.iter().enumerate() {
        if warm.is_some() {
            p = p.cpu(cm.cache_lookup_units);
        }
        if warm.is_some_and(|w| w[i]) {
            // Hit: fetch the cached object instead of compiling. The
            // image it retains for assembly is the same either way.
            p = p.disk(cm.hit_fetch_bytes(rec));
        } else {
            let heap = base + retained + cm.fn_heap(rec);
            p = compile_burst(p, cm, rec.compile_units(), heap);
        }
        retained += cm.seq_retained(rec);
    }
    let object_bytes: u64 = result.records.iter().map(|r| r.object_bytes).sum();
    p.heap(base + retained)
        .cpu(result.link_units)
        .disk(object_bytes)
}

/// The parallel compiler: the master (C) starts a Lisp parser for the
/// setup parse, forks one section master (C) per section, each of which
/// forks one function master (Lisp) per function on its assigned
/// workstation; the master finally runs the sequential assembly phase.
pub fn par_spec(result: &CompileResult, cm: &CostModel, assignment: &Assignment) -> ProcessSpec {
    par_spec_inner(result, cm, assignment, None)
}

/// [`par_spec`] with a compilation cache enabled: `warm[i]` marks
/// function `i` as a cache hit.
///
/// This mirrors the real threaded driver (`crate::threads`): the
/// *master* probes every key itself (`cache_lookup_units` each) and
/// services hits directly — a fetch of the stored object from the
/// file server, no fork, no workstation, no section master involved.
/// Only misses are dispatched to function masters; a section whose
/// functions all hit forks no section master at all, so a fully warm
/// build collapses to parse → probe → fetch → assemble on the
/// master's workstation.
///
/// # Panics
///
/// Panics if `warm.len() != result.records.len()`.
pub fn par_spec_cached(
    result: &CompileResult,
    cm: &CostModel,
    assignment: &Assignment,
    warm: &[bool],
) -> ProcessSpec {
    assert_eq!(warm.len(), result.records.len());
    par_spec_inner(result, cm, assignment, Some(warm))
}

fn par_spec_inner(
    result: &CompileResult,
    cm: &CostModel,
    assignment: &Assignment,
    warm: Option<&[bool]>,
) -> ProcessSpec {
    assert_eq!(assignment.workstation.len(), result.records.len());
    let n_sections = 1 + result.records.iter().map(|r| r.section).max().unwrap_or(0);
    let is_hit = |i: usize| warm.is_some_and(|w| w[i]);

    let mut sections = Vec::new();
    for si in 0..n_sections {
        // Only cache misses need a function master; hits were already
        // serviced by the master before the section masters fork.
        let idxs: Vec<usize> = result
            .records
            .iter()
            .enumerate()
            .filter(|(i, r)| r.section == si && !is_hit(*i))
            .map(|(i, _)| i)
            .collect();
        if idxs.is_empty() {
            continue;
        }
        let mut fn_masters = Vec::with_capacity(idxs.len());
        for &i in &idxs {
            let rec = &result.records[i];
            let ws = assignment.workstation[i];
            let heap = cm.base_lisp_heap + cm.fn_heap(rec);
            let fm = ProcessSpec::new(format!("{FN_PREFIX} {}", rec.name), ws, ProcKind::Lisp);
            // The function master re-parses its function, then runs
            // phases 2 + 3 (with its paging traffic, if any), then
            // ships the object to the file server and its diagnostics
            // to the section master.
            let fm = compile_burst(fm, cm, rec.parse_units + rec.compile_units(), heap)
                .disk(rec.object_bytes)
                .net(cm.diag_bytes);
            fn_masters.push(fm);
        }
        let nf = idxs.len() as u64;
        sections.push(
            ProcessSpec::new(format!("{SECTION_PREFIX} {si}"), 0, ProcKind::C)
                .cpu(cm.section_units_per_fn * nf)
                .fork(fn_masters)
                .join()
                // Combine results and diagnostic output (§3.2).
                .cpu(cm.combine_units_per_fn * nf)
                .net(cm.diag_bytes * nf),
        );
    }

    let parser = ProcessSpec::new(PARSER_NAME, 0, ProcKind::Lisp)
        .heap(cm.base_lisp_heap + cm.parse_heap_per_line * total_lines(result))
        .cpu(result.phase1_units);
    let object_bytes: u64 = result.records.iter().map(|r| r.object_bytes).sum();

    let mut master = ProcessSpec::new(MASTER_NAME, 0, ProcKind::C)
        // Setup: one extra parse of the program, by a Lisp child.
        .fork(vec![parser])
        .join();
    if warm.is_some() {
        // Probe the cache for every function, then fetch the hits'
        // objects from the file server.
        master = master.cpu(cm.cache_lookup_units * result.records.len() as u64);
        let hit_bytes: u64 = result
            .records
            .iter()
            .enumerate()
            .filter(|(i, _)| is_hit(*i))
            .map(|(_, r)| cm.hit_fetch_bytes(r))
            .sum();
        if hit_bytes > 0 {
            master = master.disk(hit_bytes);
        }
    }
    let n_live_sections = sections.len() as u64;
    if n_live_sections > 0 {
        // Scheduling: coordinate the section masters that still have
        // work.
        master = master
            .cpu(cm.sched_units_per_section * n_live_sections)
            .net(cm.msg_bytes * n_live_sections)
            .fork(sections)
            .join();
    }
    master
        // Phase 4: assembly and download-module generation.
        .cpu(result.link_units)
        .disk(object_bytes)
}

fn total_lines(result: &CompileResult) -> u64 {
    result.records.iter().map(|r| r.lines as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::CALIBRATED;
    use crate::driver::{compile_module_source, CompileOptions};
    use crate::scheduler::fcfs;
    use warp_workload::{synthetic_program, FunctionSize};

    fn compiled(n: usize) -> CompileResult {
        let src = synthetic_program(FunctionSize::Small, n);
        compile_module_source(&src, &CompileOptions::default()).expect("compile")
    }

    #[test]
    fn seq_spec_is_single_process() {
        let r = compiled(3);
        let spec = seq_spec(&r, &CALIBRATED);
        assert_eq!(spec.process_count(), 1);
        assert_eq!(spec.name, SEQ_NAME);
    }

    #[test]
    fn par_spec_has_paper_process_hierarchy() {
        let r = compiled(3);
        let a = fcfs(3, 8);
        let spec = par_spec(&r, &CALIBRATED, &a);
        // master + parser + 1 section master + 3 function masters.
        assert_eq!(spec.process_count(), 6);
    }

    #[test]
    fn fn_masters_go_to_assigned_workstations() {
        let r = compiled(3);
        let a = fcfs(3, 8);
        let spec = par_spec(&r, &CALIBRATED, &a);
        // Walk the tree and collect fn-master workstations.
        fn collect(spec: &ProcessSpec, out: &mut Vec<(String, usize)>) {
            if spec.name.starts_with(FN_PREFIX) {
                out.push((spec.name.clone(), spec.workstation));
            }
            for s in &spec.steps {
                if let warp_netsim::Step::Fork { children } = s {
                    for c in children {
                        collect(c, out);
                    }
                }
            }
        }
        let mut ws = Vec::new();
        collect(&spec, &mut ws);
        assert_eq!(ws.len(), 3);
        let stations: Vec<usize> = ws.iter().map(|(_, w)| *w).collect();
        assert_eq!(stations, vec![1, 2, 3]);
    }

    #[test]
    fn cold_cached_spec_keeps_paper_hierarchy_plus_probe() {
        // All-cold warm mask: same process tree as the uncached spec
        // (master + parser + section masters + function masters); the
        // only extra work is the per-function probe.
        let r = compiled(3);
        let a = fcfs(3, 8);
        let spec = par_spec_cached(&r, &CALIBRATED, &a, &[false; 3]);
        assert_eq!(spec.process_count(), 6);
    }

    #[test]
    fn fully_warm_par_spec_forks_no_workers() {
        // Every function hits: the master services everything itself —
        // no section masters, no function masters.
        let r = compiled(3);
        let a = fcfs(3, 8);
        let spec = par_spec_cached(&r, &CALIBRATED, &a, &[true; 3]);
        assert_eq!(spec.process_count(), 2, "master + parser only");
    }

    #[test]
    fn warm_rebuild_is_under_half_of_cold_on_fig6_workload() {
        // The acceptance bar for the cache: on the Figure 6 workload
        // (medium functions, n ∈ {1,2,4,8}), a fully warm parallel
        // rebuild takes less than 50% of the cold parallel build.
        for n in [1usize, 2, 4, 8] {
            let src = synthetic_program(FunctionSize::Medium, n);
            let r = compile_module_source(&src, &CompileOptions::default()).unwrap();
            let a = fcfs(n, CALIBRATED.host.workstations - 1);
            let cold = warp_netsim::simulate(CALIBRATED.host, par_spec(&r, &CALIBRATED, &a));
            let warm = warp_netsim::simulate(
                CALIBRATED.host,
                par_spec_cached(&r, &CALIBRATED, &a, &vec![true; n]),
            );
            assert!(
                warm.elapsed_s < 0.5 * cold.elapsed_s,
                "n={n}: warm {} !< 50% of cold {}",
                warm.elapsed_s,
                cold.elapsed_s
            );
        }
    }

    #[test]
    fn one_edited_function_dominates_warm_rebuild() {
        // Editing one function of eight: the rebuild must pay for that
        // one compilation but stay far below cold (the other seven are
        // fetched).
        let n = 8;
        let src = synthetic_program(FunctionSize::Medium, n);
        let r = compile_module_source(&src, &CompileOptions::default()).unwrap();
        let a = fcfs(n, CALIBRATED.host.workstations - 1);
        let mut warm = vec![true; n];
        warm[3] = false;
        let cold = warp_netsim::simulate(CALIBRATED.host, par_spec(&r, &CALIBRATED, &a));
        let edited =
            warp_netsim::simulate(CALIBRATED.host, par_spec_cached(&r, &CALIBRATED, &a, &warm));
        let full = warp_netsim::simulate(
            CALIBRATED.host,
            par_spec_cached(&r, &CALIBRATED, &a, &[true; 8]),
        );
        assert!(
            edited.elapsed_s < cold.elapsed_s,
            "{} !< {}",
            edited.elapsed_s,
            cold.elapsed_s
        );
        assert!(
            full.elapsed_s < edited.elapsed_s,
            "{} !< {}",
            full.elapsed_s,
            edited.elapsed_s
        );
    }

    #[test]
    fn warm_sequential_beats_cold_sequential() {
        let src = synthetic_program(FunctionSize::Medium, 4);
        let r = compile_module_source(&src, &CompileOptions::default()).unwrap();
        let cold = warp_netsim::simulate(CALIBRATED.host, seq_spec(&r, &CALIBRATED));
        let warm = warp_netsim::simulate(
            CALIBRATED.host,
            seq_spec_cached(&r, &CALIBRATED, &[true; 4]),
        );
        assert!(
            warm.elapsed_s < 0.5 * cold.elapsed_s,
            "{} {}",
            warm.elapsed_s,
            cold.elapsed_s
        );
    }

    #[test]
    fn simulated_seq_vs_par_sanity() {
        // For several medium functions, parallel elapsed must be well
        // below sequential elapsed in the simulator.
        let src = synthetic_program(FunctionSize::Medium, 4);
        let r = compile_module_source(&src, &CompileOptions::default()).unwrap();
        let seq = warp_netsim::simulate(CALIBRATED.host, seq_spec(&r, &CALIBRATED));
        let a = fcfs(4, CALIBRATED.host.workstations - 1);
        let par = warp_netsim::simulate(CALIBRATED.host, par_spec(&r, &CALIBRATED, &a));
        assert!(
            par.elapsed_s < seq.elapsed_s,
            "par {} !< seq {}",
            par.elapsed_s,
            seq.elapsed_s
        );
    }
}
