//! Building simulator process trees from real compilations.
//!
//! The compilation has already happened (really, in this process, via
//! [`crate::driver`]); these functions translate its deterministic work
//! profile into the process structure of paper §3.2 — master → section
//! masters → function masters — or into the single sequential Lisp
//! process, for the discrete-event host simulator.
//!
//! The naming constants below ([`SEQ_NAME`], [`MASTER_NAME`],
//! [`PARSER_NAME`], [`SECTION_PREFIX`], [`FN_PREFIX`]) are the shared
//! vocabulary between spec construction and measurement extraction:
//! both `Measurement::from_report` (prefix-summing the simulator's
//! process table) and `Measurement::from_trace` (prefix-summing `cpu`
//! spans in a virtual-time trace) attribute CPU time to the paper's
//! §4.2.3 categories by these prefixes. Renaming a process here is a
//! breaking change to the trace schema (`docs/TRACING.md`).

use crate::costmodel::CostModel;
use crate::driver::CompileResult;
use crate::scheduler::Assignment;
use warp_netsim::{ProcKind, ProcessSpec};

/// Name of the sequential-compiler process.
pub const SEQ_NAME: &str = "seqc";
/// Name of the master process.
pub const MASTER_NAME: &str = "master";
/// Name of the master's Lisp parser child.
pub const PARSER_NAME: &str = "parser";
/// Prefix of section-master process names.
pub const SECTION_PREFIX: &str = "section-master";
/// Prefix of function-master process names.
pub const FN_PREFIX: &str = "fn-master";

/// Appends a compile burst of `units` at `heap` live words: CPU work
/// in chunks with its paging traffic to the file server interleaved
/// (diskless workstations swap over the network — §4.2.3's "multiple
/// processes swap off the same file server").
fn compile_burst(mut p: ProcessSpec, cm: &CostModel, units: u64, heap: u64) -> ProcessSpec {
    let chunks = cm.compile_chunks.max(1);
    let swap = cm.swap_bytes(units, heap);
    p = p.heap(heap);
    for c in 0..chunks {
        // Distribute remainders deterministically.
        let u = units / chunks + u64::from(c < units % chunks);
        p = p.cpu(u);
        let b = swap / chunks + u64::from(c < swap % chunks);
        if b > 0 {
            p = p.disk(b);
        }
    }
    p
}

/// The sequential compiler: one Lisp process on workstation 0 that
/// parses, compiles every function in order (heap growing as it
/// retains results), then assembles. Its image carries every phase
/// plus whole-module data (`seq_extra_heap`), so larger programs push
/// it past physical memory.
pub fn seq_spec(result: &CompileResult, cm: &CostModel) -> ProcessSpec {
    let base = cm.base_lisp_heap + cm.seq_extra_heap;
    let mut p = ProcessSpec::new(SEQ_NAME, 0, ProcKind::Lisp)
        .heap(base)
        .cpu(result.phase1_units);
    let mut retained = 0u64;
    for rec in &result.records {
        let heap = base + retained + cm.fn_heap(rec);
        p = compile_burst(p, cm, rec.compile_units(), heap);
        retained += cm.seq_retained(rec);
    }
    let object_bytes: u64 = result.records.iter().map(|r| r.object_bytes).sum();
    p.heap(base + retained)
        .cpu(result.link_units)
        .disk(object_bytes)
}

/// The parallel compiler: the master (C) starts a Lisp parser for the
/// setup parse, forks one section master (C) per section, each of which
/// forks one function master (Lisp) per function on its assigned
/// workstation; the master finally runs the sequential assembly phase.
pub fn par_spec(result: &CompileResult, cm: &CostModel, assignment: &Assignment) -> ProcessSpec {
    assert_eq!(assignment.workstation.len(), result.records.len());
    let n_sections = 1 + result.records.iter().map(|r| r.section).max().unwrap_or(0);

    let mut sections = Vec::with_capacity(n_sections);
    for si in 0..n_sections {
        let idxs: Vec<usize> = result
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.section == si)
            .map(|(i, _)| i)
            .collect();
        let mut fn_masters = Vec::with_capacity(idxs.len());
        for &i in &idxs {
            let rec = &result.records[i];
            let ws = assignment.workstation[i];
            let heap = cm.base_lisp_heap + cm.fn_heap(rec);
            let fm = ProcessSpec::new(format!("{FN_PREFIX} {}", rec.name), ws, ProcKind::Lisp);
            // The function master re-parses its function, then runs
            // phases 2 + 3 (with its paging traffic, if any), then
            // ships the object to the file server and its diagnostics
            // to the section master.
            let fm = compile_burst(fm, cm, rec.parse_units + rec.compile_units(), heap)
                .disk(rec.object_bytes)
                .net(cm.diag_bytes);
            fn_masters.push(fm);
        }
        let nf = idxs.len() as u64;
        sections.push(
            ProcessSpec::new(format!("{SECTION_PREFIX} {si}"), 0, ProcKind::C)
                .cpu(cm.section_units_per_fn * nf)
                .fork(fn_masters)
                .join()
                // Combine results and diagnostic output (§3.2).
                .cpu(cm.combine_units_per_fn * nf)
                .net(cm.diag_bytes * nf),
        );
    }

    let parser = ProcessSpec::new(PARSER_NAME, 0, ProcKind::Lisp)
        .heap(cm.base_lisp_heap + cm.parse_heap_per_line * total_lines(result))
        .cpu(result.phase1_units);
    let object_bytes: u64 = result.records.iter().map(|r| r.object_bytes).sum();

    ProcessSpec::new(MASTER_NAME, 0, ProcKind::C)
        // Setup: one extra parse of the program, by a Lisp child.
        .fork(vec![parser])
        .join()
        // Scheduling: coordinate section masters.
        .cpu(cm.sched_units_per_section * n_sections as u64)
        .net(cm.msg_bytes * n_sections as u64)
        .fork(sections)
        .join()
        // Phase 4: assembly and download-module generation.
        .cpu(result.link_units)
        .disk(object_bytes)
}

fn total_lines(result: &CompileResult) -> u64 {
    result.records.iter().map(|r| r.lines as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::CALIBRATED;
    use crate::driver::{compile_module_source, CompileOptions};
    use crate::scheduler::fcfs;
    use warp_workload::{synthetic_program, FunctionSize};

    fn compiled(n: usize) -> CompileResult {
        let src = synthetic_program(FunctionSize::Small, n);
        compile_module_source(&src, &CompileOptions::default()).expect("compile")
    }

    #[test]
    fn seq_spec_is_single_process() {
        let r = compiled(3);
        let spec = seq_spec(&r, &CALIBRATED);
        assert_eq!(spec.process_count(), 1);
        assert_eq!(spec.name, SEQ_NAME);
    }

    #[test]
    fn par_spec_has_paper_process_hierarchy() {
        let r = compiled(3);
        let a = fcfs(3, 8);
        let spec = par_spec(&r, &CALIBRATED, &a);
        // master + parser + 1 section master + 3 function masters.
        assert_eq!(spec.process_count(), 6);
    }

    #[test]
    fn fn_masters_go_to_assigned_workstations() {
        let r = compiled(3);
        let a = fcfs(3, 8);
        let spec = par_spec(&r, &CALIBRATED, &a);
        // Walk the tree and collect fn-master workstations.
        fn collect(spec: &ProcessSpec, out: &mut Vec<(String, usize)>) {
            if spec.name.starts_with(FN_PREFIX) {
                out.push((spec.name.clone(), spec.workstation));
            }
            for s in &spec.steps {
                if let warp_netsim::Step::Fork { children } = s {
                    for c in children {
                        collect(c, out);
                    }
                }
            }
        }
        let mut ws = Vec::new();
        collect(&spec, &mut ws);
        assert_eq!(ws.len(), 3);
        let stations: Vec<usize> = ws.iter().map(|(_, w)| *w).collect();
        assert_eq!(stations, vec![1, 2, 3]);
    }

    #[test]
    fn simulated_seq_vs_par_sanity() {
        // For several medium functions, parallel elapsed must be well
        // below sequential elapsed in the simulator.
        let src = synthetic_program(FunctionSize::Medium, 4);
        let r = compile_module_source(&src, &CompileOptions::default()).unwrap();
        let seq = warp_netsim::simulate(CALIBRATED.host, seq_spec(&r, &CALIBRATED));
        let a = fcfs(4, CALIBRATED.host.workstations - 1);
        let par = warp_netsim::simulate(CALIBRATED.host, par_spec(&r, &CALIBRATED, &a));
        assert!(
            par.elapsed_s < seq.elapsed_s,
            "par {} !< seq {}",
            par.elapsed_s,
            seq.elapsed_s
        );
    }
}
