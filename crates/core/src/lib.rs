//! # parcc — the parallel compiler
//!
//! The paper's contribution (*Parallel Compilation for a Parallel
//! Machine*, Gross/Zobel/Zolg, PLDI 1989): compile the functions of a
//! Warp module in parallel on a network of workstations, one function
//! master per function, coordinated by a master and per-section section
//! masters (§3.2).
//!
//! * [`driver`] — the real compiler (phases 1–4) and the per-function
//!   work records;
//! * [`scheduler`] — FCFS distribution and cost-estimate grouping;
//! * [`costmodel`] / [`simspec`] — replay real compilations through the
//!   1989 host simulator;
//! * [`metrics`] — elapsed/CPU measurements and the §4.2.3 overhead
//!   decomposition (implementation vs system, possibly negative);
//! * [`experiment`] — one-call runners for every measurement in the
//!   evaluation, plus the §5.1 inlining ablation;
//! * [`parmake`] — the §3.4 parallel-make baseline and the combined
//!   parallel-make × parallel-compiler mode;
//! * [`threads`] — real parallel compilation with OS threads (the same
//!   hierarchy, on today's hardware);
//! * [`farm`] — the distributed version: a coordinator driving real
//!   `warpd-worker` OS processes over sockets, content-addressed
//!   object exchange through the shared cache, seeded real-process
//!   fault injection;
//! * [`fuzz`] — the differential fuzzing harness: seeded W2 corpora
//!   run through the strict interpreter, the batched interpreter and
//!   the static verifier, with shrinking and regression fixtures.

#![warn(missing_docs)]

pub mod costmodel;
pub mod driver;
mod exec;
pub mod experiment;
pub mod farm;
pub mod fncache;
pub mod fuzz;
pub mod katseff;
pub mod metrics;
pub mod parmake;
pub mod scheduler;
pub mod simspec;
pub mod threads;

pub use costmodel::{CostModel, CALIBRATED};
pub use driver::{
    compile_function, compile_function_cached_traced, compile_function_deduped_traced,
    compile_function_keyed_traced, compile_function_traced, compile_module_cached,
    compile_module_cached_traced, compile_module_shared_jobs_traced, compile_module_shared_traced,
    compile_module_source, compile_module_traced, facts_report, link_module,
    link_module_parallel_traced, link_module_traced, prepare_module_parallel_traced, run_phase1,
    run_phase1_parallel_traced, run_phase1_traced, CompileError, CompileOptions, CompileResult,
    FunctionRecord,
};
pub use experiment::{
    Comparison, ComparisonTraces, Experiment, FaultedFig6, FaultedPoint, InlineAblation, Placement,
};
pub use farm::{
    compile_farm, compile_farm_traced, run_worker, FarmConfig, FarmFaultStats, FarmReport,
    FARM_PROTOCOL_VERSION,
};
pub use fncache::{function_key, options_fingerprint, CachedFunction, FnCache};
pub use katseff::{assembler_sweep, katseff_comparison, AssemblerSweep};
pub use metrics::{overheads, speedup, Measurement, Overheads};
pub use parmake::{
    parmake_comparison, ParmakeReport, SystemModule, PARMAKE_FAULTS, PARMAKE_FAULT_SEED,
};
pub use scheduler::{
    fcfs, grouped_lpt, grouped_lpt_estimates, rebalance_after_loss, rebalance_after_loss_estimates,
    Assignment,
};
pub use threads::{
    compile_parallel, compile_parallel_cached, compile_parallel_cached_traced,
    compile_parallel_chaos, compile_parallel_chaos_cached, compile_parallel_chaos_traced,
    compile_parallel_traced, default_jobs, resolve_jobs, ChaosAction, ChaosPlan, FaultStats,
    RetryPolicy, ThreadReport,
};
