//! Real parallel compilation with OS threads.
//!
//! The same master / section-master / function-master structure as the
//! simulated 1989 system, executed with actual parallelism on the host
//! machine: phase 1 runs sequentially, then one worker per function
//! compiles concurrently (bounded by a worker budget), then the
//! sections are linked sequentially. Used by the Criterion benches to
//! demonstrate genuine wall-clock speedup of the same compiler.
//!
//! Two Amdahl leaks of the first implementation are fixed here:
//!
//! * **LPT dispatch** — jobs are queued in decreasing a-priori cost
//!   estimate (LoC × nesting, §4.3) rather than source order, so the
//!   largest function starts compiling first and can never be the one
//!   job left running after every other worker drained the queue;
//! * **cache hits bypass the queue** — with an incremental cache
//!   ([`crate::fncache`]), the master probes every function's content
//!   address itself and only queues the misses; a fully warm build
//!   spawns no workers at all.

use crate::driver::{
    compile_function_traced, link_module_traced, prepare_module_traced, CompileError,
    CompileOptions, CompileResult, FunctionRecord,
};
use crate::fncache::{function_key, options_fingerprint, CachedFunction, FnCache};
use crossbeam::channel::bounded;
use std::time::{Duration, Instant};
use warp_cache::CacheKey;
use warp_obs::{Trace, TrackId};
use warp_target::program::FunctionImage;

/// Timing breakdown of a threaded parallel compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// Total wall time.
    pub wall: Duration,
    /// Sequential phase-1 wall time.
    pub phase1_wall: Duration,
    /// Wall time of the parallel compilation phase.
    pub compile_wall: Duration,
    /// Sequential link wall time.
    pub link_wall: Duration,
    /// Per-function wall time, in source order.
    pub per_function: Vec<(String, Duration)>,
    /// Worker threads used.
    pub workers: usize,
}

/// Compiles `source` with up to `workers` concurrent function masters.
///
/// # Errors
///
/// Propagates the first compilation error (the whole compilation is
/// aborted, as the paper's master does).
pub fn compile_parallel(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_traced(source, opts, workers, &Trace::disabled())
}

/// [`compile_parallel`] with span tracing on the real monotonic clock:
/// the sequential `parse`/`sema`/`link` steps and the parallel
/// `compile` window land on a `driver` track, and every function
/// compiled by worker *w* becomes a `"worker"` span on a `worker w`
/// track with the per-pass spans nested inside it. With a disabled
/// trace this is exactly [`compile_parallel`].
///
/// # Errors
///
/// Propagates the first compilation error (the whole compilation is
/// aborted, as the paper's master does).
pub fn compile_parallel_traced(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    trace: &Trace,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_inner(source, opts, workers, None, trace)
}

/// [`compile_parallel`] with an incremental compilation cache: the
/// master probes every function's content address before dispatching;
/// hits are materialized directly (no worker queueing, no thread
/// hand-off) and only misses are compiled — then stored, so the next
/// build hits. A fully warm build runs phase 1, N cache probes and the
/// link, nothing else.
///
/// # Errors
///
/// Propagates the first compilation error.
pub fn compile_parallel_cached(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    cache: &FnCache,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_inner(source, opts, workers, Some(cache), &Trace::disabled())
}

/// [`compile_parallel_cached`] with span tracing: cache probes become
/// `"cache"` spans (`hit f` on the driver track for bypassed jobs,
/// `miss f` next to the worker span that recompiles).
///
/// # Errors
///
/// Propagates the first compilation error.
pub fn compile_parallel_cached_traced(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    cache: &FnCache,
    trace: &Trace,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_inner(source, opts, workers, Some(cache), trace)
}

/// LPT (longest-processing-time-first) dispatch order over a-priori
/// cost estimates: indices sorted by decreasing estimate, source order
/// as the tie-break. Queueing jobs in this order means the most
/// expensive function starts compiling first — it can never be the one
/// job left running after every other worker has drained the queue,
/// which is the first-order Amdahl leak of source-order dispatch.
pub fn lpt_dispatch_order(estimates: impl IntoIterator<Item = u64>) -> Vec<usize> {
    let est: Vec<u64> = estimates.into_iter().collect();
    let mut order: Vec<usize> = (0..est.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(est[i]), i));
    order
}

fn compile_parallel_inner(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    cache: Option<&FnCache>,
    trace: &Trace,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    let workers = workers.max(1);
    let driver_track = trace.track("driver");
    let t0 = Instant::now();
    let (checked, phase1_units, warnings) = prepare_module_traced(source, opts, trace, driver_track)?;
    let phase1_wall = t0.elapsed();

    // The work list: every (section, function) pair, tagged with the
    // a-priori cost estimate the load balancer would use (§4.3 —
    // available *before* compilation, from the AST alone).
    let jobs: Vec<(usize, usize, u64)> = checked
        .module
        .sections
        .iter()
        .enumerate()
        .flat_map(|(si, s)| {
            s.functions
                .iter()
                .enumerate()
                .map(move |(fi, f)| (si, fi, warp_workload::cost_estimate_of(f, source)))
        })
        .collect();

    let dispatch = lpt_dispatch_order(jobs.iter().map(|&(_, _, est)| est));

    type Job = (usize, (usize, usize), Option<CacheKey>);
    type Done = (usize, Result<(FunctionImage, FunctionRecord, Duration), CompileError>);

    let tc = Instant::now();
    let mut images: Vec<Option<FunctionImage>> = vec![None; jobs.len()];
    let mut records: Vec<Option<FunctionRecord>> = vec![None; jobs.len()];
    // `None` until the function's result arrives — never pre-filled
    // with placeholder durations, so a missing result is a bug we
    // catch, not an empty row in the report.
    let mut timings: Vec<Option<Duration>> = vec![None; jobs.len()];

    // The master probes the cache itself: hits bypass worker queueing
    // entirely, only misses are dispatched.
    let options_fp = cache.map(|_| options_fingerprint(opts));
    let mut queued: Vec<Job> = Vec::with_capacity(jobs.len());
    for &idx in &dispatch {
        let (si, fi, _) = jobs[idx];
        let Some(cache) = cache else {
            queued.push((idx, (si, fi), None));
            continue;
        };
        let probe_start = trace.now_ns();
        let t = Instant::now();
        let key = function_key(&checked, source, si, fi, options_fp.unwrap_or_default());
        match cache.lookup(key) {
            Some(cached) => {
                if trace.is_enabled() {
                    let name = &checked.module.sections[si].functions[fi].name;
                    trace.record_span(
                        "cache",
                        format!("hit {name}"),
                        driver_track,
                        probe_start,
                        trace.now_ns().saturating_sub(probe_start),
                        vec![("object_bytes", cached.record.object_bytes as f64)],
                    );
                }
                timings[idx] = Some(t.elapsed());
                images[idx] = Some(cached.image);
                records[idx] = Some(cached.record);
            }
            None => queued.push((idx, (si, fi), Some(key))),
        }
    }

    let pool_size = workers.min(queued.len());
    if pool_size > 0 {
        let (job_tx, job_rx) = bounded::<Job>(queued.len());
        let (done_tx, done_rx) = bounded::<Done>(queued.len());
        for job in queued.drain(..) {
            job_tx.send(job).expect("queue jobs");
        }
        drop(job_tx);

        let worker_tracks: Vec<TrackId> =
            (0..pool_size).map(|w| trace.track(&format!("worker {w}"))).collect();
        let compile_span = trace.span("driver", "compile", driver_track);
        std::thread::scope(|scope| {
            // Section masters are folded into a worker pool: each worker
            // plays function master for successive functions.
            for track in worker_tracks {
                let job_rx = job_rx.clone();
                let done_tx = done_tx.clone();
                let checked = &checked;
                let opts = &*opts;
                scope.spawn(move || {
                    while let Ok((idx, (si, fi), key)) = job_rx.recv() {
                        // Borrow the name for the span — no per-job
                        // clone in the hot loop.
                        let span = trace.span(
                            "worker",
                            checked.module.sections[si].functions[fi].name.as_str(),
                            track,
                        );
                        let t = Instant::now();
                        let out =
                            compile_function_traced(checked, source, si, fi, opts, trace, track)
                                .map(|(img, rec)| {
                                    if let (Some(cache), Some(key)) = (cache, key) {
                                        cache.store(
                                            key,
                                            CachedFunction {
                                                image: img.clone(),
                                                record: rec.clone(),
                                            },
                                        );
                                    }
                                    (img, rec, t.elapsed())
                                });
                        span.finish();
                        if done_tx.send((idx, out)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(done_tx);
            drop(job_rx);
            // The master collects results (any error aborts).
            let mut first_err: Option<CompileError> = None;
            while let Ok((idx, out)) = done_rx.recv() {
                match out {
                    Ok((img, rec, dt)) => {
                        timings[idx] = Some(dt);
                        images[idx] = Some(img);
                        records[idx] = Some(rec);
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            if let Some(e) = first_err {
                return Err(e);
            }
            Ok(())
        })?;
        compile_span.finish();
    }
    let compile_wall = tc.elapsed();

    let tl = Instant::now();
    let images: Vec<FunctionImage> = images.into_iter().map(|i| i.expect("image")).collect();
    let records: Vec<FunctionRecord> = records.into_iter().map(|r| r.expect("record")).collect();
    let per_function: Vec<(String, Duration)> = records
        .iter()
        .zip(&timings)
        .map(|(r, t)| (r.name.clone(), t.expect("timing per function")))
        .collect();
    let (module_image, link_units) = link_module_traced(&checked, images, opts, trace, driver_track)?;
    let link_wall = tl.elapsed();

    Ok((
        CompileResult { module_image, records, phase1_units, link_units, warnings },
        ThreadReport {
            wall: t0.elapsed(),
            phase1_wall,
            compile_wall,
            link_wall,
            per_function,
            workers,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::compile_module_source;
    use warp_workload::{synthetic_program, user_program, FunctionSize};

    #[test]
    fn parallel_result_matches_sequential() {
        let src = synthetic_program(FunctionSize::Small, 4);
        let opts = CompileOptions::default();
        let seq = compile_module_source(&src, &opts).expect("seq");
        let (par, report) = compile_parallel(&src, &opts, 4).expect("par");
        assert_eq!(seq.module_image, par.module_image, "bit-identical output");
        assert_eq!(seq.records.len(), par.records.len());
        assert_eq!(report.per_function.len(), 4);
        assert!(report.wall >= report.phase1_wall);
    }

    #[test]
    fn user_program_compiles_in_parallel() {
        let src = user_program();
        let opts = CompileOptions::default();
        let seq = compile_module_source(&src, &opts).expect("seq");
        let (par, _) = compile_parallel(&src, &opts, 8).expect("par");
        assert_eq!(seq.module_image, par.module_image);
    }

    #[test]
    fn phase1_error_propagates() {
        let err = compile_parallel("module broken;", &CompileOptions::default(), 4);
        assert!(matches!(err, Err(CompileError::Phase1(_))));
    }

    #[test]
    fn single_worker_works() {
        let src = synthetic_program(FunctionSize::Tiny, 2);
        let (r, report) = compile_parallel(&src, &CompileOptions::default(), 1).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn lpt_order_is_decreasing_with_stable_ties() {
        assert_eq!(lpt_dispatch_order([10, 40, 20, 40]), vec![1, 3, 2, 0]);
        assert_eq!(lpt_dispatch_order([]), Vec::<usize>::new());
        assert_eq!(lpt_dispatch_order([7]), vec![0]);
    }

    #[test]
    fn warm_cached_build_is_bit_identical_and_all_hits() {
        let src = user_program();
        let opts = CompileOptions::default();
        let cache = crate::fncache::FnCache::in_memory();
        let (cold, _) = compile_parallel_cached(&src, &opts, 4, &cache).expect("cold");
        let n = cold.records.len() as u64;
        let after_cold = cache.stats();
        assert_eq!(after_cold.misses, n, "cold build misses every function");
        assert_eq!(after_cold.stores, n);

        let (warm, _) = compile_parallel_cached(&src, &opts, 4, &cache).expect("warm");
        let after_warm = cache.stats();
        assert_eq!(after_warm.hits() - after_cold.hits(), n, "warm build hits every function");
        assert_eq!(after_warm.misses, after_cold.misses, "warm build misses nothing");
        assert_eq!(cold.module_image, warm.module_image, "bit-identical output");
        assert_eq!(cold.records, warm.records, "identical work records");

        // And both match the plain sequential compiler.
        let seq = compile_module_source(&src, &opts).expect("seq");
        assert_eq!(seq.module_image, warm.module_image);
    }

    #[test]
    fn sequential_cached_matches_parallel_cached() {
        let src = synthetic_program(FunctionSize::Small, 4);
        let opts = CompileOptions::default();
        let cache = crate::fncache::FnCache::in_memory();
        let seq = crate::driver::compile_module_cached(&src, &opts, &cache).expect("seq cold");
        let (par, _) = compile_parallel_cached(&src, &opts, 4, &cache).expect("par warm");
        assert_eq!(seq.module_image, par.module_image);
        // The parallel build was entirely served from the sequential
        // build's stores.
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits(), 4);
    }
}
