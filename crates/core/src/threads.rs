//! Real parallel compilation with OS threads.
//!
//! The same master / section-master / function-master structure as the
//! simulated 1989 system, executed with actual parallelism on the host
//! machine: phase 1 runs sequentially, then one worker per function
//! compiles concurrently (bounded by a worker budget), then the
//! sections are linked sequentially. Used by the Criterion benches to
//! demonstrate genuine wall-clock speedup of the same compiler.

use crate::driver::{
    compile_function_traced, link_module_traced, prepare_module_traced, CompileError,
    CompileOptions, CompileResult, FunctionRecord,
};
use crossbeam::channel::bounded;
use std::time::{Duration, Instant};
use warp_obs::{Trace, TrackId};
use warp_target::program::FunctionImage;

/// Timing breakdown of a threaded parallel compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// Total wall time.
    pub wall: Duration,
    /// Sequential phase-1 wall time.
    pub phase1_wall: Duration,
    /// Wall time of the parallel compilation phase.
    pub compile_wall: Duration,
    /// Sequential link wall time.
    pub link_wall: Duration,
    /// Per-function wall time, in source order.
    pub per_function: Vec<(String, Duration)>,
    /// Worker threads used.
    pub workers: usize,
}

/// Compiles `source` with up to `workers` concurrent function masters.
///
/// # Errors
///
/// Propagates the first compilation error (the whole compilation is
/// aborted, as the paper's master does).
pub fn compile_parallel(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_traced(source, opts, workers, &Trace::disabled())
}

/// [`compile_parallel`] with span tracing on the real monotonic clock:
/// the sequential `parse`/`sema`/`link` steps and the parallel
/// `compile` window land on a `driver` track, and every function
/// compiled by worker *w* becomes a `"worker"` span on a `worker w`
/// track with the per-pass spans nested inside it. With a disabled
/// trace this is exactly [`compile_parallel`].
///
/// # Errors
///
/// Propagates the first compilation error (the whole compilation is
/// aborted, as the paper's master does).
pub fn compile_parallel_traced(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    trace: &Trace,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    let workers = workers.max(1);
    let driver_track = trace.track("driver");
    let t0 = Instant::now();
    let (checked, phase1_units, warnings) = prepare_module_traced(source, opts, trace, driver_track)?;
    let phase1_wall = t0.elapsed();

    // The work list: every (section, function) pair in source order.
    let jobs: Vec<(usize, usize)> = checked
        .module
        .sections
        .iter()
        .enumerate()
        .flat_map(|(si, s)| (0..s.functions.len()).map(move |fi| (si, fi)))
        .collect();

    type Job = (usize, (usize, usize));
    type Done = (usize, Result<(FunctionImage, FunctionRecord, Duration), CompileError>);

    let tc = Instant::now();
    let (job_tx, job_rx) = bounded::<Job>(jobs.len());
    let (done_tx, done_rx) = bounded::<Done>(jobs.len());
    for job in jobs.iter().copied().enumerate() {
        job_tx.send(job).expect("queue jobs");
    }
    drop(job_tx);

    let mut images: Vec<Option<FunctionImage>> = vec![None; jobs.len()];
    let mut records: Vec<Option<FunctionRecord>> = vec![None; jobs.len()];
    // `None` until the function's result arrives — never pre-filled
    // with placeholder names, so a missing result is a bug we catch,
    // not an empty row in the report.
    let mut timings: Vec<Option<(String, Duration)>> = vec![None; jobs.len()];

    let pool_size = workers.min(jobs.len().max(1));
    let worker_tracks: Vec<TrackId> =
        (0..pool_size).map(|w| trace.track(&format!("worker {w}"))).collect();
    let compile_span = trace.span("driver", "compile", driver_track);
    std::thread::scope(|scope| {
        // Section masters are folded into a worker pool: each worker
        // plays function master for successive functions (the paper's
        // FCFS distribution).
        for track in worker_tracks {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let checked = &checked;
            let opts = &*opts;
            scope.spawn(move || {
                while let Ok((idx, (si, fi))) = job_rx.recv() {
                    let name = checked.module.sections[si].functions[fi].name.clone();
                    let span = trace.span("worker", name, track);
                    let t = Instant::now();
                    let out = compile_function_traced(checked, source, si, fi, opts, trace, track)
                        .map(|(img, rec)| (img, rec, t.elapsed()));
                    span.finish();
                    if done_tx.send((idx, out)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(done_tx);
        drop(job_rx);
        // The master collects results (any error aborts).
        let mut first_err: Option<CompileError> = None;
        while let Ok((idx, out)) = done_rx.recv() {
            match out {
                Ok((img, rec, dt)) => {
                    timings[idx] = Some((rec.name.clone(), dt));
                    images[idx] = Some(img);
                    records[idx] = Some(rec);
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(())
    })?;
    compile_span.finish();
    let compile_wall = tc.elapsed();

    let tl = Instant::now();
    let images: Vec<FunctionImage> = images.into_iter().map(|i| i.expect("image")).collect();
    let records: Vec<FunctionRecord> = records.into_iter().map(|r| r.expect("record")).collect();
    let timings: Vec<(String, Duration)> =
        timings.into_iter().map(|t| t.expect("timing per function")).collect();
    let (module_image, link_units) = link_module_traced(&checked, images, opts, trace, driver_track)?;
    let link_wall = tl.elapsed();

    Ok((
        CompileResult { module_image, records, phase1_units, link_units, warnings },
        ThreadReport {
            wall: t0.elapsed(),
            phase1_wall,
            compile_wall,
            link_wall,
            per_function: timings,
            workers,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::compile_module_source;
    use warp_workload::{synthetic_program, user_program, FunctionSize};

    #[test]
    fn parallel_result_matches_sequential() {
        let src = synthetic_program(FunctionSize::Small, 4);
        let opts = CompileOptions::default();
        let seq = compile_module_source(&src, &opts).expect("seq");
        let (par, report) = compile_parallel(&src, &opts, 4).expect("par");
        assert_eq!(seq.module_image, par.module_image, "bit-identical output");
        assert_eq!(seq.records.len(), par.records.len());
        assert_eq!(report.per_function.len(), 4);
        assert!(report.wall >= report.phase1_wall);
    }

    #[test]
    fn user_program_compiles_in_parallel() {
        let src = user_program();
        let opts = CompileOptions::default();
        let seq = compile_module_source(&src, &opts).expect("seq");
        let (par, _) = compile_parallel(&src, &opts, 8).expect("par");
        assert_eq!(seq.module_image, par.module_image);
    }

    #[test]
    fn phase1_error_propagates() {
        let err = compile_parallel("module broken;", &CompileOptions::default(), 4);
        assert!(matches!(err, Err(CompileError::Phase1(_))));
    }

    #[test]
    fn single_worker_works() {
        let src = synthetic_program(FunctionSize::Tiny, 2);
        let (r, report) = compile_parallel(&src, &CompileOptions::default(), 1).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(report.workers, 1);
    }
}
