//! Real parallel compilation with OS threads on a work-stealing
//! scheduler.
//!
//! The same master / section-master / function-master structure as the
//! simulated 1989 system, executed with actual parallelism on the host
//! machine. Where the paper (and the first implementations here) left
//! phases 1 and 4 sequential, this driver parallelizes all four:
//! phase 1 runs as chunked parallel lexing plus per-section parsing
//! and sema with a sequential merge, phases 2–3 run one function per
//! stealing worker, and phase 4 resolves per-function addresses in
//! parallel with a sequential per-section finish — all bit-identical
//! to the sequential compiler.
//!
//! The compile stage itself is no longer round-based: workers own
//! per-thread deques ([`crossbeam::deque`]) seeded round-robin in LPT
//! order, pull continuously, and steal from siblings (then from the
//! master's retry injector) when their own queue runs dry. A worker
//! that finishes early immediately takes load off the laggards instead
//! of idling at a round barrier — `sched` steal/idle instants and
//! per-worker queue-depth counters make the behaviour visible in
//! traces (`docs/PARALLELISM.md`, `docs/TRACING.md`).
//!
//! Two Amdahl leaks of the first implementation remain fixed here:
//!
//! * **LPT dispatch** — jobs are seeded in decreasing a-priori cost
//!   estimate (LoC × nesting, §4.3) rather than source order, so the
//!   largest function starts compiling first and can never be the one
//!   job left running after every other worker drained the queues;
//! * **cache hits bypass the queue** — with an incremental cache
//!   ([`crate::fncache`]), the master probes every function's content
//!   address itself and only seeds the misses; a fully warm build
//!   spawns no workers at all.
//!
//! # Fault tolerance
//!
//! The paper's build farm loses workers routinely — a diskless SUN
//! reboots, swaps itself to death, or falls off the Ethernet mid-build
//! — so the master here never trusts a dispatched job to come back:
//!
//! * worker panics are contained with `catch_unwind` and reported over
//!   the result channel, never unwinding into the master;
//! * the master collects results with a per-job timeout
//!   ([`RetryPolicy::job_timeout`]); jobs whose results never arrive
//!   (a lost message, a dead worker) are re-injected onto the running
//!   pool, with bounded exponential backoff — no pool teardown, no
//!   round barrier;
//! * results that arrive *late* (a stalled worker) are still used —
//!   after a timeout the master waits for the pool to go quiet and
//!   drains every completed compilation before declaring anything
//!   lost;
//! * when a job's attempt budget is exhausted the master compiles the
//!   leftovers itself, sequentially, in-process — the same "the
//!   master's own workstation always works" fallback the simulator's
//!   [`warp_netsim::FaultPlan`] models — so a build always terminates
//!   with output **bit-identical** to the sequential compiler.
//!
//! Failures are injected deterministically through a [`ChaosPlan`]
//! (seeded, per-job, per-attempt), which is how the chaos-matrix CI
//! job and the tests below exercise every failure mode; production
//! entry points pass no plan and pay only a timed `recv` for the
//! machinery. Fault and recovery events are recorded as `fault` /
//! `retry` spans in the [`warp_obs`] trace (see `docs/TRACING.md`),
//! and the counts surface in [`ThreadReport::faults`]. The policy
//! knobs and semantics are documented in `docs/FAULTS.md`.

use crate::driver::{
    compile_function_traced, link_module_parallel_traced, prepare_module_parallel_traced,
    CompileError, CompileOptions, CompileResult, FunctionRecord,
};
use crate::fncache::{function_key, options_fingerprint, CachedFunction, FnCache};
use crossbeam::channel::bounded;
use crossbeam::deque::{Injector, Stealer, Worker as JobDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use warp_cache::CacheKey;
use warp_obs::Trace;
use warp_target::program::FunctionImage;

/// Fault and recovery counters for one threaded compilation (all
/// zeros on a healthy run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker panics contained by `catch_unwind`.
    pub panics: usize,
    /// Jobs whose result never arrived (lost message / dead worker).
    pub lost: usize,
    /// Per-job timeouts that fired while collecting a round.
    pub timeouts: usize,
    /// Jobs re-dispatched in a retry round.
    pub retries: usize,
    /// Jobs the master compiled itself after the retry budget ran out.
    pub sequential_fallbacks: usize,
}

impl FaultStats {
    /// `true` when no fault was observed and no recovery was needed.
    pub fn is_quiet(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Timing breakdown of a threaded parallel compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// Total wall time.
    pub wall: Duration,
    /// Sequential phase-1 wall time.
    pub phase1_wall: Duration,
    /// Wall time of the parallel compilation phase.
    pub compile_wall: Duration,
    /// Sequential link wall time.
    pub link_wall: Duration,
    /// Per-function wall time, in source order.
    pub per_function: Vec<(String, Duration)>,
    /// Worker threads used.
    pub workers: usize,
    /// Faults observed and recoveries performed.
    pub faults: FaultStats,
}

/// How the master detects and recovers from lost work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long the master waits for *some* result before declaring
    /// the outstanding jobs of the round lost.
    pub job_timeout: Duration,
    /// Dispatch attempts per job (1 = no retries) before the master
    /// falls back to compiling the job itself.
    pub max_attempts: usize,
    /// Base delay before a retry round; doubles each further round.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Generous defaults: a healthy build never times out, and a
        // genuinely wedged worker costs three 30 s windows before the
        // master takes the work back.
        RetryPolicy {
            job_timeout: Duration::from_secs(30),
            max_attempts: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// A tight policy for tests and chaos runs: `timeout` per job,
    /// `max_attempts` rounds, 1 ms backoff.
    pub fn fast(timeout: Duration, max_attempts: usize) -> RetryPolicy {
        RetryPolicy {
            job_timeout: timeout,
            max_attempts,
            backoff: Duration::from_millis(1),
        }
    }
}

/// What the chaos plan does to one job attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Nothing — the job runs normally.
    None,
    /// The worker panics mid-job (contained by `catch_unwind`).
    Panic,
    /// The worker compiles the job but the result message is lost.
    Lose,
    /// The worker stalls for [`ChaosPlan::stall_for`] before
    /// compiling, so its result arrives after the master's timeout.
    Stall,
}

/// A seeded, deterministic fault-injection plan for the *real*
/// threaded driver — the `parcc` counterpart of the simulator's
/// [`warp_netsim::FaultPlan`]. Each `(job, attempt)` pair is struck
/// (or spared) by a pure function of the seed, so a chaos run is
/// exactly reproducible from its seed alone.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Seed for the per-job fault draw.
    pub seed: u64,
    /// Probability a job attempt panics its worker.
    pub crash_prob: f64,
    /// Probability a job attempt's result message is lost.
    pub lose_prob: f64,
    /// Probability a job attempt stalls past the master's timeout.
    pub stall_prob: f64,
    /// How long a stalled worker sleeps before compiling.
    pub stall_for: Duration,
    /// Restrict injection to one job index (for targeted tests).
    pub only_job: Option<usize>,
    /// Only strike first attempts, so every job's retry succeeds and
    /// the run is guaranteed to stay off the sequential fallback.
    pub first_attempt_only: bool,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        ChaosPlan {
            seed: 0,
            crash_prob: 0.0,
            lose_prob: 0.0,
            stall_prob: 0.0,
            stall_for: Duration::from_millis(200),
            only_job: None,
            first_attempt_only: true,
        }
    }
}

/// splitmix64, the same stream generator the netsim fault plan uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl ChaosPlan {
    /// The mixed plan the chaos-matrix CI job runs: every fault class
    /// armed with moderate probability, first attempts only (so the
    /// build recovers through retries, exercising the whole detection
    /// and re-dispatch path on every seed).
    pub fn from_seed(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            crash_prob: 0.25,
            lose_prob: 0.20,
            stall_prob: 0.15,
            ..ChaosPlan::default()
        }
    }

    /// A plan that panics exactly one job's first attempt.
    pub fn crash_one(job: usize) -> ChaosPlan {
        ChaosPlan {
            crash_prob: 1.0,
            only_job: Some(job),
            ..ChaosPlan::default()
        }
    }

    /// A plan that loses exactly one job's first result.
    pub fn lose_one(job: usize) -> ChaosPlan {
        ChaosPlan {
            lose_prob: 1.0,
            only_job: Some(job),
            ..ChaosPlan::default()
        }
    }

    /// A plan that stalls exactly one job's first attempt for
    /// `stall_for`.
    pub fn stall_one(job: usize, stall_for: Duration) -> ChaosPlan {
        ChaosPlan {
            stall_prob: 1.0,
            stall_for,
            only_job: Some(job),
            ..ChaosPlan::default()
        }
    }

    /// The deterministic fault draw for `(job, attempt)`.
    pub fn decide(&self, job: usize, attempt: usize) -> ChaosAction {
        if self.first_attempt_only && attempt > 0 {
            return ChaosAction::None;
        }
        if self.only_job.is_some_and(|j| j != job) {
            return ChaosAction::None;
        }
        let mut state = self
            .seed
            .wrapping_add((job as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((attempt as u64 + 1).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        let roll = unit(splitmix64(&mut state));
        if roll < self.crash_prob {
            ChaosAction::Panic
        } else if roll < self.crash_prob + self.lose_prob {
            ChaosAction::Lose
        } else if roll < self.crash_prob + self.lose_prob + self.stall_prob {
            ChaosAction::Stall
        } else {
            ChaosAction::None
        }
    }
}

/// The default job count for parallel compilation: the machine's
/// available parallelism, or 1 when it cannot be queried. This is the
/// single source of truth behind `warpcc --jobs 0` and a `warpd`
/// compile request without a `jobs` field — callers that used to
/// hardcode worker counts resolve through here instead.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Resolves a requested job count: `0` (the wire/CLI spelling of
/// "default") becomes [`default_jobs`], anything else is used as-is.
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        default_jobs()
    } else {
        requested
    }
}

/// Compiles `source` with up to `workers` concurrent function masters.
///
/// # Errors
///
/// Propagates the first compilation error (the whole compilation is
/// aborted, as the paper's master does).
pub fn compile_parallel(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_traced(source, opts, workers, &Trace::disabled())
}

/// [`compile_parallel`] with span tracing on the real monotonic clock:
/// the sequential `parse`/`sema`/`link` steps and the parallel
/// `compile` window land on a `driver` track, and every function
/// compiled by worker *w* becomes a `"worker"` span on a `worker w`
/// track with the per-pass spans nested inside it. With a disabled
/// trace this is exactly [`compile_parallel`].
///
/// # Errors
///
/// Propagates the first compilation error (the whole compilation is
/// aborted, as the paper's master does).
pub fn compile_parallel_traced(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    trace: &Trace,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_inner(
        source,
        opts,
        workers,
        None,
        None,
        &RetryPolicy::default(),
        trace,
    )
}

/// [`compile_parallel`] with an incremental compilation cache: the
/// master probes every function's content address before dispatching;
/// hits are materialized directly (no worker queueing, no thread
/// hand-off) and only misses are compiled — then stored, so the next
/// build hits. A fully warm build runs phase 1, N cache probes and the
/// link, nothing else.
///
/// # Errors
///
/// Propagates the first compilation error.
pub fn compile_parallel_cached(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    cache: &FnCache,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_inner(
        source,
        opts,
        workers,
        Some(cache),
        None,
        &RetryPolicy::default(),
        &Trace::disabled(),
    )
}

/// [`compile_parallel_cached`] with span tracing: cache probes become
/// `"cache"` spans (`hit f` on the driver track for bypassed jobs,
/// `miss f` next to the worker span that recompiles).
///
/// # Errors
///
/// Propagates the first compilation error.
pub fn compile_parallel_cached_traced(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    cache: &FnCache,
    trace: &Trace,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_inner(
        source,
        opts,
        workers,
        Some(cache),
        None,
        &RetryPolicy::default(),
        trace,
    )
}

/// [`compile_parallel`] under injected faults: each job attempt is
/// struck per `chaos`, detection and recovery follow `policy`. Output
/// is bit-identical to the sequential compiler no matter what the plan
/// injects — chaos only moves work around, it never changes results.
///
/// # Errors
///
/// Propagates the first *compilation* error; injected faults are
/// recovered, not propagated.
pub fn compile_parallel_chaos(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    chaos: &ChaosPlan,
    policy: &RetryPolicy,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_inner(
        source,
        opts,
        workers,
        None,
        Some(chaos),
        policy,
        &Trace::disabled(),
    )
}

/// [`compile_parallel_chaos`] with span tracing: injected faults and
/// every recovery step (`timeout`, `retry`, `fallback`) appear under
/// the `fault` and `retry` categories.
///
/// # Errors
///
/// Propagates the first *compilation* error; injected faults are
/// recovered, not propagated.
pub fn compile_parallel_chaos_traced(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    chaos: &ChaosPlan,
    policy: &RetryPolicy,
    trace: &Trace,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_inner(source, opts, workers, None, Some(chaos), policy, trace)
}

/// [`compile_parallel_chaos`] with an incremental cache: faults strike
/// the compiles that actually run, cache hits bypass the executor
/// entirely. The combination is what a warm production daemon under
/// churn looks like, and the output must still be bit-identical.
///
/// # Errors
///
/// Propagates the first *compilation* error; injected faults are
/// recovered, not propagated.
pub fn compile_parallel_chaos_cached(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    cache: &FnCache,
    chaos: &ChaosPlan,
    policy: &RetryPolicy,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    compile_parallel_inner(
        source,
        opts,
        workers,
        Some(cache),
        Some(chaos),
        policy,
        &Trace::disabled(),
    )
}

/// LPT (longest-processing-time-first) dispatch order over a-priori
/// cost estimates: indices sorted by decreasing estimate, source order
/// as the tie-break. Queueing jobs in this order means the most
/// expensive function starts compiling first — it can never be the one
/// job left running after every other worker has drained the queue,
/// which is the first-order Amdahl leak of source-order dispatch.
pub fn lpt_dispatch_order(estimates: impl IntoIterator<Item = u64>) -> Vec<usize> {
    let est: Vec<u64> = estimates.into_iter().collect();
    let mut order: Vec<usize> = (0..est.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(est[i]), i));
    order
}

/// A dispatched unit of work: job index, `(section, function)`, and
/// the cache key to store the result under (for cached builds).
type Job = (usize, (usize, usize), Option<CacheKey>);

/// Why a worker could not produce a job's image.
enum JobFailure {
    /// A deterministic compiler error — retrying cannot help; the
    /// master aborts the build with it.
    Error(CompileError),
    /// The worker panicked (contained); the job is retried.
    Panicked(String),
}

type Done = (
    usize,
    Result<(FunctionImage, FunctionRecord, Duration), JobFailure>,
);

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Coordination state shared by the master and the stealing workers.
struct PoolState {
    /// Jobs seeded or injected whose *execution* has not finished yet
    /// (delivery is separate — a lost result still finishes
    /// executing). When this hits zero the pool is quiescent: any
    /// result that has not arrived by then never will.
    unfinished: usize,
    /// Set once by the master; workers exit after draining all work.
    shutdown: bool,
}

/// The work-stealing compile pool: a shared retry injector plus
/// condition variables for worker sleep ([`Pool::wait_for_work`]) and
/// master quiescence waits ([`Pool::wait_quiet`]). The per-worker
/// deques live on the worker threads themselves; only their stealers
/// are shared.
struct Pool {
    injector: Injector<(Job, usize)>,
    state: Mutex<PoolState>,
    /// Signalled on injection and shutdown.
    work_ready: Condvar,
    /// Signalled when `unfinished` reaches zero.
    quiet: Condvar,
}

impl Pool {
    fn new(seeded: usize) -> Pool {
        Pool {
            injector: Injector::new(),
            state: Mutex::new(PoolState {
                unfinished: seeded,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            quiet: Condvar::new(),
        }
    }

    /// Injects a retry attempt and wakes sleeping workers. Holding the
    /// state lock across the push keeps the injector check in
    /// [`Pool::wait_for_work`] race-free.
    fn submit(&self, job: Job, attempt: usize) {
        let mut st = self.state.lock().expect("pool lock");
        st.unfinished += 1;
        self.injector.push((job, attempt));
        self.work_ready.notify_all();
    }

    /// A worker finished executing one job (whether or not the result
    /// was delivered). Must be called *after* the result send, so that
    /// quiescence implies every delivered result is already buffered.
    fn finish_one(&self) {
        let mut st = self.state.lock().expect("pool lock");
        st.unfinished -= 1;
        if st.unfinished == 0 {
            self.quiet.notify_all();
        }
    }

    /// Blocks until every seeded and injected job has finished
    /// executing — the point after which a missing result is a *lost*
    /// result, not a slow one.
    fn wait_quiet(&self) {
        let mut st = self.state.lock().expect("pool lock");
        while st.unfinished > 0 {
            st = self.quiet.wait(st).expect("pool lock");
        }
    }

    /// Parks an idle worker until the injector has work or the pool
    /// shuts down. Returns `false` on shutdown. (Sibling deques never
    /// grow after seeding, so a failed steal sweep before this call
    /// cannot miss local work — only the injector can produce more.)
    fn wait_for_work(&self) -> bool {
        let mut st = self.state.lock().expect("pool lock");
        loop {
            if st.shutdown {
                return false;
            }
            if !self.injector.is_empty() {
                return true;
            }
            st = self.work_ready.wait(st).expect("pool lock");
        }
    }

    /// Tells the workers no further work will ever be injected.
    fn shutdown(&self) {
        let mut st = self.state.lock().expect("pool lock");
        st.shutdown = true;
        self.work_ready.notify_all();
    }
}

#[allow(clippy::too_many_lines)]
fn compile_parallel_inner(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    cache: Option<&FnCache>,
    chaos: Option<&ChaosPlan>,
    policy: &RetryPolicy,
    trace: &Trace,
) -> Result<(CompileResult, ThreadReport), CompileError> {
    let workers = workers.max(1);
    let driver_track = trace.track("driver");
    let t0 = Instant::now();
    let (checked, phase1_units, warnings) =
        prepare_module_parallel_traced(source, opts, workers, trace, driver_track)?;
    let phase1_wall = t0.elapsed();

    // The work list: every (section, function) pair, tagged with the
    // a-priori cost estimate the load balancer would use (§4.3 —
    // available *before* compilation, from the AST alone).
    let jobs: Vec<(usize, usize, u64)> = checked
        .module
        .sections
        .iter()
        .enumerate()
        .flat_map(|(si, s)| {
            s.functions
                .iter()
                .enumerate()
                .map(move |(fi, f)| (si, fi, warp_workload::cost_estimate_of(f, source)))
        })
        .collect();

    let dispatch = lpt_dispatch_order(jobs.iter().map(|&(_, _, est)| est));

    let tc = Instant::now();
    let mut images: Vec<Option<FunctionImage>> = vec![None; jobs.len()];
    let mut records: Vec<Option<FunctionRecord>> = vec![None; jobs.len()];
    // `None` until the function's result arrives — never pre-filled
    // with placeholder durations, so a missing result is a bug we
    // catch, not an empty row in the report.
    let mut timings: Vec<Option<Duration>> = vec![None; jobs.len()];
    let mut stats = FaultStats::default();

    // The master probes the cache itself: hits bypass worker queueing
    // entirely, only misses are dispatched.
    let options_fp = cache.map(|_| options_fingerprint(opts));
    let mut queued: Vec<Job> = Vec::with_capacity(jobs.len());
    for &idx in &dispatch {
        let (si, fi, _) = jobs[idx];
        let Some(cache) = cache else {
            queued.push((idx, (si, fi), None));
            continue;
        };
        let probe_start = trace.now_ns();
        let t = Instant::now();
        let key = function_key(&checked, source, si, fi, options_fp.unwrap_or_default());
        match cache.lookup(key) {
            Some(cached) => {
                if trace.is_enabled() {
                    let name = &checked.module.sections[si].functions[fi].name;
                    trace.record_span(
                        "cache",
                        format!("hit {name}"),
                        driver_track,
                        probe_start,
                        trace.now_ns().saturating_sub(probe_start),
                        vec![("object_bytes", cached.record.object_bytes as f64)],
                    );
                }
                timings[idx] = Some(t.elapsed());
                images[idx] = Some(cached.image);
                records[idx] = Some(cached.record);
            }
            None => queued.push((idx, (si, fi), Some(key))),
        }
    }

    let compile_span = trace.span("driver", "compile", driver_track);
    let mut first_err: Option<CompileError> = None;
    let total = queued.len();
    // The work-stealing pool: spawned once, fed the LPT-ordered misses
    // through per-worker deques, kept running across retries. A
    // healthy run seeds, drains, and shuts down without ever sleeping.
    if total > 0 && policy.max_attempts > 0 {
        let pool_size = workers.min(total);
        // Result capacity covers every possible attempt of every job,
        // so a send can never block: workers never wedge on a
        // straggler and the final join cannot deadlock.
        let (done_tx, done_rx) = bounded::<Done>(total * policy.max_attempts);
        let pool = Pool::new(total);
        // Seed the per-worker deques round-robin in LPT order: the
        // pool_size most expensive jobs start first, one per worker,
        // and whoever finishes early steals from the laggards.
        let locals: Vec<JobDeque<(Job, usize)>> =
            (0..pool_size).map(|_| JobDeque::new_fifo()).collect();
        let stealers: Vec<Stealer<(Job, usize)>> = locals.iter().map(JobDeque::stealer).collect();
        for (i, &job) in queued.iter().enumerate() {
            locals[i % pool_size].push((job, 0));
        }
        let worker_tracks = crate::exec::worker_tracks(trace, pool_size);
        if trace.is_enabled() {
            let ts = trace.now_ns();
            for (w, local) in locals.iter().enumerate() {
                trace.counter(
                    format!("queue {w}"),
                    worker_tracks[w],
                    ts,
                    local.len() as f64,
                );
            }
        }

        // Per-job dispatch bookkeeping, indexed like `jobs`.
        // `attempts_used[idx]` counts dispatches so far, so the next
        // attempt number equals it — the same 0,1,2… sequence the
        // round-based scheduler produced, which keeps every
        // [`ChaosPlan::decide`] draw (and thus every seeded chaos run)
        // bit-identical across the migration.
        let mut job_by_idx: Vec<Option<Job>> = vec![None; jobs.len()];
        let mut attempts_used: Vec<usize> = vec![0; jobs.len()];
        let mut in_flight: Vec<bool> = vec![false; jobs.len()];
        for &job in &queued {
            job_by_idx[job.0] = Some(job);
            attempts_used[job.0] = 1;
            in_flight[job.0] = true;
        }
        let mut outstanding = total;

        std::thread::scope(|scope| {
            // Section masters are folded into a stealing worker pool:
            // each worker plays function master for successive
            // functions, pulling continuously — local deque first,
            // then the master's retry injector, then the siblings.
            for (w, local) in locals.into_iter().enumerate() {
                let done_tx = done_tx.clone();
                let stealers = &stealers;
                let pool = &pool;
                let checked = &checked;
                let opts = &*opts;
                let track = worker_tracks[w];
                scope.spawn(move || {
                    let mut was_idle = false;
                    loop {
                        let mut task = local.pop();
                        if task.is_none() {
                            task = pool.injector.steal().success();
                            if task.is_some() && trace.is_enabled() {
                                trace.instant_now("sched", "steal from injector", track);
                            }
                        }
                        if task.is_none() {
                            for off in 1..stealers.len() {
                                let victim = (w + off) % stealers.len();
                                if let Some(t) = stealers[victim].steal().success() {
                                    if trace.is_enabled() {
                                        trace.instant_now(
                                            "sched",
                                            format!("steal from worker {victim}"),
                                            track,
                                        );
                                    }
                                    task = Some(t);
                                    break;
                                }
                            }
                        }
                        let Some(((idx, (si, fi), key), attempt)) = task else {
                            if !was_idle {
                                was_idle = true;
                                trace.instant_now("sched", "idle", track);
                            }
                            if pool.wait_for_work() {
                                continue;
                            }
                            break;
                        };
                        was_idle = false;
                        if trace.is_enabled() {
                            trace.counter(
                                format!("queue {w}"),
                                track,
                                trace.now_ns(),
                                local.len() as f64,
                            );
                        }
                        let action = chaos.map_or(ChaosAction::None, |c| c.decide(idx, attempt));
                        if action == ChaosAction::Stall {
                            // A wedged worker: the result will arrive
                            // long after the master's timeout.
                            std::thread::sleep(chaos.map_or(Duration::ZERO, |c| c.stall_for));
                        }
                        // Borrow the name for the span — no per-job
                        // clone in the hot loop.
                        let span = trace.span(
                            "worker",
                            checked.module.sections[si].functions[fi].name.as_str(),
                            track,
                        );
                        let t = Instant::now();
                        let caught = catch_unwind(AssertUnwindSafe(|| {
                            if action == ChaosAction::Panic {
                                panic!("injected worker panic (job {idx}, attempt {attempt})");
                            }
                            compile_function_traced(checked, source, si, fi, opts, trace, track)
                        }));
                        span.finish();
                        let out: Done = match caught {
                            Ok(Ok((img, rec))) => {
                                if let (Some(cache), Some(key)) = (cache, key) {
                                    cache.store(
                                        key,
                                        CachedFunction {
                                            image: img.clone(),
                                            record: rec.clone(),
                                        },
                                    );
                                }
                                (idx, Ok((img, rec, t.elapsed())))
                            }
                            Ok(Err(e)) => (idx, Err(JobFailure::Error(e))),
                            Err(payload) => {
                                (idx, Err(JobFailure::Panicked(panic_message(payload))))
                            }
                        };
                        if action != ChaosAction::Lose {
                            // Deliver before `finish_one`: quiescence
                            // must imply every delivered result is
                            // already buffered. (A `Lose` drops the
                            // message on the floor; the master's
                            // timeout will notice.)
                            let _ = done_tx.send(out);
                        }
                        pool.finish_one();
                    }
                });
            }
            drop(done_tx);

            // One result-handling path for both the live loop and the
            // post-quiescence drain: fills images, aborts on a
            // deterministic compile error, queues contained panics for
            // retry.
            macro_rules! on_done {
                ($idx:expr, $res:expr, $to_retry:expr) => {{
                    let idx: usize = $idx;
                    if in_flight[idx] {
                        in_flight[idx] = false;
                        outstanding -= 1;
                    }
                    match $res {
                        Ok((img, rec, dt)) => {
                            if images[idx].is_none() {
                                timings[idx] = Some(dt);
                                images[idx] = Some(img);
                                records[idx] = Some(rec);
                            }
                        }
                        Err(JobFailure::Error(e)) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                        Err(JobFailure::Panicked(msg)) => {
                            stats.panics += 1;
                            trace.instant(
                                "fault",
                                format!("panic (job {idx}): {msg}"),
                                driver_track,
                                trace.now_ns(),
                            );
                            if attempts_used[idx] < policy.max_attempts {
                                $to_retry.push(idx);
                            }
                        }
                    }
                }};
            }

            // The master collects results one event at a time under the
            // per-job timeout; there are no rounds. A contained panic
            // is re-injected immediately, silence past the timeout
            // triggers a quiescence wait + drain so late (stalled)
            // results are kept before anything is declared lost.
            while outstanding > 0 && first_err.is_none() {
                let mut to_retry: Vec<usize> = Vec::new();
                match done_rx.recv_timeout(policy.job_timeout) {
                    Ok((idx, res)) => on_done!(idx, res, to_retry),
                    Err(e) if e.is_timeout() => {
                        stats.timeouts += 1;
                        trace.instant(
                            "fault",
                            format!("timeout ({outstanding} jobs outstanding)"),
                            driver_track,
                            trace.now_ns(),
                        );
                        // Let stragglers finish, keep every late
                        // result, and only then call the rest lost.
                        pool.wait_quiet();
                        while let Ok((idx, res)) = done_rx.recv_timeout(Duration::ZERO) {
                            on_done!(idx, res, to_retry);
                        }
                        for idx in 0..in_flight.len() {
                            if in_flight[idx] {
                                stats.lost += 1;
                                in_flight[idx] = false;
                                outstanding -= 1;
                                if attempts_used[idx] < policy.max_attempts {
                                    to_retry.push(idx);
                                }
                            }
                        }
                    }
                    Err(_) => break, // Workers gone — unreachable while the pool lives.
                }
                if to_retry.is_empty() {
                    continue;
                }
                // Re-inject onto the *running* pool with bounded
                // exponential backoff; the workers keep compiling
                // other jobs while the master sleeps.
                stats.retries += to_retry.len();
                if trace.is_enabled() {
                    for &idx in &to_retry {
                        let (_, (si, fi), _) = job_by_idx[idx].expect("retried job was queued");
                        let name = &checked.module.sections[si].functions[fi].name;
                        let attempt = attempts_used[idx];
                        trace.instant(
                            "retry",
                            format!("retry {name} (attempt {attempt}, job {idx})"),
                            driver_track,
                            trace.now_ns(),
                        );
                    }
                }
                let worst = to_retry
                    .iter()
                    .map(|&i| attempts_used[i])
                    .max()
                    .unwrap_or(1);
                let shift = (worst - 1).min(16) as u32;
                let backoff = policy.backoff.saturating_mul(1u32 << shift);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                for &idx in &to_retry {
                    let attempt = attempts_used[idx];
                    attempts_used[idx] += 1;
                    in_flight[idx] = true;
                    outstanding += 1;
                    pool.submit(job_by_idx[idx].expect("retried job was queued"), attempt);
                }
            }
            pool.shutdown();
        });
    }
    if let Some(e) = first_err {
        return Err(e);
    }

    // Retry budget exhausted with jobs still missing: the master
    // compiles them itself, sequentially, in-process. Injected chaos
    // does not apply here (the master's own machine is the one host
    // the paper assumes works), so this always terminates; a genuine
    // panic inside the compiler is still contained and surfaced as a
    // diagnostic.
    for &(idx, (si, fi), key) in &queued {
        if images[idx].is_some() {
            continue;
        }
        stats.sequential_fallbacks += 1;
        let name = checked.module.sections[si].functions[fi].name.as_str();
        trace.instant(
            "retry",
            format!("fallback {name} (job {idx})"),
            driver_track,
            trace.now_ns(),
        );
        let t = Instant::now();
        let out = catch_unwind(AssertUnwindSafe(|| {
            compile_function_traced(&checked, source, si, fi, opts, trace, driver_track)
        }))
        .map_err(|payload| {
            CompileError::Worker(format!(
                "function `{name}` panicked during in-master fallback compilation: {}",
                panic_message(payload)
            ))
        })??;
        let (img, rec) = out;
        if let (Some(cache), Some(key)) = (cache, key) {
            cache.store(
                key,
                CachedFunction {
                    image: img.clone(),
                    record: rec.clone(),
                },
            );
        }
        timings[idx] = Some(t.elapsed());
        images[idx] = Some(img);
        records[idx] = Some(rec);
    }
    compile_span.finish();
    let compile_wall = tc.elapsed();

    let tl = Instant::now();
    // Every job was filled by a worker, a late drain, or the fallback;
    // a hole here is a bug in the recovery loop, reported as a
    // diagnostic rather than a panic.
    let mut final_images = Vec::with_capacity(jobs.len());
    let mut final_records = Vec::with_capacity(jobs.len());
    let mut per_function = Vec::with_capacity(jobs.len());
    for (idx, (img, (rec, dt))) in images
        .into_iter()
        .zip(records.into_iter().zip(timings))
        .enumerate()
    {
        match (img, rec, dt) {
            (Some(img), Some(rec), Some(dt)) => {
                per_function.push((rec.name.clone(), dt));
                final_images.push(img);
                final_records.push(rec);
            }
            _ => {
                return Err(CompileError::Worker(format!(
                    "job {idx} produced no result despite retries and fallback"
                )))
            }
        }
    }
    let (module_image, link_units) =
        link_module_parallel_traced(&checked, final_images, opts, workers, trace, driver_track)?;
    let link_wall = tl.elapsed();

    Ok((
        CompileResult {
            module_image,
            records: final_records,
            phase1_units,
            link_units,
            warnings,
        },
        ThreadReport {
            wall: t0.elapsed(),
            phase1_wall,
            compile_wall,
            link_wall,
            per_function,
            workers,
            faults: stats,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::compile_module_source;
    use warp_workload::{synthetic_program, user_program, FunctionSize};

    #[test]
    fn parallel_result_matches_sequential() {
        let src = synthetic_program(FunctionSize::Small, 4);
        let opts = CompileOptions::default();
        let seq = compile_module_source(&src, &opts).expect("seq");
        let (par, report) = compile_parallel(&src, &opts, 4).expect("par");
        assert_eq!(seq.module_image, par.module_image, "bit-identical output");
        assert_eq!(seq.records.len(), par.records.len());
        assert_eq!(report.per_function.len(), 4);
        assert!(report.wall >= report.phase1_wall);
        assert!(report.faults.is_quiet(), "healthy build observes no faults");
    }

    #[test]
    fn user_program_compiles_in_parallel() {
        let src = user_program();
        let opts = CompileOptions::default();
        let seq = compile_module_source(&src, &opts).expect("seq");
        let (par, _) = compile_parallel(&src, &opts, 8).expect("par");
        assert_eq!(seq.module_image, par.module_image);
    }

    #[test]
    fn phase1_error_propagates() {
        let err = compile_parallel("module broken;", &CompileOptions::default(), 4);
        assert!(matches!(err, Err(CompileError::Phase1(_))));
    }

    #[test]
    fn single_worker_works() {
        let src = synthetic_program(FunctionSize::Tiny, 2);
        let (r, report) = compile_parallel(&src, &CompileOptions::default(), 1).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn lpt_order_is_decreasing_with_stable_ties() {
        assert_eq!(lpt_dispatch_order([10, 40, 20, 40]), vec![1, 3, 2, 0]);
        assert_eq!(lpt_dispatch_order([]), Vec::<usize>::new());
        assert_eq!(lpt_dispatch_order([7]), vec![0]);
    }

    mod lpt_props {
        use super::super::lpt_dispatch_order;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

            /// The dispatch order is a total, platform-independent
            /// function of the estimates: a permutation sorted by
            /// decreasing estimate with the job index as the explicit
            /// secondary key, so equal-cost estimates can never reorder
            /// output across platforms or sort implementations. The
            /// narrow estimate range forces heavy tie collisions.
            #[test]
            fn order_is_a_sorted_permutation_with_index_tiebreak(
                est in prop::collection::vec(0u64..4, 0..48),
            ) {
                let order = lpt_dispatch_order(est.iter().copied());
                let mut seen = order.clone();
                seen.sort_unstable();
                prop_assert_eq!(seen, (0..est.len()).collect::<Vec<_>>(), "permutation");
                for pair in order.windows(2) {
                    let (a, b) = (pair[0], pair[1]);
                    prop_assert!(
                        est[a] > est[b] || (est[a] == est[b] && a < b),
                        "jobs {} (est {}) and {} (est {}) out of LPT order",
                        a, est[a], b, est[b]
                    );
                }
                // Re-running on the same input reproduces the order
                // exactly (no unstable-sort nondeterminism).
                prop_assert_eq!(order, lpt_dispatch_order(est.iter().copied()));
            }
        }
    }

    #[test]
    fn warm_cached_build_is_bit_identical_and_all_hits() {
        let src = user_program();
        let opts = CompileOptions::default();
        let cache = crate::fncache::FnCache::in_memory();
        let (cold, _) = compile_parallel_cached(&src, &opts, 4, &cache).expect("cold");
        let n = cold.records.len() as u64;
        let after_cold = cache.stats();
        assert_eq!(after_cold.misses, n, "cold build misses every function");
        assert_eq!(after_cold.stores, n);

        let (warm, _) = compile_parallel_cached(&src, &opts, 4, &cache).expect("warm");
        let after_warm = cache.stats();
        assert_eq!(
            after_warm.hits() - after_cold.hits(),
            n,
            "warm build hits every function"
        );
        assert_eq!(
            after_warm.misses, after_cold.misses,
            "warm build misses nothing"
        );
        assert_eq!(cold.module_image, warm.module_image, "bit-identical output");
        assert_eq!(cold.records, warm.records, "identical work records");

        // And both match the plain sequential compiler.
        let seq = compile_module_source(&src, &opts).expect("seq");
        assert_eq!(seq.module_image, warm.module_image);
    }

    #[test]
    fn sequential_cached_matches_parallel_cached() {
        let src = synthetic_program(FunctionSize::Small, 4);
        let opts = CompileOptions::default();
        let cache = crate::fncache::FnCache::in_memory();
        let seq = crate::driver::compile_module_cached(&src, &opts, &cache).expect("seq cold");
        let (par, _) = compile_parallel_cached(&src, &opts, 4, &cache).expect("par warm");
        assert_eq!(seq.module_image, par.module_image);
        // The parallel build was entirely served from the sequential
        // build's stores.
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.stats().hits(), 4);
    }

    // ---- fault tolerance ----

    fn fast_policy() -> RetryPolicy {
        RetryPolicy::fast(Duration::from_millis(80), 3)
    }

    #[test]
    fn worker_panic_is_contained_and_job_retried() {
        let src = synthetic_program(FunctionSize::Small, 4);
        let opts = CompileOptions::default();
        let seq = compile_module_source(&src, &opts).expect("seq");
        for job in 0..4 {
            let chaos = ChaosPlan::crash_one(job);
            let (par, report) =
                compile_parallel_chaos(&src, &opts, 4, &chaos, &fast_policy()).expect("par");
            assert_eq!(
                seq.module_image, par.module_image,
                "bit-identical despite crash of {job}"
            );
            assert_eq!(report.faults.panics, 1, "{:?}", report.faults);
            assert_eq!(report.faults.retries, 1, "{:?}", report.faults);
            assert_eq!(report.faults.sequential_fallbacks, 0, "{:?}", report.faults);
        }
    }

    #[test]
    fn lost_result_detected_by_timeout_and_retried() {
        let src = synthetic_program(FunctionSize::Small, 4);
        let opts = CompileOptions::default();
        let seq = compile_module_source(&src, &opts).expect("seq");
        let chaos = ChaosPlan::lose_one(1);
        let (par, report) =
            compile_parallel_chaos(&src, &opts, 4, &chaos, &fast_policy()).expect("par");
        assert_eq!(
            seq.module_image, par.module_image,
            "bit-identical despite lost result"
        );
        // The loss is noticed either by the per-job timeout (workers
        // still busy) or by pool disconnection (workers all drained
        // the queue and exited); both mark the job lost and retry it.
        assert!(report.faults.lost >= 1, "{:?}", report.faults);
        assert!(report.faults.retries >= 1, "{:?}", report.faults);
    }

    #[test]
    fn stalled_worker_late_result_is_used() {
        let src = synthetic_program(FunctionSize::Small, 4);
        let opts = CompileOptions::default();
        let seq = compile_module_source(&src, &opts).expect("seq");
        // The stall (250 ms) is far past the 80 ms timeout; the late
        // result is drained after the pool joins and no retry runs.
        let chaos = ChaosPlan::stall_one(2, Duration::from_millis(250));
        let (par, report) =
            compile_parallel_chaos(&src, &opts, 4, &chaos, &fast_policy()).expect("par");
        assert_eq!(
            seq.module_image, par.module_image,
            "bit-identical despite stall"
        );
        assert!(report.faults.timeouts >= 1, "{:?}", report.faults);
        assert_eq!(
            report.faults.retries, 0,
            "late result used, no retry: {:?}",
            report.faults
        );
    }

    #[test]
    fn exhausted_pool_falls_back_to_in_master_sequential() {
        let src = synthetic_program(FunctionSize::Small, 4);
        let opts = CompileOptions::default();
        let seq = compile_module_source(&src, &opts).expect("seq");
        // Every attempt of every job panics; with 2 attempts the
        // master must compile all four functions itself.
        let chaos = ChaosPlan {
            crash_prob: 1.0,
            first_attempt_only: false,
            ..ChaosPlan::default()
        };
        let policy = RetryPolicy::fast(Duration::from_millis(80), 2);
        let (par, report) = compile_parallel_chaos(&src, &opts, 4, &chaos, &policy).expect("par");
        assert_eq!(
            seq.module_image, par.module_image,
            "bit-identical via fallback"
        );
        assert_eq!(report.faults.sequential_fallbacks, 4, "{:?}", report.faults);
        assert_eq!(
            report.faults.panics, 8,
            "4 jobs × 2 attempts: {:?}",
            report.faults
        );
    }

    #[test]
    fn seeded_chaos_matrix_is_bit_identical() {
        // The same property the CI chaos matrix checks per seed: a
        // mixed fault plan never changes the compiled output.
        let src = user_program();
        let opts = CompileOptions::default();
        let seq = compile_module_source(&src, &opts).expect("seq");
        for seed in [1u64, 2, 3] {
            let chaos = ChaosPlan::from_seed(seed);
            let (par, report) =
                compile_parallel_chaos(&src, &opts, 4, &chaos, &fast_policy()).expect("par");
            assert_eq!(
                seq.module_image, par.module_image,
                "bit-identical under chaos seed {seed}"
            );
            assert_eq!(report.per_function.len(), seq.records.len());
        }
    }

    #[test]
    fn chaos_decide_is_deterministic() {
        let plan = ChaosPlan::from_seed(17);
        for job in 0..32 {
            for attempt in 0..3 {
                assert_eq!(plan.decide(job, attempt), plan.decide(job, attempt));
            }
        }
        // first_attempt_only spares every retry.
        assert!((0..64).all(|j| plan.decide(j, 1) == ChaosAction::None));
    }

    #[test]
    fn chaos_run_with_tracing_records_fault_spans() {
        let src = synthetic_program(FunctionSize::Small, 4);
        let opts = CompileOptions::default();
        let trace = Trace::new(warp_obs::ClockDomain::Monotonic);
        let chaos = ChaosPlan::crash_one(0);
        let (_, report) =
            compile_parallel_chaos_traced(&src, &opts, 4, &chaos, &fast_policy(), &trace)
                .expect("par");
        assert_eq!(report.faults.panics, 1);
        let snap = trace.snapshot();
        assert!(
            snap.instants
                .iter()
                .any(|i| i.cat == "fault" && i.name.starts_with("panic")),
            "panic instant recorded"
        );
        assert!(
            snap.instants
                .iter()
                .any(|i| i.cat == "retry" && i.name.starts_with("retry")),
            "retry instant recorded"
        );
    }
}
