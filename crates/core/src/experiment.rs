//! High-level experiment runners: one call per paper measurement.
//!
//! Each runner really compiles the program (phases 1–4 in this
//! process), then replays both the sequential and the parallel
//! compilation through the host simulator and reports the paper's
//! metrics. The figure harness in `parcc-bench` is a thin loop over
//! these.

use crate::costmodel::CostModel;
use crate::driver::{compile_module_source, CompileError, CompileOptions, CompileResult};
use crate::metrics::{overheads, speedup, Measurement, Overheads};
use crate::scheduler::{fcfs, grouped_lpt, Assignment};
use crate::simspec::{par_spec, seq_spec};
use serde::{Deserialize, Serialize};
use warp_netsim::{simulate, simulate_faulted, simulate_traced, FaultPlan, FaultSummary};
use warp_obs::{ClockDomain, Trace, TraceSnapshot};
use warp_workload::{call_heavy_program, synthetic_program, user_program, FunctionSize};

/// How function masters are placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// First-come-first-served over all free workstations (§3.3).
    Fcfs,
    /// Cost-estimate-driven grouping onto exactly this many processors
    /// (§4.3).
    Grouped {
        /// Number of workstations running function masters.
        processors: usize,
    },
}

/// The virtual-time traces behind one [`Comparison`] — the sequential
/// and parallel simulated runs, ready for the Chrome exporter.
#[derive(Debug, Clone)]
pub struct ComparisonTraces {
    /// Trace of the simulated sequential compilation.
    pub seq: TraceSnapshot,
    /// Trace of the simulated parallel compilation.
    pub par: TraceSnapshot,
}

/// One seq-vs-parallel comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Sequential measurement.
    pub seq: Measurement,
    /// Parallel measurement.
    pub par: Measurement,
    /// Elapsed-time speedup.
    pub speedup: f64,
    /// Overhead decomposition (§4.2.3).
    pub overheads: Overheads,
    /// Number of functions compiled.
    pub functions: usize,
    /// Processors used by function masters.
    pub processors: usize,
}

/// Experiment configuration.
#[derive(Debug, Clone, Default)]
pub struct Experiment {
    /// Compiler options.
    pub opts: CompileOptions,
    /// Host + cost model.
    pub model: CostModel,
}

impl Experiment {
    /// Compiles `source` and measures sequential vs parallel
    /// compilation under `placement`.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn compare_source(
        &self,
        source: &str,
        placement: Placement,
    ) -> Result<Comparison, CompileError> {
        let result = compile_module_source(source, &self.opts)?;
        Ok(self.compare_result(&result, placement))
    }

    /// Measures an already-compiled result.
    pub fn compare_result(&self, result: &CompileResult, placement: Placement) -> Comparison {
        self.compare_result_traced(result, placement).0
    }

    /// [`compare_result`], also returning the virtual-time trace of
    /// each simulated run. The measurements are *derived from the
    /// traces* ([`Measurement::from_trace`]), so a figure and the trace
    /// file it is cross-checked against can never disagree; the legacy
    /// [`Measurement::from_report`] path is kept for the equivalence
    /// tests.
    ///
    /// [`compare_result`]: Experiment::compare_result
    pub fn compare_result_traced(
        &self,
        result: &CompileResult,
        placement: Placement,
    ) -> (Comparison, ComparisonTraces) {
        let assignment: Assignment = match placement {
            Placement::Fcfs => fcfs(
                result.records.len(),
                self.model.host.workstations.saturating_sub(1),
            ),
            Placement::Grouped { processors } => grouped_lpt(&result.records, processors),
        };
        let seq_trace = Trace::new(ClockDomain::Virtual);
        let par_trace = Trace::new(ClockDomain::Virtual);
        simulate_traced(self.model.host, seq_spec(result, &self.model), &seq_trace);
        simulate_traced(
            self.model.host,
            par_spec(result, &self.model, &assignment),
            &par_trace,
        );
        let traces = ComparisonTraces {
            seq: seq_trace.snapshot(),
            par: par_trace.snapshot(),
        };
        let seq = Measurement::from_trace(&traces.seq);
        let par = Measurement::from_trace(&traces.par);
        let k = assignment.processors.max(1);
        let overheads = overheads(&par, &seq, k);
        let cmp = Comparison {
            speedup: speedup(&seq, &par),
            overheads,
            functions: result.records.len(),
            processors: assignment.processors,
            seq,
            par,
        };
        (cmp, traces)
    }

    /// The §4.2 synthetic measurement: `S_n` of a given size, FCFS.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn synthetic(&self, size: FunctionSize, n: usize) -> Result<Comparison, CompileError> {
        self.compare_source(&synthetic_program(size, n), Placement::Fcfs)
    }

    /// The §4.3 user-program measurement on a given processor count
    /// (9 = one per function, FCFS; fewer = grouped by cost estimate).
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn user_program(&self, processors: usize) -> Result<Comparison, CompileError> {
        let placement = if processors >= 9 {
            Placement::Fcfs
        } else {
            Placement::Grouped { processors }
        };
        self.compare_source(&user_program(), placement)
    }
}

/// One row of the "Figure 6 under *k* faults" report: the simulated
/// parallel compilation with a seeded [`FaultPlan`] of `k_faults`
/// events injected.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultedPoint {
    /// Number of fault events injected.
    pub k_faults: usize,
    /// Simulated elapsed time of the faulted parallel build.
    pub elapsed_s: f64,
    /// Speedup over the (fault-free) sequential build.
    pub speedup: f64,
    /// What actually struck and what recovery it took.
    pub faults: FaultSummary,
}

/// The "Figure 6 under *k* faults" report: how much of the parallel
/// compilation's speedup survives host failures, for a fixed seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultedFig6 {
    /// Seed the fault plans were generated from.
    pub seed: u64,
    /// Functions compiled.
    pub functions: usize,
    /// Fault-free sequential elapsed time (the speedup baseline).
    pub seq_elapsed_s: f64,
    /// Fault-free parallel elapsed time (also the horizon the fault
    /// plans are spread over).
    pub par_elapsed_s: f64,
    /// One row per requested fault count.
    pub points: Vec<FaultedPoint>,
}

impl Experiment {
    /// The fig6 workload under injected faults: compiles `S_n` of
    /// `size`, then replays the parallel build through the simulator
    /// once fault-free and once per entry of `ks`, each under a
    /// [`FaultPlan::generate`]d plan of that many events (seeded by
    /// `seed`, spread over the fault-free parallel makespan). The
    /// whole report is deterministic per `(seed, size, n, ks)`.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn fig6_under_faults(
        &self,
        size: FunctionSize,
        n: usize,
        seed: u64,
        ks: &[usize],
    ) -> Result<FaultedFig6, CompileError> {
        let result = compile_module_source(&synthetic_program(size, n), &self.opts)?;
        let assignment = fcfs(
            result.records.len(),
            self.model.host.workstations.saturating_sub(1),
        );
        let seq = simulate(self.model.host, seq_spec(&result, &self.model));
        let par = simulate(self.model.host, par_spec(&result, &self.model, &assignment));
        let points = ks
            .iter()
            .map(|&k| {
                let plan =
                    FaultPlan::generate(seed, k, self.model.host.workstations, par.elapsed_s);
                let r = simulate_faulted(
                    self.model.host,
                    plan,
                    par_spec(&result, &self.model, &assignment),
                );
                FaultedPoint {
                    k_faults: k,
                    elapsed_s: r.elapsed_s,
                    speedup: seq.elapsed_s / r.elapsed_s,
                    faults: r.faults,
                }
            })
            .collect();
        Ok(FaultedFig6 {
            seed,
            functions: result.records.len(),
            seq_elapsed_s: seq.elapsed_s,
            par_elapsed_s: par.elapsed_s,
            points,
        })
    }
}

/// One point of the if-conversion ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IfConvPoint {
    /// Whether if-conversion ran.
    pub converted: bool,
    /// Compile work units.
    pub compile_units: u64,
    /// Loops software-pipelined.
    pub pipelined_loops: usize,
    /// Cell cycles executing the kernel.
    pub cycles: u64,
}

impl Experiment {
    /// If-conversion ablation: a branchy loop kernel compiled with and
    /// without speculation into selects. Conversion restores
    /// pipelinability and cuts execution cycles at a modest compile-
    /// time premium.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn ifconv_ablation(&self) -> Result<[IfConvPoint; 2], CompileError> {
        const KERNEL: &str = "module k; section s on cells 0..0;
            function clampsum(x: float): float
            var t: float; u: float; i: int;
            begin
              t := 0.0;
              for i := 0 to 63 do
                u := float(i) * 0.25 + x;
                if u > 8.0 then t := t + u * 0.5; else t := t - u; end;
              end;
              return t;
            end;
end;";
        let mut out = [IfConvPoint {
            converted: false,
            compile_units: 0,
            pipelined_loops: 0,
            cycles: 0,
        }; 2];
        for (k, convert) in [false, true].into_iter().enumerate() {
            let mut opts = self.opts;
            opts.if_convert = convert.then_some(warp_ir::IfConvPolicy::default());
            let result = compile_module_source(KERNEL, &opts)?;
            let rec = &result.records[0];
            let image = result.module_image.section_images[0].clone();
            let mut cell = warp_target::interp::Cell::new(opts.cell, image).expect("cell");
            cell.set_strict(true);
            cell.prepare_call("clampsum", &[warp_target::interp::Value::F(0.5)])
                .expect("prepare");
            cell.run(10_000_000).expect("kernel must execute cleanly");
            out[k] = IfConvPoint {
                converted: convert,
                compile_units: rec.compile_units(),
                pipelined_loops: rec.p3.pipelined_loops,
                cycles: cell.cycle(),
            };
        }
        Ok(out)
    }
}

/// Result of the §5.1 inlining ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InlineAblation {
    /// Without inlining (the published compiler).
    pub baseline: Comparison,
    /// With inlining + subsumed-helper removal.
    pub inlined: Comparison,
    /// Functions compiled without inlining.
    pub baseline_functions: usize,
    /// Functions compiled with inlining.
    pub inlined_functions: usize,
}

impl Experiment {
    /// The §5.1 ablation: a program of many small, frequently-called
    /// functions, compiled with and without procedure inlining.
    /// Inlining turns many tiny parallel tasks into a few medium ones —
    /// the regime Figure 7 shows parallel compilation rewards.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors.
    pub fn inline_ablation(&self) -> Result<InlineAblation, CompileError> {
        let src = call_heavy_program(4, 3);
        let baseline_result = compile_module_source(&src, &self.opts)?;
        let baseline = self.compare_result(&baseline_result, Placement::Fcfs);

        let mut opts = self.opts;
        opts.inline = Some(warp_ir::InlinePolicy {
            drop_subsumed: true,
            ..warp_ir::InlinePolicy::default()
        });
        let inlined_result = compile_module_source(&src, &opts)?;
        let inlined = self.compare_result(&inlined_result, Placement::Fcfs);

        Ok(InlineAblation {
            baseline_functions: baseline_result.records.len(),
            inlined_functions: inlined_result.records.len(),
            baseline,
            inlined,
        })
    }
}

/// One point of the §6 unrolling trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnrollPoint {
    /// Unroll factor requested (1 = off).
    pub factor: u32,
    /// Compile work in abstract units (what the function master pays).
    pub compile_units: u64,
    /// Code size in instruction words.
    pub code_words: u32,
    /// Cell cycles to execute the kernel (code quality).
    pub cycles: u64,
}

impl Experiment {
    /// The §6 trade: "the compiler can employ more time consuming
    /// optimizations and thereby improve the quality of the code."
    /// Compiles a vector kernel at unroll factors 1, 2 and 4 and
    /// executes each on the strict machine interpreter: compile work
    /// and code size rise, execution cycles fall.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors; panics only if the generated code
    /// fails the strict interpreter (a compiler bug).
    pub fn unroll_ablation(&self) -> Result<Vec<UnrollPoint>, CompileError> {
        const KERNEL: &str = "module k; section s on cells 0..0;
            function saxpy(aa: float): float
            var v: float[64]; w: float[64]; acc: float; i: int;
            begin
              for i := 0 to 63 do v[i] := float(i) * 0.5; w[i] := float(i) * 0.25; end;
              for i := 0 to 63 do v[i] := v[i] * aa + w[i]; end;
              acc := 0.0;
              for i := 0 to 63 do acc := acc + v[i]; end;
              return acc;
            end;
end;";
        let mut out = Vec::new();
        for factor in [1u32, 2, 4] {
            let mut opts = self.opts;
            opts.unroll = (factor > 1).then_some(warp_ir::UnrollPolicy {
                factor,
                max_body_insts: 80,
            });
            let result = compile_module_source(KERNEL, &opts)?;
            let rec = &result.records[0];
            let image = result.module_image.section_images[0].clone();
            let mut cell = warp_target::interp::Cell::new(opts.cell, image).expect("cell");
            cell.set_strict(true);
            cell.prepare_call("saxpy", &[warp_target::interp::Value::F(1.5)])
                .expect("prepare");
            cell.run(10_000_000).expect("kernel must execute cleanly");
            out.push(UnrollPoint {
                factor,
                compile_units: rec.compile_units(),
                code_words: rec.p3.words,
                cycles: cell.cycle(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn medium_parallel_beats_sequential() {
        let e = Experiment::default();
        let c = e.synthetic(FunctionSize::Medium, 4).expect("compile");
        assert!(c.speedup > 1.0, "speedup {}", c.speedup);
        assert_eq!(c.functions, 4);
        assert_eq!(c.processors, 4);
    }

    #[test]
    fn tiny_parallel_is_not_worth_it() {
        let e = Experiment::default();
        let c = e.synthetic(FunctionSize::Tiny, 4).expect("compile");
        assert!(c.speedup < 1.0, "tiny speedup {}", c.speedup);
    }

    #[test]
    fn inlining_improves_call_heavy_speedup() {
        let e = Experiment::default();
        let a = e.inline_ablation().expect("ablation");
        assert!(a.inlined_functions < a.baseline_functions, "{a:?}");
        assert!(
            a.inlined.speedup > a.baseline.speedup,
            "inlined {} !> baseline {}",
            a.inlined.speedup,
            a.baseline.speedup
        );
    }

    #[test]
    fn unrolling_trades_compile_time_for_cycles() {
        let e = Experiment::default();
        let points = e.unroll_ablation().expect("ablation");
        assert_eq!(points.len(), 3);
        // Compile work and code size rise with the factor…
        assert!(
            points[2].compile_units > points[0].compile_units,
            "{points:?}"
        );
        assert!(points[2].code_words > points[0].code_words, "{points:?}");
        // …and the kernel gets faster (or at worst no slower).
        assert!(points[2].cycles < points[0].cycles, "{points:?}");
    }

    #[test]
    fn if_conversion_restores_pipelining() {
        let e = Experiment::default();
        let [base, conv] = e.ifconv_ablation().expect("ablation");
        assert_eq!(base.pipelined_loops, 0, "{base:?}");
        assert!(conv.pipelined_loops >= 1, "{conv:?}");
        assert!(conv.cycles < base.cycles, "{base:?} vs {conv:?}");
    }

    #[test]
    fn fig6_under_faults_is_deterministic_and_degrades_gracefully() {
        let e = Experiment::default();
        let a = e
            .fig6_under_faults(FunctionSize::Medium, 8, 42, &[0, 2, 4])
            .expect("run");
        let b = e
            .fig6_under_faults(FunctionSize::Medium, 8, 42, &[0, 2, 4])
            .expect("run");
        assert_eq!(a, b, "same seed ⇒ identical report");
        // k = 0 is exactly the fault-free parallel build.
        assert_eq!(a.points[0].elapsed_s, a.par_elapsed_s);
        assert!(a.points[0].faults.is_quiet());
        // Faults only ever delay the build (detection timeouts, parked
        // transfers, degraded CPUs), never accelerate it.
        for p in &a.points {
            assert!(
                p.elapsed_s >= a.par_elapsed_s - 1e-9,
                "k={}: {} < fault-free {}",
                p.k_faults,
                p.elapsed_s,
                a.par_elapsed_s
            );
        }
        // A different seed strikes differently.
        let c = e
            .fig6_under_faults(FunctionSize::Medium, 8, 43, &[0, 2, 4])
            .expect("run");
        assert_ne!(a.points[2], c.points[2], "different seed, different chaos");
    }

    #[test]
    fn user_program_runs_on_various_processor_counts() {
        let e = Experiment::default();
        let c9 = e.user_program(9).expect("compile");
        let c2 = e.user_program(2).expect("compile");
        assert!(
            c9.speedup > c2.speedup,
            "9p {} vs 2p {}",
            c9.speedup,
            c2.speedup
        );
        assert!(c2.speedup > 1.0);
    }
}
