//! The build farm: real multi-process parallel compilation.
//!
//! [`threads`](crate::threads) reproduces the paper's master/worker
//! hierarchy with OS threads inside one process. This module is the
//! distributed version the paper actually ran: a **coordinator**
//! (the master of §3.2) spawns N `warpd-worker` OS processes and
//! drives them over Unix sockets (TCP behind a flag) with the same
//! 4-byte length-prefixed JSON frames as `warpd` ([`warp_wire`]).
//!
//! The division of labour follows §3.2 exactly:
//!
//! * the coordinator runs phase 1 (parse/sema) itself, plans the
//!   per-function schedule from the a-priori cost estimates
//!   ([`grouped_lpt_estimates`]), dispatches compile jobs in LPT
//!   order, and runs phase 4 (link) once every image is back;
//! * each worker receives the module source once at handshake,
//!   re-runs phase 1 locally (parsing is deterministic, so shipping
//!   the source is cheaper and simpler than serializing a checked
//!   AST), then compiles the `(section, function)` pairs it is told
//!   to.
//!
//! Compiled objects travel **content-addressed**: worker and
//! coordinator share one on-disk [`FnCache`]; a worker stores its
//! [`CachedFunction`] under the job's [`CacheKey`] and replies with
//! the hash only. Warm builds therefore ship *no* object bytes at
//! all. `ship_bytes` (or an unshared cache) falls back to hex-encoded
//! objects in the `done` frame.
//!
//! Faults are first-class, reusing the seeded [`ChaosPlan`] of the
//! threaded driver — except the injected faults are now *real*: the
//! coordinator SIGKILLs worker processes mid-job, workers exit
//! without replying, workers stall past the dispatch timeout. Lost
//! workers trigger [`rebalance_after_loss_estimates`] over the
//! surviving stations; jobs whose retry budget runs out are compiled
//! by the coordinator itself (the in-master sequential fallback).
//! Under every injected fault the final [`ModuleImage`] is
//! bit-identical to a sequential `warpcc` build — the farm chaos
//! suite and the `farm` CI job enforce this.
//!
//! The wire protocol is documented in `docs/FARM.md`; `farm` trace
//! spans follow `docs/TRACING.md`.
//!
//! [`ModuleImage`]: warp_target::program::ModuleImage

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use warp_cache::{CacheKey, CacheValue};
use warp_obs::{Trace, TrackId};
use warp_wire::{
    from_hex, obj, read_message, to_hex, write_message, FrameError, Json, MAX_FRAME_DEFAULT,
};

use crate::driver::{
    compile_function, link_module_parallel_traced, prepare_module_parallel_traced,
    prepare_module_traced, CompileError, CompileOptions, CompileResult,
};
use crate::fncache::{function_key, options_fingerprint, CachedFunction, FnCache};
use crate::scheduler::{grouped_lpt_estimates, rebalance_after_loss_estimates, Assignment};
use crate::threads::{ChaosAction, ChaosPlan, RetryPolicy};

/// Version of the coordinator↔worker handshake. A worker whose
/// `hello` carries a different number is rejected before any source
/// is shipped.
pub const FARM_PROTOCOL_VERSION: u32 = 1;

/// Configuration of one farm build.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Worker processes to spawn.
    pub workers: usize,
    /// Shared on-disk object store. `None` uses a private directory
    /// under the farm's temp dir (still shared with the workers, but
    /// discarded after the build).
    pub cache_dir: Option<PathBuf>,
    /// Worker executable. `None` resolves `$WARPD_WORKER`, then a
    /// `warpd-worker` binary next to the current executable.
    pub worker_cmd: Option<PathBuf>,
    /// Use TCP on 127.0.0.1 instead of a Unix socket.
    pub tcp: bool,
    /// Ship compiled objects as hex bytes in the `done` frame even
    /// though a shared cache exists (measures the content-addressing
    /// win; also what an unshared-filesystem deployment would do).
    pub ship_bytes: bool,
    /// Seeded fault injection — `Panic` becomes a real SIGKILL of the
    /// worker process, `Lose` a silent worker exit, `Stall` a worker
    /// sleeping past the dispatch timeout.
    pub chaos: Option<ChaosPlan>,
    /// Per-job timeout / retry budget, as in the threaded driver.
    pub policy: RetryPolicy,
    /// How long the coordinator waits for spawned workers to connect
    /// and complete their handshake.
    pub handshake_timeout: Duration,
}

impl FarmConfig {
    /// A farm of `workers` processes with default policy and a
    /// private temporary cache.
    pub fn new(workers: usize) -> FarmConfig {
        FarmConfig {
            workers: workers.max(1),
            cache_dir: None,
            worker_cmd: None,
            tcp: false,
            ship_bytes: false,
            chaos: None,
            policy: RetryPolicy::default(),
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

/// Counts of injected faults and the recovery actions they forced.
/// All zero on a healthy build.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FarmFaultStats {
    /// Worker processes SIGKILLed mid-job (chaos `Panic`).
    pub kills: usize,
    /// Workers told to exit without replying (chaos `Lose`).
    pub exits: usize,
    /// Jobs whose worker was told to stall past the timeout.
    pub stalls: usize,
    /// Dispatch timeouts that fired.
    pub timeouts: usize,
    /// Jobs re-dispatched after a timeout or worker loss.
    pub retries: usize,
    /// Times the schedule was repaired after losing a worker.
    pub rebalances: usize,
    /// Jobs the coordinator compiled itself after the retry budget
    /// ran out (or every worker died).
    pub coordinator_fallbacks: usize,
}

impl FarmFaultStats {
    /// `true` when no fault was observed and no recovery was needed.
    pub fn is_quiet(&self) -> bool {
        *self == FarmFaultStats::default()
    }
}

/// What one farm build did: timings, worker census, and how results
/// travelled (cache hash vs raw bytes).
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// End-to-end wall time.
    pub wall: Duration,
    /// Phase 1 (coordinator, before any worker exists).
    pub phase1_wall: Duration,
    /// Dispatch + compile (handshake to last result).
    pub compile_wall: Duration,
    /// Phase 4 link (coordinator, after the farm is drained).
    pub link_wall: Duration,
    /// Worker processes that connected and passed the handshake.
    pub workers_spawned: usize,
    /// Workers lost mid-build (killed, exited, or hung up).
    pub workers_lost: usize,
    /// OS pids of every worker spawned (tests use these to prove no
    /// process outlives the build).
    pub worker_pids: Vec<u32>,
    /// Jobs resolved from the shared cache before dispatch.
    pub cache_hits: usize,
    /// Results that travelled as a content hash (object read from the
    /// shared store).
    pub hash_shipped: usize,
    /// Results that travelled as hex object bytes in the frame.
    pub bytes_shipped: usize,
    /// Fault counters.
    pub faults: FarmFaultStats,
}

// ---------------------------------------------------------------------------
// Transport: one enum over Unix and TCP streams, and the listener.
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum FarmStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl FarmStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            FarmStream::Unix(s) => s.set_read_timeout(d),
            FarmStream::Tcp(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for FarmStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            FarmStream::Unix(s) => s.read(buf),
            FarmStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for FarmStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            FarmStream::Unix(s) => s.write(buf),
            FarmStream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            FarmStream::Unix(s) => s.flush(),
            FarmStream::Tcp(s) => s.flush(),
        }
    }
}

enum FarmListener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl FarmListener {
    /// Binds under `dir` (Unix) or on an ephemeral loopback port
    /// (TCP); returns the listener and the `--connect` address.
    fn bind(tcp: bool, dir: &Path) -> io::Result<(FarmListener, String)> {
        if tcp {
            let l = TcpListener::bind("127.0.0.1:0")?;
            l.set_nonblocking(true)?;
            let addr = format!("tcp:{}", l.local_addr()?);
            Ok((FarmListener::Tcp(l), addr))
        } else {
            let path = dir.join("farm.sock");
            let l = UnixListener::bind(&path)?;
            l.set_nonblocking(true)?;
            let addr = format!("unix:{}", path.display());
            Ok((FarmListener::Unix(l, path), addr))
        }
    }

    /// Polls for one connection until `deadline`; `Ok(None)` on
    /// timeout.
    fn accept_until(&self, deadline: Instant) -> io::Result<Option<FarmStream>> {
        loop {
            let r = match self {
                FarmListener::Unix(l, _) => l.accept().map(|(s, _)| FarmStream::Unix(s)),
                FarmListener::Tcp(l) => l.accept().map(|(s, _)| FarmStream::Tcp(s)),
            };
            match r {
                Ok(s) => return Ok(Some(s)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for FarmListener {
    fn drop(&mut self) {
        if let FarmListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Scratch directory for one farm run (socket + private cache),
/// removed on drop. The name is unique per process *and* per farm so
/// parallel tests in one test binary cannot collide.
struct FarmDir(PathBuf);

impl FarmDir {
    fn create() -> io::Result<FarmDir> {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "warp-farm-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path)?;
        Ok(FarmDir(path))
    }
}

impl Drop for FarmDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn worker_command(cfg: &FarmConfig) -> PathBuf {
    if let Some(p) = &cfg.worker_cmd {
        return p.clone();
    }
    if let Ok(p) = std::env::var("WARPD_WORKER") {
        if !p.is_empty() {
            return PathBuf::from(p);
        }
    }
    // All workspace binaries land in the same target directory; tests
    // run from target/{profile}/deps, one level deeper.
    if let Ok(exe) = std::env::current_exe() {
        let mut dir = exe.parent();
        while let Some(d) = dir {
            let cand = d.join("warpd-worker");
            if cand.is_file() {
                return cand;
            }
            dir = d.parent();
        }
    }
    PathBuf::from("warpd-worker")
}

fn worker_err(msg: impl Into<String>) -> CompileError {
    CompileError::Worker(msg.into())
}

// ---------------------------------------------------------------------------
// Handshake (coordinator side) — generic over the stream so the
// protocol tests can drive it with a socketpair.
// ---------------------------------------------------------------------------

/// Runs the coordinator's half of the handshake on one accepted
/// connection: read `hello`, validate the protocol version and worker
/// index, send `welcome`, read `ready`, validate the function count.
/// Returns the worker index the peer claimed and its pid.
pub(crate) fn serve_handshake(
    stream: &mut (impl Read + Write),
    welcome: &Json,
    n_workers: usize,
    n_functions: usize,
    deadline: Instant,
) -> Result<(usize, u32), String> {
    let keep = || Instant::now() < deadline;
    let hello = read_message(stream, MAX_FRAME_DEFAULT, keep)
        .map_err(|e| format!("hello: {e}"))?
        .map_err(|e| format!("hello: {e}"))?;
    if hello.str_field("kind") != Some("hello") {
        return Err("handshake: first frame is not hello".into());
    }
    let proto = hello.u64_field("protocol").unwrap_or(0);
    if proto != u64::from(FARM_PROTOCOL_VERSION) {
        let reject = obj(vec![
            ("kind", Json::Str("reject".into())),
            (
                "reason",
                Json::Str(format!(
                    "farm protocol {proto} != coordinator {FARM_PROTOCOL_VERSION}"
                )),
            ),
        ]);
        let _ = write_message(stream, &reject);
        return Err(format!(
            "handshake: worker speaks protocol {proto}, coordinator speaks {FARM_PROTOCOL_VERSION}"
        ));
    }
    let worker = hello.u64_field("worker").unwrap_or(u64::MAX) as usize;
    if worker >= n_workers {
        let reject = obj(vec![
            ("kind", Json::Str("reject".into())),
            (
                "reason",
                Json::Str(format!("unknown worker index {worker}")),
            ),
        ]);
        let _ = write_message(stream, &reject);
        return Err(format!("handshake: unknown worker index {worker}"));
    }
    let pid = hello.u64_field("pid").unwrap_or(0) as u32;
    write_message(stream, welcome).map_err(|e| format!("welcome: {e}"))?;
    let ready = read_message(stream, MAX_FRAME_DEFAULT, keep)
        .map_err(|e| format!("ready: {e}"))?
        .map_err(|e| format!("ready: {e}"))?;
    match ready.str_field("kind") {
        Some("ready") => {}
        Some("error") => {
            return Err(format!(
                "worker {worker}: {}",
                ready.str_field("message").unwrap_or("unspecified error")
            ));
        }
        _ => return Err(format!("worker {worker}: expected ready frame")),
    }
    let funcs = ready.u64_field("functions").unwrap_or(u64::MAX) as usize;
    if funcs != n_functions {
        return Err(format!(
            "worker {worker} parsed {funcs} functions, coordinator has {n_functions} \
             (non-deterministic front end?)"
        ));
    }
    Ok((worker, pid))
}

fn encode_welcome(
    source: &str,
    opts: &CompileOptions,
    options_fp: u64,
    cache: &str,
    n_functions: usize,
) -> Json {
    obj(vec![
        ("kind", Json::Str("welcome".into())),
        ("module", Json::Str(source.to_string())),
        (
            "options",
            obj(vec![
                ("inline", Json::Bool(opts.inline.is_some())),
                ("ifconv", Json::Bool(opts.if_convert.is_some())),
                ("absint", Json::Bool(opts.absint)),
                ("verify", Json::Bool(opts.verify_each_pass)),
            ]),
        ),
        ("fingerprint", Json::Str(format!("{options_fp:016x}"))),
        ("cache", Json::Str(cache.to_string())),
        ("functions", Json::Num(n_functions as f64)),
    ])
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// What a connection thread decided to do next.
enum Work {
    Dispatch(usize),
    Exit,
}

struct FarmState {
    /// Per-connection dispatch queues (local job indices).
    queues: Vec<VecDeque<usize>>,
    /// Jobs awaiting re-dispatch (any surviving connection may take
    /// one once its backoff deadline passes).
    retries: Vec<(usize, Instant)>,
    /// Dispatch attempts per local job.
    attempts: Vec<usize>,
    /// `true` once a job has a result *or* was abandoned to the
    /// coordinator fallback; settled jobs are skipped everywhere.
    settled: Vec<bool>,
    /// Results per local job.
    results: Vec<Option<CachedFunction>>,
    /// Unsettled jobs.
    remaining: usize,
    /// First deterministic compile failure — aborts the build.
    first_error: Option<CompileError>,
    /// Current schedule over the local jobs (station k+1 ↔ connection
    /// k).
    assignment: Assignment,
    alive: Vec<bool>,
    alive_count: usize,
    /// Stations lost so far, cumulative, for rebalancing.
    lost_stations: Vec<usize>,
    stats: FarmFaultStats,
    hash_shipped: usize,
    bytes_shipped: usize,
    workers_lost: usize,
    finished: bool,
}

impl FarmState {
    fn settle(&mut self, j: usize) -> bool {
        if self.settled[j] {
            return false;
        }
        self.settled[j] = true;
        self.remaining -= 1;
        true
    }
}

struct Shared<'a> {
    st: Mutex<FarmState>,
    cv: Condvar,
    estimates: &'a [u64],
}

impl Shared<'_> {
    /// Records a finished job. Returns true if this settled it.
    fn record(&self, j: usize, cf: CachedFunction, via_hash: bool) -> bool {
        let mut st = self.st.lock().expect("farm lock");
        if st.results[j].is_none() {
            st.results[j] = Some(cf);
        }
        if via_hash {
            st.hash_shipped += 1;
        } else {
            st.bytes_shipped += 1;
        }
        let settled = st.settle(j);
        if settled {
            self.cv.notify_all();
        }
        settled
    }

    /// A dispatch of `j` timed out: re-queue it (with backoff) or
    /// abandon it to the coordinator fallback.
    fn on_timeout(&self, j: usize, policy: &RetryPolicy) {
        let mut st = self.st.lock().expect("farm lock");
        st.stats.timeouts += 1;
        if st.settled[j] {
            return;
        }
        if st.attempts[j] < policy.max_attempts && st.alive_count > 0 {
            let shift = st.attempts[j].saturating_sub(1).min(16) as u32;
            let not_before = Instant::now() + policy.backoff * (1u32 << shift);
            st.retries.push((j, not_before));
            st.stats.retries += 1;
        } else {
            st.settle(j);
        }
        self.cv.notify_all();
    }

    /// Connection `k` is gone: mark its station lost, re-plan the
    /// displaced jobs onto the survivors, abandon what cannot move.
    fn on_worker_lost(&self, k: usize, current: Option<usize>, policy: &RetryPolicy) {
        let mut st = self.st.lock().expect("farm lock");
        if !st.alive[k] {
            return;
        }
        st.alive[k] = false;
        st.alive_count -= 1;
        st.workers_lost += 1;
        st.lost_stations.push(k + 1);

        let mut displaced: Vec<usize> = st.queues[k].drain(..).collect();
        if let Some(j) = current {
            if !st.settled[j] {
                // The in-flight job already burned this attempt.
                if st.attempts[j] < policy.max_attempts {
                    displaced.push(j);
                    st.stats.retries += 1;
                } else {
                    st.settle(j);
                }
            }
        }
        displaced.retain(|&j| !st.settled[j]);

        if st.alive_count == 0 {
            // Every worker is dead: the coordinator takes everything
            // (threads.rs's "master's own machine" case).
            for q in &mut st.queues {
                q.clear();
            }
            st.retries.clear();
            for j in 0..st.settled.len() {
                if !st.settled[j] {
                    st.settle(j);
                }
            }
        } else {
            if !displaced.is_empty() {
                st.stats.rebalances += 1;
            }
            let rebalanced =
                rebalance_after_loss_estimates(&st.assignment, self.estimates, &st.lost_stations);
            for &j in &displaced {
                match rebalanced.workstation[j] {
                    0 => {
                        st.settle(j);
                    }
                    station => st.queues[station - 1].push_back(j),
                }
            }
            st.assignment = rebalanced;
        }
        self.cv.notify_all();
    }

    fn take_work(&self, k: usize) -> Work {
        let mut st = self.st.lock().expect("farm lock");
        loop {
            if st.finished || st.first_error.is_some() || st.remaining == 0 || !st.alive[k] {
                return Work::Exit;
            }
            let now = Instant::now();
            if let Some(pos) = st
                .retries
                .iter()
                .position(|&(j, t)| t <= now && !st.settled[j])
            {
                let (j, _) = st.retries.remove(pos);
                return Work::Dispatch(j);
            }
            {
                let state = &mut *st;
                let settled = &state.settled;
                state.retries.retain(|&(j, _)| !settled[j]);
            }
            while let Some(j) = st.queues[k].pop_front() {
                if !st.settled[j] {
                    return Work::Dispatch(j);
                }
            }
            // Nothing dispatchable right now: sleep until the nearest
            // retry matures (or a state change wakes us).
            let wait = st
                .retries
                .iter()
                .map(|&(_, t)| t.saturating_duration_since(now))
                .min()
                .unwrap_or(Duration::from_millis(50))
                .min(Duration::from_millis(50))
                .max(Duration::from_millis(1));
            let (guard, _) = self.cv.wait_timeout(st, wait).expect("farm lock");
            st = guard;
        }
    }
}

/// Reaps `child`: polite wait with a short grace period, then kill.
/// Never leaves a zombie behind.
fn reap(child: &mut Child, grace: Duration) {
    let deadline = Instant::now() + grace;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                return;
            }
        }
    }
}

/// Compiles `source` on a farm of worker processes. See the module
/// docs for the architecture. Equivalent to
/// [`compile_farm_traced`] with a disabled trace.
///
/// # Errors
///
/// Any phase error from the underlying compiler, or
/// [`CompileError::Worker`] for farm-level failures (no worker
/// connected, worker executable missing).
pub fn compile_farm(
    source: &str,
    opts: &CompileOptions,
    cfg: &FarmConfig,
) -> Result<(CompileResult, FarmReport), CompileError> {
    compile_farm_traced(source, opts, cfg, &Trace::disabled())
}

/// [`compile_farm`], recording `farm` spans into `trace`.
///
/// # Errors
///
/// See [`compile_farm`].
pub fn compile_farm_traced(
    source: &str,
    opts: &CompileOptions,
    cfg: &FarmConfig,
    trace: &Trace,
) -> Result<(CompileResult, FarmReport), CompileError> {
    let t0 = Instant::now();
    let coord = trace.track("farm coordinator");
    let whole = trace.span("farm", "farm build", coord);

    // Phase 1 on the coordinator, before any worker exists.
    let (checked, phase1_units, warnings) =
        prepare_module_parallel_traced(source, opts, cfg.workers, trace, coord)?;
    let phase1_wall = t0.elapsed();

    // The global job list, in source order (== record order).
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let mut estimates_all: Vec<u64> = Vec::new();
    for (si, section) in checked.module.sections.iter().enumerate() {
        for (fi, f) in section.functions.iter().enumerate() {
            jobs.push((si, fi));
            names.push(f.name.clone());
            estimates_all.push(warp_workload::cost_estimate_of(f, source));
        }
    }
    let n = jobs.len();
    let options_fp = options_fingerprint(opts);

    let dir = FarmDir::create().map_err(|e| worker_err(format!("farm: temp dir: {e}")))?;
    let cache_dir = cfg.cache_dir.clone().unwrap_or_else(|| dir.0.join("cache"));
    let cache = FnCache::with_dir(&cache_dir)
        .map_err(|e| worker_err(format!("farm: cache dir {}: {e}", cache_dir.display())))?;

    // Probe the shared store first: warm jobs never reach a worker.
    let keys: Vec<CacheKey> = (0..n)
        .map(|j| function_key(&checked, source, jobs[j].0, jobs[j].1, options_fp))
        .collect();
    let mut results_all: Vec<Option<CachedFunction>> = vec![None; n];
    let mut cache_hits = 0usize;
    for j in 0..n {
        if let Some(cf) = cache.lookup(keys[j]) {
            results_all[j] = Some(cf);
            cache_hits += 1;
        }
    }

    // Dispatch set: the misses, locally indexed.
    let global_of: Vec<usize> = (0..n).filter(|&j| results_all[j].is_none()).collect();
    let estimates: Vec<u64> = global_of.iter().map(|&j| estimates_all[j]).collect();

    let mut report = FarmReport {
        wall: Duration::ZERO,
        phase1_wall,
        compile_wall: Duration::ZERO,
        link_wall: Duration::ZERO,
        workers_spawned: 0,
        workers_lost: 0,
        worker_pids: Vec::new(),
        cache_hits,
        hash_shipped: 0,
        bytes_shipped: 0,
        faults: FarmFaultStats::default(),
    };

    if !global_of.is_empty() {
        let t_farm = Instant::now();
        run_farm(
            source,
            opts,
            cfg,
            &cache,
            &cache_dir,
            options_fp,
            &jobs,
            &names,
            &keys,
            &global_of,
            &estimates,
            &mut results_all,
            &mut report,
            &dir,
            trace,
            coord,
        )?;
        report.compile_wall = t_farm.elapsed();
    }

    // Coordinator fallback: whatever the farm could not deliver.
    for &j in &global_of {
        if results_all[j].is_none() {
            report.faults.coordinator_fallbacks += 1;
            trace.instant_now("farm", format!("fallback {}", names[j]), coord);
            let (image, record) = compile_function(&checked, source, jobs[j].0, jobs[j].1, opts)?;
            let cf = CachedFunction { image, record };
            cache.store(keys[j], cf.clone());
            results_all[j] = Some(cf);
        }
    }

    let t_link = Instant::now();
    let mut images = Vec::with_capacity(n);
    let mut records = Vec::with_capacity(n);
    for cf in results_all.into_iter().flatten() {
        images.push(cf.image);
        records.push(cf.record);
    }
    let (module_image, link_units) =
        link_module_parallel_traced(&checked, images, opts, cfg.workers, trace, coord)?;
    report.link_wall = t_link.elapsed();
    report.wall = t0.elapsed();
    drop(whole);

    Ok((
        CompileResult {
            module_image,
            records,
            phase1_units,
            link_units,
            warnings,
        },
        report,
    ))
}

/// Spawns the worker processes and drives the dispatch loop. On
/// return every worker process has been reaped and the listener is
/// gone; `results_all` holds whatever the farm delivered.
#[allow(clippy::too_many_arguments)]
fn run_farm(
    source: &str,
    opts: &CompileOptions,
    cfg: &FarmConfig,
    cache: &FnCache,
    cache_dir: &Path,
    options_fp: u64,
    jobs: &[(usize, usize)],
    names: &[String],
    keys: &[CacheKey],
    global_of: &[usize],
    estimates: &[u64],
    results_all: &mut [Option<CachedFunction>],
    report: &mut FarmReport,
    dir: &FarmDir,
    trace: &Trace,
    coord: TrackId,
) -> Result<(), CompileError> {
    let n = jobs.len();
    let m = global_of.len();
    let (listener, addr) =
        FarmListener::bind(cfg.tcp, &dir.0).map_err(|e| worker_err(format!("farm: bind: {e}")))?;

    let cmd = worker_command(cfg);
    let mut children: Vec<Option<Child>> = Vec::new();
    for w in 0..cfg.workers.max(1) {
        let child = Command::new(&cmd)
            .arg("--connect")
            .arg(&addr)
            .arg("--worker")
            .arg(w.to_string())
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn();
        match child {
            Ok(c) => {
                report.worker_pids.push(c.id());
                children.push(Some(c));
            }
            Err(e) => {
                if w == 0 {
                    return Err(worker_err(format!(
                        "farm: cannot spawn worker `{}`: {e}",
                        cmd.display()
                    )));
                }
                children.push(None);
            }
        }
    }
    let spawned = children.iter().flatten().count();

    // Handshake every worker that shows up before the deadline.
    let cache_field = if cfg.ship_bytes {
        String::new()
    } else {
        cache_dir.display().to_string()
    };
    let welcome = encode_welcome(source, opts, options_fp, &cache_field, n);
    let deadline = Instant::now() + cfg.handshake_timeout;
    // (connection stream, worker index) per handshaken connection.
    let mut conns: Vec<(FarmStream, usize)> = Vec::new();
    while conns.len() < spawned && Instant::now() < deadline {
        let Ok(Some(mut stream)) = listener.accept_until(deadline) else {
            break;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        match serve_handshake(&mut stream, &welcome, children.len(), n, deadline) {
            Ok((w, _pid)) => {
                trace.instant_now("farm", format!("worker {w} ready"), coord);
                conns.push((stream, w));
            }
            Err(e) => {
                eprintln!("warp-farm: handshake failed: {e}");
            }
        }
    }
    let n_conn = conns.len();
    report.workers_spawned = n_conn;
    if n_conn == 0 {
        for c in children.iter_mut().flatten() {
            let _ = c.kill();
            let _ = c.wait();
        }
        return Err(worker_err(format!(
            "farm: no workers connected within {:?} (worker cmd `{}`)",
            cfg.handshake_timeout,
            cmd.display()
        )));
    }

    // Seed the per-connection queues from the LPT plan, dispatching
    // heaviest-first within each queue.
    let assignment = grouped_lpt_estimates(estimates, n_conn);
    let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); n_conn];
    for j in crate::threads::lpt_dispatch_order(estimates.iter().copied()) {
        queues[assignment.workstation[j] - 1].push_back(j);
    }

    let shared = Shared {
        st: Mutex::new(FarmState {
            queues,
            retries: Vec::new(),
            attempts: vec![0; m],
            settled: vec![false; m],
            results: vec![None; m],
            remaining: m,
            first_error: None,
            assignment,
            alive: vec![true; n_conn],
            alive_count: n_conn,
            lost_stations: Vec::new(),
            stats: FarmFaultStats::default(),
            hash_shipped: 0,
            bytes_shipped: 0,
            workers_lost: 0,
            finished: false,
        }),
        cv: Condvar::new(),
        estimates,
    };

    let wtracks: Vec<TrackId> = conns
        .iter()
        .map(|(_, w)| trace.track(&format!("farm worker {w}")))
        .collect();

    std::thread::scope(|scope| {
        for (k, (stream, w)) in conns.into_iter().enumerate() {
            let child = children[w].take();
            let shared = &shared;
            let track = wtracks[k];
            scope.spawn(move || {
                connection_loop(
                    k, w, stream, child, shared, cfg, jobs, names, keys, global_of, cache, trace,
                    track,
                );
            });
        }

        // Wait for the farm to drain (or fail), then release the
        // connection threads.
        let mut st = shared.st.lock().expect("farm lock");
        while st.remaining > 0 && st.first_error.is_none() {
            let (guard, _) = shared
                .cv
                .wait_timeout(st, Duration::from_millis(50))
                .expect("farm lock");
            st = guard;
        }
        st.finished = true;
        shared.cv.notify_all();
        drop(st);
    });

    // Reap stragglers the connection threads did not own (workers
    // that spawned but never finished the handshake).
    for c in children.iter_mut().flatten() {
        reap(c, Duration::from_millis(100));
    }
    drop(listener);

    let st = shared.st.into_inner().expect("farm lock");
    if let Some(e) = st.first_error {
        return Err(e);
    }
    for (local, cf) in st.results.into_iter().enumerate() {
        if let Some(cf) = cf {
            results_all[global_of[local]] = Some(cf);
        }
    }
    report.workers_lost = st.workers_lost;
    report.hash_shipped = st.hash_shipped;
    report.bytes_shipped = st.bytes_shipped;
    report.faults = st.stats;
    Ok(())
}

/// One connection thread: pulls jobs for connection `k`, ships them
/// to worker `w`, collects results, and handles that worker's death.
/// Owns (and always reaps) the worker's `Child`.
#[allow(clippy::too_many_arguments)]
fn connection_loop(
    k: usize,
    w: usize,
    mut stream: FarmStream,
    mut child: Option<Child>,
    shared: &Shared<'_>,
    cfg: &FarmConfig,
    jobs: &[(usize, usize)],
    names: &[String],
    keys: &[CacheKey],
    global_of: &[usize],
    cache: &FnCache,
    trace: &Trace,
    track: TrackId,
) {
    let policy = &cfg.policy;
    let inflight_counter = format!("farm in-flight {w}");
    while let Work::Dispatch(j) = shared.take_work(k) {
        let g = global_of[j];
        let (si, fi) = jobs[g];

        // Decide this attempt's fate before sending, so a Panic can
        // kill the process for real while the job is in flight.
        let (attempt, action) = {
            let mut st = shared.st.lock().expect("farm lock");
            let attempt = st.attempts[j];
            st.attempts[j] += 1;
            let action = cfg
                .chaos
                .as_ref()
                .map_or(ChaosAction::None, |p| p.decide(g, attempt));
            match action {
                ChaosAction::Panic => st.stats.kills += 1,
                ChaosAction::Lose => st.stats.exits += 1,
                ChaosAction::Stall => st.stats.stalls += 1,
                ChaosAction::None => {}
            }
            (attempt, action)
        };
        let (chaos, stall_ms) = match action {
            ChaosAction::None | ChaosAction::Panic => ("none", 0u64),
            ChaosAction::Lose => ("exit", 0),
            ChaosAction::Stall => (
                "stall",
                cfg.chaos
                    .as_ref()
                    .map_or(0, |p| p.stall_for.as_millis() as u64),
            ),
        };
        let frame = obj(vec![
            ("kind", Json::Str("job".into())),
            ("job", Json::Num(j as f64)),
            ("section", Json::Num(si as f64)),
            ("function", Json::Num(fi as f64)),
            ("attempt", Json::Num(attempt as f64)),
            ("key", Json::Str(keys[g].hex())),
            ("chaos", Json::Str(chaos.into())),
            ("stall_ms", Json::Num(stall_ms as f64)),
        ]);
        let ts0 = trace.now_ns();
        trace.counter(&inflight_counter, track, ts0, 1.0);
        if write_message(&mut stream, &frame).is_err() {
            trace.instant_now("farm", format!("worker {w} lost (write)"), track);
            shared.on_worker_lost(k, Some(j), policy);
            break;
        }
        if action == ChaosAction::Panic {
            // The injected fault is a *real* SIGKILL mid-job.
            if let Some(c) = child.as_mut() {
                trace.instant_now("fault", format!("kill worker {w}"), track);
                let _ = c.kill();
            }
        }

        // Collect until our job resolves, the deadline passes, or the
        // worker dies. Late results for *other* jobs (an earlier
        // stall's reply) are recorded as they appear.
        let deadline = Instant::now() + policy.job_timeout;
        let mut lost = false;
        loop {
            let keep = || Instant::now() < deadline;
            match read_message(&mut stream, MAX_FRAME_DEFAULT, keep) {
                Ok(Ok(msg)) => match msg.str_field("kind") {
                    Some("done") => {
                        let jid = msg.u64_field("job").unwrap_or(u64::MAX) as usize;
                        if jid >= global_of.len() {
                            lost = true;
                            break;
                        }
                        let cf = if msg.bool_field("stored").unwrap_or(false) {
                            cache.lookup(keys[global_of[jid]])
                        } else {
                            msg.str_field("image_hex")
                                .and_then(|h| from_hex(h).ok())
                                .and_then(|b| CachedFunction::from_bytes(&b))
                                .inspect(|cf| cache.store(keys[global_of[jid]], cf.clone()))
                        };
                        let Some(cf) = cf else {
                            // Protocol violation (hash announced but
                            // object unreadable): drop the worker.
                            lost = true;
                            break;
                        };
                        let via_hash = msg.bool_field("stored").unwrap_or(false);
                        shared.record(jid, cf, via_hash);
                        if jid == j {
                            trace.record_span(
                                "farm",
                                names[global_of[j]].clone(),
                                track,
                                ts0,
                                trace.now_ns().saturating_sub(ts0),
                                vec![("attempt", attempt as f64)],
                            );
                            break;
                        }
                    }
                    Some("fail") => {
                        let msg = msg
                            .str_field("message")
                            .unwrap_or("unspecified worker failure")
                            .to_string();
                        let mut st = shared.st.lock().expect("farm lock");
                        if st.first_error.is_none() {
                            st.first_error = Some(worker_err(format!("worker {w}: {msg}")));
                        }
                        shared.cv.notify_all();
                        drop(st);
                        lost = true;
                        break;
                    }
                    _ => {}
                },
                Ok(Err(_)) => {
                    lost = true;
                    break;
                }
                Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::ConnectionAborted => {
                    // The deadline fired, not the transport.
                    trace.instant_now("retry", format!("timeout {}", names[g]), track);
                    shared.on_timeout(j, policy);
                    break;
                }
                Err(_) => {
                    lost = true;
                    break;
                }
            }
        }
        trace.counter(&inflight_counter, track, trace.now_ns(), 0.0);
        if lost {
            trace.instant_now("fault", format!("worker {w} lost"), track);
            if let Some(c) = child.as_mut() {
                let _ = c.kill();
            }
            shared.on_worker_lost(k, Some(j), policy);
            break;
        }
    }

    // Orderly goodbye (ignored if the worker is already gone), then
    // reap the process — never leave a zombie or a stray worker.
    let _ = write_message(&mut stream, &obj(vec![("kind", Json::Str("bye".into()))]));
    drop(stream);
    if let Some(mut c) = child {
        reap(&mut c, Duration::from_secs(2));
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

fn connect(addr: &str) -> Result<FarmStream, String> {
    if let Some(path) = addr.strip_prefix("unix:") {
        UnixStream::connect(path)
            .map(FarmStream::Unix)
            .map_err(|e| format!("connect {path}: {e}"))
    } else if let Some(tcp) = addr.strip_prefix("tcp:") {
        TcpStream::connect(tcp)
            .map(FarmStream::Tcp)
            .map_err(|e| format!("connect {tcp}: {e}"))
    } else {
        Err(format!(
            "bad --connect address `{addr}` (want unix:… or tcp:…)"
        ))
    }
}

fn decode_options(welcome: &Json) -> CompileOptions {
    let o = welcome.get("options");
    let flag = |k: &str| o.and_then(|o| o.bool_field(k)).unwrap_or(false);
    CompileOptions {
        inline: flag("inline").then(warp_ir::InlinePolicy::default),
        if_convert: flag("ifconv").then(warp_ir::IfConvPolicy::default),
        absint: flag("absint"),
        verify_each_pass: flag("verify"),
        ..CompileOptions::default()
    }
}

/// The `warpd-worker` main loop: connect to the coordinator,
/// handshake, compile jobs until `bye` (or the socket closes).
/// Returns the process exit code. Public so the thin `warpd-worker`
/// binary (and the farm tests) can call it.
pub fn run_worker(addr: &str, worker: usize) -> i32 {
    match worker_loop(addr, worker) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("warpd-worker[{worker}]: {e}");
            1
        }
    }
}

fn worker_loop(addr: &str, worker: usize) -> Result<i32, String> {
    let mut stream = connect(addr)?;
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| format!("set timeout: {e}"))?;

    let hello = obj(vec![
        ("kind", Json::Str("hello".into())),
        ("protocol", Json::Num(f64::from(FARM_PROTOCOL_VERSION))),
        ("worker", Json::Num(worker as f64)),
        ("pid", Json::Num(f64::from(std::process::id()))),
    ]);
    write_message(&mut stream, &hello).map_err(|e| format!("hello: {e}"))?;

    let welcome = match read_message(&mut stream, MAX_FRAME_DEFAULT, || true) {
        Ok(Ok(msg)) => msg,
        Ok(Err(e)) => return Err(format!("welcome: {e}")),
        Err(e) => return Err(format!("welcome: {e}")),
    };
    match welcome.str_field("kind") {
        Some("welcome") => {}
        Some("reject") => {
            eprintln!(
                "warpd-worker[{worker}]: rejected: {}",
                welcome.str_field("reason").unwrap_or("unspecified")
            );
            return Ok(2);
        }
        _ => return Err("expected welcome frame".into()),
    }

    let source = welcome
        .str_field("module")
        .ok_or("welcome carries no module source")?
        .to_string();
    let opts = decode_options(&welcome);
    let options_fp = options_fingerprint(&opts);
    // The wire carries only the four boolean options warpcc exposes;
    // the fingerprint proves nothing was lost in translation (an
    // unroll policy, a custom cell config) before we compile anything.
    let coord_fp = welcome.str_field("fingerprint").unwrap_or("");
    if format!("{options_fp:016x}") != coord_fp {
        let err = obj(vec![
            ("kind", Json::Str("error".into())),
            (
                "message",
                Json::Str(format!(
                    "options fingerprint mismatch: coordinator {coord_fp}, worker {options_fp:016x} \
                     (an option the farm wire cannot express?)"
                )),
            ),
        ]);
        let _ = write_message(&mut stream, &err);
        return Ok(2);
    }

    let trace = Trace::disabled();
    let track = trace.track("worker");
    let (checked, _units, _warnings) =
        prepare_module_traced(&source, &opts, &trace, track).map_err(|e| format!("phase1: {e}"))?;
    let n: usize = checked
        .module
        .sections
        .iter()
        .map(|s| s.functions.len())
        .sum();
    let expected = welcome.u64_field("functions").unwrap_or(0) as usize;
    if n != expected {
        let err = obj(vec![
            ("kind", Json::Str("error".into())),
            (
                "message",
                Json::Str(format!(
                    "parsed {n} functions, coordinator announced {expected}"
                )),
            ),
        ]);
        let _ = write_message(&mut stream, &err);
        return Ok(2);
    }

    let cache_path = welcome.str_field("cache").unwrap_or("");
    let cache: Option<FnCache> = if cache_path.is_empty() {
        None
    } else {
        FnCache::with_dir(cache_path).ok()
    };

    let ready = obj(vec![
        ("kind", Json::Str("ready".into())),
        ("worker", Json::Num(worker as f64)),
        ("functions", Json::Num(n as f64)),
    ]);
    write_message(&mut stream, &ready).map_err(|e| format!("ready: {e}"))?;

    loop {
        let msg = match read_message(&mut stream, MAX_FRAME_DEFAULT, || true) {
            Ok(Ok(msg)) => msg,
            Ok(Err(e)) => return Err(format!("bad frame: {e}")),
            Err(FrameError::Closed) => return Ok(0),
            Err(e) => return Err(format!("read: {e}")),
        };
        match msg.str_field("kind") {
            Some("bye") => return Ok(0),
            Some("job") => {
                match msg.str_field("chaos") {
                    // Injected fault: die *silently*, mid-protocol —
                    // the coordinator sees a clean EOF with a job in
                    // flight, exactly a lost workstation.
                    Some("exit") => return Ok(3),
                    Some("stall") => {
                        let ms = msg.u64_field("stall_ms").unwrap_or(0);
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    _ => {}
                }
                let job = msg.u64_field("job").unwrap_or(0);
                let si = msg.u64_field("section").unwrap_or(0) as usize;
                let fi = msg.u64_field("function").unwrap_or(0) as usize;
                let sections = &checked.module.sections;
                if si >= sections.len() || fi >= sections[si].functions.len() {
                    let err = obj(vec![
                        ("kind", Json::Str("fail".into())),
                        ("job", Json::Num(job as f64)),
                        ("message", Json::Str(format!("no function ({si},{fi})"))),
                    ]);
                    if write_message(&mut stream, &err).is_err() {
                        return Ok(0); // coordinator hung up
                    }
                    continue;
                }
                let key = function_key(&checked, &source, si, fi, options_fp);
                if msg.str_field("key") != Some(key.hex().as_str()) {
                    let err = obj(vec![
                        ("kind", Json::Str("fail".into())),
                        ("job", Json::Num(job as f64)),
                        (
                            "message",
                            Json::Str(format!(
                                "cache key mismatch on ({si},{fi}): coordinator {}, worker {}",
                                msg.str_field("key").unwrap_or("?"),
                                key.hex()
                            )),
                        ),
                    ]);
                    if write_message(&mut stream, &err).is_err() {
                        return Ok(0); // coordinator hung up
                    }
                    continue;
                }

                // Another worker may have landed this object already
                // (a retried job): a store hit costs one lookup and
                // ships a hash instead of a compile.
                let cached = cache.as_ref().and_then(|c| c.lookup(key));
                let cf = match cached {
                    Some(cf) => cf,
                    None => match crate::driver::compile_function_traced(
                        &checked, &source, si, fi, &opts, &trace, track,
                    ) {
                        Ok((image, record)) => CachedFunction { image, record },
                        Err(e) => {
                            let err = obj(vec![
                                ("kind", Json::Str("fail".into())),
                                ("job", Json::Num(job as f64)),
                                ("message", Json::Str(e.to_string())),
                            ]);
                            if write_message(&mut stream, &err).is_err() {
                                return Ok(0); // coordinator hung up
                            }
                            continue;
                        }
                    },
                };

                let reply = match &cache {
                    Some(c) => {
                        c.store(key, cf);
                        obj(vec![
                            ("kind", Json::Str("done".into())),
                            ("job", Json::Num(job as f64)),
                            ("key", Json::Str(key.hex())),
                            ("stored", Json::Bool(true)),
                        ])
                    }
                    None => obj(vec![
                        ("kind", Json::Str("done".into())),
                        ("job", Json::Num(job as f64)),
                        ("key", Json::Str(key.hex())),
                        ("stored", Json::Bool(false)),
                        ("image_hex", Json::Str(to_hex(&cf.to_bytes()))),
                    ]),
                };
                if write_message(&mut stream, &reply).is_err() {
                    return Ok(0); // coordinator hung up mid-reply
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::net::UnixStream;

    fn welcome_for_test() -> Json {
        encode_welcome(
            "module m;\nend;\n",
            &CompileOptions::default(),
            0xabcd,
            "",
            3,
        )
    }

    #[test]
    fn handshake_rejects_version_mismatch() {
        let (mut coord_side, mut worker_side) = UnixStream::pair().unwrap();
        coord_side
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let peer = std::thread::spawn(move || {
            let hello = obj(vec![
                ("kind", Json::Str("hello".into())),
                ("protocol", Json::Num(99.0)),
                ("worker", Json::Num(0.0)),
                ("pid", Json::Num(1.0)),
            ]);
            write_message(&mut worker_side, &hello).unwrap();
            // The coordinator must answer with a reject frame.
            let reply = read_message(&mut worker_side, MAX_FRAME_DEFAULT, || true)
                .unwrap()
                .unwrap();
            assert_eq!(reply.str_field("kind"), Some("reject"));
            assert!(reply.str_field("reason").unwrap().contains("protocol 99"));
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        let err = serve_handshake(&mut coord_side, &welcome_for_test(), 4, 3, deadline)
            .expect_err("version 99 must be rejected");
        assert!(err.contains("protocol 99"), "{err}");
        peer.join().unwrap();
    }

    #[test]
    fn handshake_rejects_oversized_hello_frame() {
        let (mut coord_side, mut worker_side) = UnixStream::pair().unwrap();
        coord_side
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        // A length prefix claiming ~1 GiB: the coordinator must fail
        // the handshake without trying to allocate or read it.
        worker_side
            .write_all(&(1_000_000_000u32).to_le_bytes())
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let err = serve_handshake(&mut coord_side, &welcome_for_test(), 4, 3, deadline)
            .expect_err("an oversized hello must fail the handshake");
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn handshake_rejects_unknown_worker_index() {
        let (mut coord_side, mut worker_side) = UnixStream::pair().unwrap();
        coord_side
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let peer = std::thread::spawn(move || {
            let hello = obj(vec![
                ("kind", Json::Str("hello".into())),
                ("protocol", Json::Num(f64::from(FARM_PROTOCOL_VERSION))),
                ("worker", Json::Num(7.0)),
                ("pid", Json::Num(1.0)),
            ]);
            write_message(&mut worker_side, &hello).unwrap();
            let reply = read_message(&mut worker_side, MAX_FRAME_DEFAULT, || true)
                .unwrap()
                .unwrap();
            assert_eq!(reply.str_field("kind"), Some("reject"));
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        let err = serve_handshake(&mut coord_side, &welcome_for_test(), 4, 3, deadline)
            .expect_err("worker index 7 of 4 must be rejected");
        assert!(err.contains("unknown worker index 7"), "{err}");
        peer.join().unwrap();
    }

    #[test]
    fn welcome_round_trips_options() {
        let opts = CompileOptions {
            inline: Some(warp_ir::InlinePolicy::default()),
            absint: true,
            ..CompileOptions::default()
        };
        let fp = options_fingerprint(&opts);
        let w = encode_welcome("src", &opts, fp, "/tmp/cache", 5);
        let decoded = decode_options(&w);
        assert_eq!(options_fingerprint(&decoded), fp);
        assert_eq!(w.str_field("fingerprint").unwrap(), format!("{fp:016x}"));
        assert_eq!(w.u64_field("functions"), Some(5));
    }

    #[test]
    fn connect_rejects_malformed_address() {
        let err = connect("carrier-pigeon:coop").unwrap_err();
        assert!(err.contains("bad --connect"), "{err}");
    }
}
