//! `warp_fuzz` — command-line driver for the differential fuzzing
//! harness ([`parcc::fuzz`]).
//!
//! Environment knobs (all optional; defaults give the bounded CI run):
//!
//! * `WARP_FUZZ_SEED` — master seed (default 1);
//! * `WARP_FUZZ_ITERS` — number of programs (default 200; the nightly
//!   depth knob);
//! * `WARP_FUZZ_LANES` — batch lanes per program (default 8);
//! * `WARP_FUZZ_ARTIFACTS` — directory for disagreement reproducers
//!   (default `fuzz-artifacts`).
//!
//! Exits nonzero iff any program produced an engine disagreement; each
//! disagreement is written as a shrunk fixture file that can be moved
//! under `tests/fixtures/fuzz/` once the bug is fixed.

use parcc::fuzz::{run, write_fixture, FuzzConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let cfg = FuzzConfig {
        seed: env_u64("WARP_FUZZ_SEED", 1),
        programs: env_u64("WARP_FUZZ_ITERS", 200) as usize,
        lanes: env_u64("WARP_FUZZ_LANES", 8) as usize,
        ..FuzzConfig::default()
    };
    let artifacts = PathBuf::from(
        std::env::var("WARP_FUZZ_ARTIFACTS").unwrap_or_else(|_| "fuzz-artifacts".into()),
    );

    println!(
        "warp-fuzz: seed={} programs={} lanes={} max_cycles={}",
        cfg.seed, cfg.programs, cfg.lanes, cfg.max_cycles
    );
    let report = run(&cfg);
    println!(
        "warp-fuzz: {} programs, {} lanes, {} trapped lanes, {} disagreements",
        report.programs,
        report.lanes,
        report.trapped_lanes,
        report.disagreements.len()
    );
    println!(
        "warp-fuzz: absint oracle: {} functions, {} claims, {} eval runs, {} rewrites",
        report.facts.functions, report.facts.claims, report.facts.eval_runs, report.facts.rewrites
    );

    if report.disagreements.is_empty() {
        return ExitCode::SUCCESS;
    }
    if let Err(e) = std::fs::create_dir_all(&artifacts) {
        eprintln!("warp-fuzz: cannot create {}: {e}", artifacts.display());
        return ExitCode::FAILURE;
    }
    for d in &report.disagreements {
        let path = artifacts.join(format!("disagree_{:016x}.w2", d.program_seed));
        eprintln!(
            "warp-fuzz: DISAGREEMENT (seed {:#x}): {}",
            d.program_seed, d.detail
        );
        let meta = [
            ("seed", format!("{}", d.program_seed)),
            ("lanes", format!("{}", cfg.lanes)),
            ("max_cycles", format!("{}", cfg.max_cycles)),
            ("disagreement", d.detail.clone()),
        ];
        match write_fixture(&path, &d.source, &meta) {
            Ok(()) => eprintln!("warp-fuzz: reproducer written to {}", path.display()),
            Err(e) => eprintln!("warp-fuzz: failed to write {}: {e}", path.display()),
        }
    }
    ExitCode::FAILURE
}
