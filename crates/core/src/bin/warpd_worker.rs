//! `warpd-worker` — one build-farm worker process.
//!
//! Spawned by the farm coordinator ([`parcc::farm`]); never run by
//! hand. Connects back to the coordinator, handshakes, compiles the
//! `(section, function)` jobs it is sent, and exits when told to.

fn usage() -> ! {
    eprintln!("usage: warpd-worker --connect <unix:PATH|tcp:ADDR> --worker <N>");
    std::process::exit(64);
}

fn main() {
    let mut connect: Option<String> = None;
    let mut worker: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => connect = args.next(),
            "--worker" => worker = args.next().and_then(|s| s.parse().ok()),
            _ => usage(),
        }
    }
    let (Some(connect), Some(worker)) = (connect, worker) else {
        usage();
    };
    std::process::exit(parcc::farm::run_worker(&connect, worker));
}
