//! `warpcc` — the Warp compiler driver, command-line edition.
//!
//! ```text
//! warpcc [OPTIONS] <FILE | ->
//!
//!   --emit ast|ir|vcode|asm|summary|facts  what to print
//!                               (default: summary)
//!   -o FILE                     write the binary download module
//!   --inline                    enable the §5.1 inlining extension
//!   --ifconv                    if-convert branchy loop bodies
//!   --absint                    run the abstract-interpretation
//!                               value/poison analysis per function,
//!                               apply its fact-driven rewrites, and
//!                               report proven facts (--emit facts
//!                               prints the full per-function report
//!                               and implies this flag)
//!   --jobs N, -j N              compile with N parallel jobs; 0 means
//!                               the machine's available parallelism
//!   --workers N                 alias for --jobs (the historical
//!                               spelling)
//!   --farm N                    compile on a build farm of N real
//!                               `warpd-worker` OS processes over
//!                               sockets (0 = available parallelism);
//!                               combines with --cache-dir (shared
//!                               object store), --fault-seed (real
//!                               process kills), --trace and --time
//!   --fault-seed N              inject seeded worker faults (panics,
//!                               lost results, stalls) into the thread
//!                               pool — or real process kills/exits/
//!                               stalls with --farm — and recover from
//!                               them; implies the default chaos mix
//!                               (needs --workers or --farm)
//!   --fault-spec SPEC           tune the injection: comma-separated
//!                               crash=P,lose=P,stall=P,timeout_ms=N,
//!                               attempts=N (needs --fault-seed)
//!   --run FUNC [ARGS...]        execute FUNC on a simulated cell
//!                               (args are floats; use iN for ints)
//!   --verify                    run the static verifiers at every
//!                               pass boundary and over the final image
//!   --lint                      print W2 source lints and exit
//!   --time                      print per-phase wall-clock times
//!   --trace FILE                write a Chrome trace_event JSON file
//!                               (load in Perfetto / chrome://tracing)
//!                               and print a span summary to stderr
//!   --cache-dir DIR             reuse compiled functions across runs:
//!                               content-addressed objects under DIR
//!   --cache-stats               print hit/miss/store counters to
//!                               stderr after compiling
//! ```
//!
//! Examples:
//!
//! ```text
//! warpcc program.w2
//! warpcc --emit asm program.w2
//! warpcc --verify program.w2
//! warpcc --lint program.w2
//! warpcc --jobs 8 --time program.w2
//! warpcc --jobs 0 program.w2        # all available cores
//! warpcc --jobs 8 --fault-seed 7 program.w2
//! warpcc --farm 4 program.w2
//! warpcc --farm 4 --cache-dir .warpcc-cache program.w2
//! warpcc --farm 4 --fault-seed 7 program.w2
//! warpcc --jobs 8 --fault-seed 7 --fault-spec crash=0.5,attempts=4 program.w2
//! warpcc --trace trace.json program.w2
//! warpcc --cache-dir .warpcc-cache --cache-stats program.w2
//! warpcc --run dot8 2.0 i4 program.w2
//! ```

use parcc::threads::{
    compile_parallel_cached_traced, compile_parallel_chaos_traced, compile_parallel_traced,
    ChaosPlan, RetryPolicy,
};
use parcc::{
    compile_module_cached_traced, compile_module_traced, CompileOptions, CompileResult, FnCache,
};
use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;
use warp_obs::{ClockDomain, Trace};
use warp_target::interp::{Cell, Value};
use warp_target::isa::Reg;

struct Args {
    emit: String,
    inline: bool,
    ifconv: bool,
    absint: bool,
    verify: bool,
    lint: bool,
    workers: Option<usize>,
    farm: Option<usize>,
    fault_seed: Option<u64>,
    fault_spec: Option<String>,
    run: Option<(String, Vec<Value>)>,
    time: bool,
    trace: Option<String>,
    cache_dir: Option<String>,
    cache_stats: bool,
    input: Option<String>,
    output: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        emit: "summary".to_string(),
        inline: false,
        ifconv: false,
        absint: false,
        verify: false,
        lint: false,
        workers: None,
        farm: None,
        fault_seed: None,
        fault_spec: None,
        run: None,
        time: false,
        trace: None,
        cache_dir: None,
        cache_stats: false,
        input: None,
        output: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit" => {
                args.emit = it.next().ok_or("--emit needs a value")?;
                if !["ast", "ir", "vcode", "asm", "summary", "facts"].contains(&args.emit.as_str())
                {
                    return Err(format!("unknown emit kind `{}`", args.emit));
                }
            }
            "--inline" => args.inline = true,
            "--ifconv" => args.ifconv = true,
            "--absint" => args.absint = true,
            "--verify" => args.verify = true,
            "--lint" => args.lint = true,
            "-o" => args.output = Some(it.next().ok_or("-o needs a path")?),
            "--trace" => args.trace = Some(it.next().ok_or("--trace needs a path")?),
            "--cache-dir" => args.cache_dir = Some(it.next().ok_or("--cache-dir needs a path")?),
            "--cache-stats" => args.cache_stats = true,
            "--time" => args.time = true,
            "--jobs" | "-j" | "--workers" => {
                let n = it.next().ok_or(format!("{a} needs a number"))?;
                let raw: usize = n.parse().map_err(|_| format!("bad job count `{n}`"))?;
                // 0 = "use the machine": resolve through the shared
                // default instead of a hardcoded count.
                args.workers = Some(parcc::resolve_jobs(raw));
            }
            "--farm" => {
                let n = it.next().ok_or("--farm needs a number")?;
                let raw: usize = n.parse().map_err(|_| format!("bad worker count `{n}`"))?;
                args.farm = Some(parcc::resolve_jobs(raw));
            }
            "--fault-seed" => {
                let n = it.next().ok_or("--fault-seed needs a number")?;
                args.fault_seed = Some(n.parse().map_err(|_| format!("bad fault seed `{n}`"))?);
            }
            "--fault-spec" => {
                args.fault_spec = Some(it.next().ok_or("--fault-spec needs a value")?);
            }
            "--run" => {
                let func = it.next().ok_or("--run needs a function name")?;
                let mut vals = Vec::new();
                while let Some(next) = it.peek() {
                    if next.starts_with("--") || !looks_like_value(next) {
                        break;
                    }
                    let v = it.next().unwrap();
                    vals.push(parse_value(&v)?);
                }
                args.run = Some((func, vals));
            }
            "--help" | "-h" => {
                println!(
                    "usage: warpcc [--emit ast|ir|vcode|asm|summary|facts] [--inline] [--ifconv] \
                     [--absint] [--verify] [--lint] [--jobs N] [--farm N] [--fault-seed N] \
                     [--fault-spec SPEC] [--run FUNC ARGS...] [--time] \
                     [--trace FILE] [--cache-dir DIR] [--cache-stats] [-o FILE] <FILE | ->"
                );
                std::process::exit(0);
            }
            other if args.input.is_none() => args.input = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(args)
}

/// Parses a `--fault-spec` string (`crash=0.5,lose=0.1,stall=0.2,
/// timeout_ms=500,attempts=4`) on top of the seed's default chaos mix.
fn parse_fault_spec(
    spec: &str,
    mut chaos: ChaosPlan,
    mut policy: RetryPolicy,
) -> Result<(ChaosPlan, RetryPolicy), String> {
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or(format!("bad fault-spec entry `{part}` (want key=value)"))?;
        let prob = |v: &str| -> Result<f64, String> {
            let p: f64 = v
                .parse()
                .map_err(|_| format!("bad probability `{v}` in fault-spec"))?;
            if (0.0..=1.0).contains(&p) {
                Ok(p)
            } else {
                Err(format!("probability `{v}` outside [0, 1]"))
            }
        };
        match key {
            "crash" => chaos.crash_prob = prob(value)?,
            "lose" => chaos.lose_prob = prob(value)?,
            "stall" => chaos.stall_prob = prob(value)?,
            "timeout_ms" => {
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("bad timeout_ms `{value}`"))?;
                policy.job_timeout = Duration::from_millis(ms);
            }
            "attempts" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("bad attempts `{value}`"))?;
                policy.max_attempts = n.max(1);
            }
            other => {
                return Err(format!(
                    "unknown fault-spec key `{other}` (crash/lose/stall/timeout_ms/attempts)"
                ))
            }
        }
    }
    Ok((chaos, policy))
}

fn looks_like_value(s: &str) -> bool {
    s.parse::<f32>().is_ok() || (s.starts_with('i') && s[1..].parse::<i32>().is_ok())
}

fn parse_value(s: &str) -> Result<Value, String> {
    if let Some(rest) = s.strip_prefix('i') {
        if let Ok(v) = rest.parse::<i32>() {
            return Ok(Value::I(v));
        }
    }
    s.parse::<f32>()
        .map(Value::F)
        .map_err(|_| format!("bad argument `{s}` (float or iN)"))
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
    }
}

fn summary(result: &CompileResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "module `{}`: {} section(s), {} function(s), {} download words, {} warning(s)",
        result.module_image.name,
        result.module_image.section_images.len(),
        result.records.len(),
        result.module_image.download_words(),
        result.warnings
    );
    // Absint columns only appear on --absint builds, so the default
    // summary layout (and everything that parses it) is unchanged.
    let absint = result.records.iter().any(|r| r.facts.is_some());
    if absint {
        let _ = writeln!(
            out,
            "{:>18} {:>6} {:>6} {:>7} {:>10} {:>9} {:>7} {:>9} {:>7} {:>7}",
            "function",
            "lines",
            "depth",
            "words",
            "units",
            "pipelined",
            "spills",
            "absint-it",
            "pruned",
            "elided"
        );
    } else {
        let _ = writeln!(
            out,
            "{:>18} {:>6} {:>6} {:>7} {:>10} {:>9} {:>7}",
            "function", "lines", "depth", "words", "units", "pipelined", "spills"
        );
    }
    for r in &result.records {
        let _ = write!(
            out,
            "{:>18} {:>6} {:>6} {:>7} {:>10} {:>9} {:>7}",
            r.name,
            r.lines,
            r.loop_depth,
            r.p3.words,
            r.compile_units(),
            r.p3.pipelined_loops,
            r.p3.spills
        );
        if absint {
            let _ = write!(
                out,
                " {:>9} {:>7} {:>7}",
                r.p2.absint_iterations, r.p2.branches_pruned, r.p2.trap_checks_elided
            );
        }
        let _ = writeln!(out);
    }
    out
}

fn real_main() -> Result<(), String> {
    let args = parse_args()?;
    let path = args
        .input
        .as_deref()
        .ok_or("no input file (use - for stdin)")?;
    let source = read_input(path)?;

    let mut opts = CompileOptions::default();
    if args.inline {
        opts.inline = Some(warp_ir::InlinePolicy::default());
    }
    if args.ifconv {
        opts.if_convert = Some(warp_ir::IfConvPolicy::default());
    }
    if args.absint || args.emit == "facts" {
        opts.absint = true;
    }
    if args.verify {
        opts.verify_each_pass = true;
    }

    // Lint mode: parse + check, then print the W2 lints and stop.
    if args.lint {
        let (checked, mut warnings) =
            warp_lang::phase1_with_warnings(&source).map_err(|e| e.to_string())?;
        warnings.merge_sorted(warp_lang::lint_module(&checked.module));
        if warnings.is_empty() {
            eprintln!("lint: no warnings");
        } else {
            print!("{}", warnings.render_all_with_source(&source));
            eprintln!("lint: {} warning(s)", warnings.warning_count());
        }
        return Ok(());
    }

    // Pre-compile emit modes that don't need the full pipeline.
    if args.emit == "ast" {
        let checked = warp_lang::phase1(&source).map_err(|e| e.to_string())?;
        print!("{}", warp_lang::pretty::module_to_source(&checked.module));
        return Ok(());
    }
    if args.emit == "ir" {
        let (checked, _, _) =
            parcc::driver::prepare_module(&source, &opts).map_err(|e| e.to_string())?;
        for (_, ir) in warp_ir::lower_module(&checked).map_err(|e| e.to_string())? {
            let mut ir = ir;
            warp_ir::optimize(&mut ir, 10);
            print!("{}", ir.dump());
        }
        return Ok(());
    }
    if args.emit == "vcode" {
        let (checked, _, _) =
            parcc::driver::prepare_module(&source, &opts).map_err(|e| e.to_string())?;
        for si in 0..checked.module.sections.len() {
            for fi in 0..checked.module.sections[si].functions.len() {
                let func = &checked.module.sections[si].functions[fi];
                let symbols = &checked.sections[si].symbol_tables[fi];
                let signatures = &checked.sections[si].signatures;
                let p2 = warp_ir::phase2_verified(
                    func,
                    symbols,
                    signatures,
                    opts.unroll.as_ref(),
                    opts.if_convert.as_ref(),
                    opts.absint,
                    opts.verify_each_pass,
                )
                .map_err(|e| e.to_string())?;
                let vf = warp_codegen::select(&p2.ir, &p2.loops.pipelinable_blocks());
                print!("{}", vf.dump());
            }
        }
        return Ok(());
    }

    let trace = match &args.trace {
        Some(_) => Trace::new(ClockDomain::Monotonic),
        None => Trace::disabled(),
    };
    if args.farm.is_some() && args.workers.is_some() {
        return Err("--farm does not combine with --jobs (pick one executor)".to_string());
    }
    // A --cache-dir persists compiled functions across runs;
    // --cache-stats alone still counts hits and misses in memory.
    // The farm opens the shared store itself (it is the transport),
    // so farm mode skips the in-process handle.
    let cache = match &args.cache_dir {
        _ if args.farm.is_some() => None,
        Some(dir) => {
            Some(FnCache::with_dir(dir).map_err(|e| format!("opening cache dir {dir}: {e}"))?)
        }
        None if args.cache_stats => Some(FnCache::in_memory()),
        None => None,
    };
    // Fault injection exists in the threaded executor and the farm.
    let faults = match (args.fault_seed, &args.fault_spec) {
        (Some(seed), spec) => {
            if args.workers.is_none() && args.farm.is_none() {
                return Err("--fault-seed needs --jobs or --farm".to_string());
            }
            if cache.is_some() {
                return Err(
                    "--fault-seed does not combine with --cache-dir/--cache-stats".to_string(),
                );
            }
            let chaos = ChaosPlan::from_seed(seed);
            let policy = RetryPolicy::default();
            Some(match spec {
                Some(s) => parse_fault_spec(s, chaos, policy)?,
                None => (chaos, policy),
            })
        }
        (None, Some(_)) => return Err("--fault-spec needs --fault-seed".to_string()),
        (None, None) => None,
    };
    let t0 = std::time::Instant::now();
    let result = if let Some(w) = args.farm {
        let mut cfg = parcc::FarmConfig::new(w);
        cfg.cache_dir = args.cache_dir.as_ref().map(std::path::PathBuf::from);
        if let Some((chaos, policy)) = &faults {
            cfg.chaos = Some(chaos.clone());
            cfg.policy = policy.clone();
        }
        let (r, report) =
            parcc::compile_farm_traced(&source, &opts, &cfg, &trace).map_err(|e| e.to_string())?;
        if args.time {
            eprintln!(
                "phase1 {:?}, farm compile {:?} ({} worker(s), {} lost), link {:?}",
                report.phase1_wall,
                report.compile_wall,
                report.workers_spawned,
                report.workers_lost,
                report.link_wall
            );
        }
        if args.cache_stats || args.cache_dir.is_some() {
            eprintln!(
                "farm cache: {} pre-dispatch hit(s), {} hash-shipped, {} bytes-shipped",
                report.cache_hits, report.hash_shipped, report.bytes_shipped
            );
        }
        if let Some((chaos, _)) = &faults {
            let s = &report.faults;
            eprintln!(
                "farm faults (seed {}): {} kill(s), {} exit(s), {} stall(s), {} timeout(s), \
                 {} retry(ies), {} rebalance(s), {} coordinator fallback(s)",
                chaos.seed,
                s.kills,
                s.exits,
                s.stalls,
                s.timeouts,
                s.retries,
                s.rebalances,
                s.coordinator_fallbacks
            );
        }
        r
    } else {
        match (args.workers, &cache) {
            (None, None) => {
                compile_module_traced(&source, &opts, &trace).map_err(|e| e.to_string())?
            }
            (None, Some(c)) => compile_module_cached_traced(&source, &opts, c, &trace)
                .map_err(|e| e.to_string())?,
            (Some(w), c) => {
                let (r, report) = match (&faults, c) {
                    (Some((chaos, policy)), _) => {
                        compile_parallel_chaos_traced(&source, &opts, w, chaos, policy, &trace)
                    }
                    (None, None) => compile_parallel_traced(&source, &opts, w, &trace),
                    (None, Some(c)) => compile_parallel_cached_traced(&source, &opts, w, c, &trace),
                }
                .map_err(|e| e.to_string())?;
                if args.time {
                    eprintln!(
                        "phase1 {:?}, parallel compile {:?} ({w} workers), link {:?}",
                        report.phase1_wall, report.compile_wall, report.link_wall
                    );
                }
                if let Some((chaos, _)) = &faults {
                    let s = report.faults;
                    eprintln!(
                    "faults (seed {}): {} panic(s), {} lost, {} timeout(s), {} retry round(s), \
                     {} in-master fallback(s)",
                    chaos.seed, s.panics, s.lost, s.timeouts, s.retries, s.sequential_fallbacks
                );
                }
                r
            }
        }
    };
    if args.time {
        eprintln!("total {:?}", t0.elapsed());
    }
    if let Some(c) = &cache {
        if args.cache_stats {
            eprintln!("cache: {}", c.stats());
        }
    }

    if let Some(path) = &args.trace {
        let snap = trace.snapshot();
        let json = warp_obs::to_chrome_json(&snap);
        std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        eprint!("{}", warp_obs::render_summary(&snap, 10));
        eprintln!(
            "trace: wrote {} events to {path}",
            snap.spans.len() + snap.instants.len()
        );
    }

    if args.verify {
        // Per-pass IR checks and per-function image checks already ran
        // inside the compile; re-check the final linked module too.
        let errs = warp_analyze::verify_module_image(&result.module_image, &opts.cell);
        if !errs.is_empty() {
            let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            return Err(msgs.join("\n"));
        }
        let functions: usize = result
            .module_image
            .section_images
            .iter()
            .map(|s| s.functions.len())
            .sum();
        let words: u32 = result
            .module_image
            .section_images
            .iter()
            .map(|s| s.code_words())
            .sum();
        eprintln!("verify: {functions} function(s), {words} words — ok");
    }

    if let Some(path) = &args.output {
        let bytes =
            warp_target::download::encode(&result.module_image).map_err(|e| e.to_string())?;
        std::fs::write(path, &bytes).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {} bytes to {path}", bytes.len());
    }

    match args.emit.as_str() {
        "asm" => {
            for sec in &result.module_image.section_images {
                print!("{}", sec.disassemble());
            }
        }
        "facts" => print!("{}", parcc::facts_report(&result.records)),
        _ => print!("{}", summary(&result)),
    }

    if let Some((func, vals)) = args.run {
        let sec = result
            .module_image
            .section_images
            .iter()
            .find(|s| s.function_index(&func).is_some())
            .ok_or(format!("function `{func}` not found"))?;
        let mut cell = Cell::new(warp_target::CellConfig::default(), sec.clone())
            .map_err(|e| e.to_string())?;
        cell.set_strict(true);
        cell.prepare_call(&func, &vals).map_err(|e| e.to_string())?;
        cell.run(100_000_000).map_err(|e| e.to_string())?;
        println!(
            "{func}({}) = {} ({} cycles)",
            vals.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            cell.reg(Reg::RET).map_err(|e| e.to_string())?,
            cell.cycle()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match real_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("warpcc: {msg}");
            ExitCode::FAILURE
        }
    }
}
