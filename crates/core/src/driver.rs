//! The compiler driver: real, complete compilation of a Warp module.
//!
//! [`compile_module_source`] is the *sequential compiler* of the paper
//! — the baseline "commonly in use" that every speedup is measured
//! against. [`compile_function`] is the unit of work a *function
//! master* performs (phases 2 and 3 for one function); the parallel
//! executors in [`crate::threads`] and [`crate::simspec`] reuse it so
//! that the parallel compiler provably performs the same work.

use crate::fncache::{function_key, options_fingerprint, CachedFunction, FnCache};
use serde::{Deserialize, Serialize};
use std::fmt;
use warp_analyze::{MachineError, ScheduleError};
use warp_cache::{CacheKey, InFlight};
use warp_codegen::link::{
    assemble_module, finish_section, link_section, plan_section, resolve_function, LinkWork,
};
use warp_codegen::phase3::{phase3_traced, Phase3Work};
use warp_ir::phase2::{phase2_traced, Phase2Error, Phase2Work};
use warp_ir::FactSet;
use warp_lang::{CheckedModule, ParseWork, Phase1Error};
use warp_obs::{Trace, TrackId};
use warp_target::program::{FunctionImage, ModuleImage};
use warp_target::CellConfig;

/// Compilation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Target cell configuration.
    pub cell: CellConfig,
    /// Bound on the modulo scheduler's II search.
    pub max_ii: u32,
    /// Procedure inlining (the paper's §5.1 extension); `None`
    /// reproduces the published compiler, which performed "only
    /// minimal inter-procedural optimizations".
    pub inline: Option<warp_ir::InlinePolicy>,
    /// Loop unrolling (the §6 compile-time-for-code-quality trade);
    /// `None` reproduces the published compiler.
    pub unroll: Option<warp_ir::UnrollPolicy>,
    /// If-conversion: speculate small branch diamonds into selects so
    /// branchy loop bodies become software-pipelinable.
    pub if_convert: Option<warp_ir::IfConvPolicy>,
    /// Run the static verifiers at every pass boundary: the IR
    /// verifier after lowering and after each optimization pass, and
    /// the machine-code + schedule checkers on every emitted function
    /// image. Compilation fails on the first violated invariant.
    pub verify_each_pass: bool,
    /// Run the abstract-interpretation value/poison analysis per
    /// function (after lowering and again after optimization), apply
    /// its fact-driven rewrites, and ship the proven [`FactSet`] in
    /// the function record (and through the incremental cache).
    pub absint: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            cell: CellConfig::default(),
            max_ii: warp_codegen::DEFAULT_MAX_II,
            inline: None,
            unroll: None,
            if_convert: None,
            verify_each_pass: false,
            absint: false,
        }
    }
}

impl CompileOptions {
    /// Options with the §5.1 inlining extension enabled.
    pub fn with_inlining() -> Self {
        CompileOptions {
            inline: Some(warp_ir::InlinePolicy::default()),
            ..Self::default()
        }
    }
}

/// Compilation errors from any phase.
#[derive(Debug, Clone)]
pub enum CompileError {
    /// Phase 1 (parse / semantic check) failed; the master aborts the
    /// compilation (paper §3.2).
    Phase1(Phase1Error),
    /// Lowering failed (internal error after a clean check).
    Lower(warp_ir::LowerError),
    /// Phase 3 failed for a function.
    Phase3(warp_codegen::Phase3Error),
    /// Linking failed.
    Link(warp_codegen::LinkError),
    /// The IR verifier rejected a pass's output
    /// (`verify_each_pass` only).
    Verify(warp_ir::VerifyError),
    /// The static machine-code verifier rejected an emitted image
    /// (`verify_each_pass` or an explicit `--verify` run).
    MachineVerify(Vec<MachineError>),
    /// The static schedule checker rejected a pipelined loop layout.
    ScheduleVerify(Vec<ScheduleError>),
    /// A worker thread failed outside the compiler proper — it
    /// panicked or its channel disconnected — and the failure survived
    /// every retry and the in-master sequential fallback. The payload
    /// is a human-readable diagnostic; the master reports it instead
    /// of panicking itself.
    Worker(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Phase1(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
            CompileError::Phase3(e) => write!(f, "{e}"),
            CompileError::Link(e) => write!(f, "{e}"),
            CompileError::Verify(e) => write!(f, "{e}"),
            CompileError::MachineVerify(errs) => {
                let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
                write!(f, "{}", msgs.join("\n"))
            }
            CompileError::ScheduleVerify(errs) => {
                let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
                write!(f, "{}", msgs.join("\n"))
            }
            CompileError::Worker(msg) => write!(f, "worker failure: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<Phase1Error> for CompileError {
    fn from(e: Phase1Error) -> Self {
        CompileError::Phase1(e)
    }
}

impl From<warp_ir::LowerError> for CompileError {
    fn from(e: warp_ir::LowerError) -> Self {
        CompileError::Lower(e)
    }
}

impl From<warp_codegen::Phase3Error> for CompileError {
    fn from(e: warp_codegen::Phase3Error) -> Self {
        CompileError::Phase3(e)
    }
}

impl From<warp_codegen::LinkError> for CompileError {
    fn from(e: warp_codegen::LinkError) -> Self {
        CompileError::Link(e)
    }
}

impl From<Phase2Error> for CompileError {
    fn from(e: Phase2Error) -> Self {
        match e {
            Phase2Error::Lower(e) => CompileError::Lower(e),
            Phase2Error::Verify(e) => CompileError::Verify(e),
        }
    }
}

/// Everything measured about compiling one function — the deterministic
/// work profile the host simulator turns into 1989 seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionRecord {
    /// Section index.
    pub section: usize,
    /// Function name.
    pub name: String,
    /// Source lines of the function (declaration through `end`).
    pub lines: usize,
    /// Maximum loop nesting depth.
    pub loop_depth: usize,
    /// Phase-1 work attributable to this function (its share of
    /// parsing; a function master re-parses its own function).
    pub parse_units: u64,
    /// Phase-2 work counters.
    pub p2: Phase2Work,
    /// Phase-3 work counters.
    pub p3: Phase3Work,
    /// Size of the produced object in bytes (what travels back over
    /// the network to the file server).
    pub object_bytes: u64,
    /// The load balancer's a-priori cost estimate (LoC × nesting,
    /// §4.3) — available to the master *before* compilation.
    pub cost_estimate: u64,
    /// Facts proven by the abstract interpreter about the final IR
    /// (`None` unless [`CompileOptions::absint`] was set). Cached with
    /// the function, so warm rebuilds skip re-analysis.
    pub facts: Option<FactSet>,
}

impl FunctionRecord {
    /// Total compile work in abstract units (phases 2 + 3; the
    /// function master's CPU burst).
    pub fn compile_units(&self) -> u64 {
        self.p2.units() + self.p3.units()
    }

    /// Total units including the function master's own parse.
    pub fn total_units(&self) -> u64 {
        self.parse_units + self.compile_units()
    }
}

/// The result of compiling a whole module.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The final linked, downloadable image.
    pub module_image: ModuleImage,
    /// Per-function work records, in source order.
    pub records: Vec<FunctionRecord>,
    /// Phase-1 work for the whole module in abstract units.
    pub phase1_units: u64,
    /// Phase-4 (assembly/link) work in abstract units.
    pub link_units: u64,
    /// Warnings the front end produced (the sema checker computes
    /// these even on success; surfaced in `--emit summary`).
    pub warnings: usize,
}

impl CompileResult {
    /// Total work units across all phases (the sequential compiler's
    /// CPU demand).
    pub fn total_units(&self) -> u64 {
        self.phase1_units
            + self
                .records
                .iter()
                .map(FunctionRecord::compile_units)
                .sum::<u64>()
            + self.link_units
    }
}

/// Converts phase-1 parse counters to abstract work units.
fn parse_units_of(work: &ParseWork) -> u64 {
    work.tokens as u64 * 2 + work.statements as u64 * 3 + work.source_bytes as u64 / 8
}

/// Runs phase 1 on a module source (the master's sequential step).
/// Returns the checked module, abstract work units, and the number of
/// front-end warnings.
///
/// # Errors
///
/// Returns the phase-1 diagnostics on failure.
pub fn run_phase1(source: &str) -> Result<(CheckedModule, u64, usize), CompileError> {
    run_phase1_traced(source, &Trace::disabled(), TrackId(0))
}

/// [`run_phase1`] with span tracing: the lex/parse and semantic-check
/// halves of phase 1 become separate `"driver"` spans (`parse`,
/// `sema`) on `track` of `trace`.
///
/// # Errors
///
/// Returns the phase-1 diagnostics on failure.
pub fn run_phase1_traced(
    source: &str,
    trace: &Trace,
    track: TrackId,
) -> Result<(CheckedModule, u64, usize), CompileError> {
    let parsed = {
        let mut span = trace.span("driver", "parse", track);
        let parsed = warp_lang::parser::parse(source);
        span.arg("bytes", source.len() as f64);
        parsed
    };
    let mut diagnostics = parsed.diagnostics;
    let (checked, sema_diags) = {
        let _span = trace.span("driver", "sema", track);
        warp_lang::sema::check(parsed.module)
    };
    diagnostics.merge_sorted(sema_diags);
    if diagnostics.has_errors() {
        let rendered = diagnostics.render_all_with_source(source);
        return Err(CompileError::Phase1(Phase1Error {
            diagnostics,
            rendered,
        }));
    }
    let units = parse_units_of(&ParseWork::measure(source));
    Ok((checked, units, diagnostics.warning_count()))
}

/// Phase 1 plus the optional inlining extension: the checked module the
/// function masters will compile. When inlining runs, the transformed
/// module is re-checked (and the extra work charged to phase 1).
///
/// # Errors
///
/// Returns the phase-1 diagnostics on failure.
pub fn prepare_module(
    source: &str,
    opts: &CompileOptions,
) -> Result<(CheckedModule, u64, usize), CompileError> {
    prepare_module_traced(source, opts, &Trace::disabled(), TrackId(0))
}

/// [`prepare_module`] with span tracing: phase 1 is recorded via
/// [`run_phase1_traced`] and the optional inlining extension becomes a
/// `"driver"` span (`inline`) on `track` of `trace`.
///
/// # Errors
///
/// Returns the phase-1 diagnostics on failure.
pub fn prepare_module_traced(
    source: &str,
    opts: &CompileOptions,
    trace: &Trace,
    track: TrackId,
) -> Result<(CheckedModule, u64, usize), CompileError> {
    let (checked, mut units, warnings) = run_phase1_traced(source, trace, track)?;
    match &opts.inline {
        None => Ok((checked, units, warnings)),
        Some(policy) => {
            let mut span = trace.span("driver", "inline", track);
            let (inlined, stats) = warp_ir::inline_module(&checked.module, policy);
            span.arg("inlined_calls", stats.inlined_calls as f64);
            // Charge the transform + re-check as additional setup work.
            units += stats.inlined_calls as u64 * 200 + inlined.function_count() as u64 * 50;
            let (rechecked, diags) = warp_lang::sema::check(inlined);
            if diags.has_errors() {
                // Cannot happen for a module that passed phase 1; keep a
                // defensive error path rather than panicking.
                let rendered = diags
                    .iter()
                    .map(|d| d.message.clone())
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(CompileError::Phase1(warp_lang::Phase1Error {
                    diagnostics: diags,
                    rendered,
                }));
            }
            Ok((rechecked, units, warnings))
        }
    }
}

/// [`run_phase1_traced`] with the lexer, parser, and checker fanned out
/// over `workers` work-stealing threads: the source is chunk-lexed at
/// comment-safe newline boundaries, the token stream is split at every
/// `section` keyword and the pieces parsed independently, and each
/// section is semantically checked in isolation before a sequential
/// merge rebuilds the module-wide result (collect → merge → resolve;
/// see `docs/PARALLELISM.md`).
///
/// The result is identical to [`run_phase1_traced`] on every input: on
/// a clean module the piece-wise pipeline is exact by construction, and
/// whenever the combined diagnostics contain errors — where parser
/// error recovery could cross a piece boundary — the function discards
/// the parallel attempt and re-runs the sequential path verbatim.
///
/// # Errors
///
/// Returns the phase-1 diagnostics on failure.
pub fn run_phase1_parallel_traced(
    source: &str,
    workers: usize,
    trace: &Trace,
    track: TrackId,
) -> Result<(CheckedModule, u64, usize), CompileError> {
    let workers = workers.max(1);
    let worker_tracks = crate::exec::worker_tracks(trace, workers);
    let (parsed, token_count) = {
        let mut span = trace.span("driver", "parse", track);
        let bounds = warp_lang::lexer::chunk_boundaries(source, workers);
        let chunks: Vec<(usize, usize)> = bounds.windows(2).map(|w| (w[0], w[1])).collect();
        let parts = crate::exec::run_stealing(
            workers,
            chunks,
            &worker_tracks,
            trace,
            |_, _, (start, end)| warp_lang::lexer::lex_chunk(source, start, end),
        );
        let lexed = warp_lang::lexer::merge_lexed_chunks(source.len(), parts);
        let token_count = lexed.tokens.len();
        let eof_span = lexed.tokens.last().expect("EOF-terminated").span;
        let pieces = warp_lang::parser::split_tokens(lexed.tokens);
        let header = warp_lang::parser::parse_header_piece(pieces.header);
        let piece_results = crate::exec::run_stealing(
            workers,
            pieces.sections,
            &worker_tracks,
            trace,
            |_, _, tokens| warp_lang::parser::parse_section_piece(tokens),
        );
        let parsed =
            warp_lang::parser::assemble_pieces(lexed.diagnostics, header, piece_results, eof_span);
        span.arg("bytes", source.len() as f64);
        (parsed, token_count)
    };
    let mut diagnostics = parsed.diagnostics;
    let (checked, sema_diags) = {
        let _span = trace.span("driver", "sema", track);
        let module = parsed.module;
        let section_indices: Vec<usize> = (0..module.sections.len()).collect();
        let parts = crate::exec::run_stealing(
            workers,
            section_indices,
            &worker_tracks,
            trace,
            |_, _, si| warp_lang::sema::check_section_isolated(&module.sections[si]),
        );
        warp_lang::sema::merge_checked(module, parts)
    };
    diagnostics.merge_sorted(sema_diags);
    if diagnostics.has_errors() {
        // Error recovery may have consumed tokens across piece
        // boundaries; rebuild sequentially so the reported diagnostics
        // are exactly the sequential compiler's.
        return run_phase1_traced(source, trace, track);
    }
    // Same numbers `ParseWork::measure` would produce, without the
    // re-lex/re-parse it performs.
    let work = ParseWork {
        tokens: token_count,
        statements: warp_lang::statement_count(&checked.module),
        source_bytes: source.len(),
    };
    let units = parse_units_of(&work);
    Ok((checked, units, diagnostics.warning_count()))
}

/// [`prepare_module_traced`] with phase 1 running on the parallel
/// pipeline of [`run_phase1_parallel_traced`]. The optional inlining
/// extension (and its defensive re-check) stays sequential — it is a
/// whole-module transform.
///
/// # Errors
///
/// Returns the phase-1 diagnostics on failure.
pub fn prepare_module_parallel_traced(
    source: &str,
    opts: &CompileOptions,
    workers: usize,
    trace: &Trace,
    track: TrackId,
) -> Result<(CheckedModule, u64, usize), CompileError> {
    let (checked, mut units, warnings) = run_phase1_parallel_traced(source, workers, trace, track)?;
    match &opts.inline {
        None => Ok((checked, units, warnings)),
        Some(policy) => {
            let mut span = trace.span("driver", "inline", track);
            let (inlined, stats) = warp_ir::inline_module(&checked.module, policy);
            span.arg("inlined_calls", stats.inlined_calls as f64);
            // Charge the transform + re-check as additional setup work.
            units += stats.inlined_calls as u64 * 200 + inlined.function_count() as u64 * 50;
            let (rechecked, diags) = warp_lang::sema::check(inlined);
            if diags.has_errors() {
                // Cannot happen for a module that passed phase 1; keep a
                // defensive error path rather than panicking.
                let rendered = diags
                    .iter()
                    .map(|d| d.message.clone())
                    .collect::<Vec<_>>()
                    .join("; ");
                return Err(CompileError::Phase1(warp_lang::Phase1Error {
                    diagnostics: diags,
                    rendered,
                }));
            }
            Ok((rechecked, units, warnings))
        }
    }
}

/// Compiles one function (phases 2 + 3): the function master's job.
///
/// # Errors
///
/// Returns [`CompileError`] if lowering or code generation fails.
pub fn compile_function(
    checked: &CheckedModule,
    source: &str,
    si: usize,
    fi: usize,
    opts: &CompileOptions,
) -> Result<(FunctionImage, FunctionRecord), CompileError> {
    compile_function_traced(
        checked,
        source,
        si,
        fi,
        opts,
        &Trace::disabled(),
        TrackId(0),
    )
}

/// [`compile_function`] with span tracing: every phase-2 and phase-3
/// pass (and, under `verify_each_pass`, every static check) is
/// recorded on `track` of `trace`. With a disabled trace this is
/// exactly [`compile_function`].
///
/// # Errors
///
/// Returns [`CompileError`] if lowering or code generation fails.
pub fn compile_function_traced(
    checked: &CheckedModule,
    source: &str,
    si: usize,
    fi: usize,
    opts: &CompileOptions,
    trace: &Trace,
    track: TrackId,
) -> Result<(FunctionImage, FunctionRecord), CompileError> {
    let func = &checked.module.sections[si].functions[fi];
    let symbols = &checked.sections[si].symbol_tables[fi];
    let signatures = &checked.sections[si].signatures;
    let p2 = phase2_traced(
        func,
        symbols,
        signatures,
        opts.unroll.as_ref(),
        opts.if_convert.as_ref(),
        opts.absint,
        opts.verify_each_pass,
        trace,
        track,
    )?;
    let p3 = phase3_traced(&p2, &opts.cell, opts.max_ii, trace, track)?;
    if opts.verify_each_pass {
        let errs =
            warp_analyze::verify_function_image_traced(&p3.image, &opts.cell, None, trace, track);
        if !errs.is_empty() {
            return Err(CompileError::MachineVerify(errs));
        }
        let errs =
            warp_analyze::verify_function_schedule_traced(&p3.pipelined, &p3.image, trace, track);
        if !errs.is_empty() {
            return Err(CompileError::ScheduleVerify(errs));
        }
    }
    let lines = func.line_count(source);
    let func_src_len = func.span.len() as usize;
    // The function master re-parses (roughly) its own function's text.
    let parse_units = (func_src_len as u64) / 4;
    let object_bytes = u64::from(p3.image.code_words()) * 16 + u64::from(p3.image.data_words) * 4;
    let record = FunctionRecord {
        section: si,
        name: func.name.clone(),
        lines,
        loop_depth: func.max_loop_depth(),
        parse_units,
        p2: p2.work,
        p3: p3.work,
        object_bytes,
        cost_estimate: warp_workload::cost_estimate(lines, func.max_loop_depth()),
        facts: p2.facts,
    };
    Ok((p3.image, record))
}

/// [`compile_function_traced`] with an incremental cache in front: the
/// function's content address is probed first, and only a miss pays
/// for phases 2 + 3 (the result is then stored for the next build).
/// The probe is recorded as a `"cache"` span named `hit NAME` or
/// `miss NAME` on `track`, so traces show exactly which functions were
/// served from the cache.
///
/// `options_fp` is the per-build [`options_fingerprint`]; computing it
/// once and passing it down keeps the per-function key cost to one
/// hash over the function's own inputs.
///
/// # Errors
///
/// Returns [`CompileError`] if a cache miss fails to compile.
#[allow(clippy::too_many_arguments)]
pub fn compile_function_cached_traced(
    checked: &CheckedModule,
    source: &str,
    si: usize,
    fi: usize,
    opts: &CompileOptions,
    cache: &FnCache,
    options_fp: u64,
    trace: &Trace,
    track: TrackId,
) -> Result<(FunctionImage, FunctionRecord), CompileError> {
    let key = function_key(checked, source, si, fi, options_fp);
    compile_function_keyed_traced(checked, source, si, fi, opts, cache, key, trace, track)
}

/// [`compile_function_cached_traced`] for a caller that already holds
/// the function's [`CacheKey`] — the dedup path computes the key first
/// (to lease it) and must not pay for hashing the function twice.
///
/// # Errors
///
/// Returns [`CompileError`] if a cache miss fails to compile.
#[allow(clippy::too_many_arguments)]
pub fn compile_function_keyed_traced(
    checked: &CheckedModule,
    source: &str,
    si: usize,
    fi: usize,
    opts: &CompileOptions,
    cache: &FnCache,
    key: CacheKey,
    trace: &Trace,
    track: TrackId,
) -> Result<(FunctionImage, FunctionRecord), CompileError> {
    let probe_start = trace.now_ns();
    if let Some(cached) = cache.lookup(key) {
        if trace.is_enabled() {
            let name = &checked.module.sections[si].functions[fi].name;
            trace.record_span(
                "cache",
                format!("hit {name}"),
                track,
                probe_start,
                trace.now_ns().saturating_sub(probe_start),
                vec![("object_bytes", cached.record.object_bytes as f64)],
            );
        }
        return Ok((cached.image, cached.record));
    }
    if trace.is_enabled() {
        let name = &checked.module.sections[si].functions[fi].name;
        trace.record_span(
            "cache",
            format!("miss {name}"),
            track,
            probe_start,
            trace.now_ns().saturating_sub(probe_start),
            Vec::new(),
        );
    }
    let (image, record) = compile_function_traced(checked, source, si, fi, opts, trace, track)?;
    cache.store(
        key,
        CachedFunction {
            image: image.clone(),
            record: record.clone(),
        },
    );
    Ok((image, record))
}

/// [`compile_function_cached_traced`] with in-flight deduplication: the
/// function's key is leased in `inflight` *before* the cache is probed,
/// so of N concurrent builders of the same key exactly one compiles (and
/// records the single miss) while the rest block on the lease and then
/// hit. This is the per-function compile path of the `warpd` service,
/// where many tenants race on one shared cache.
///
/// # Errors
///
/// Returns [`CompileError`] if a cache miss fails to compile.
#[allow(clippy::too_many_arguments)]
pub fn compile_function_deduped_traced(
    checked: &CheckedModule,
    source: &str,
    si: usize,
    fi: usize,
    opts: &CompileOptions,
    cache: &FnCache,
    inflight: &InFlight,
    options_fp: u64,
    trace: &Trace,
    track: TrackId,
) -> Result<(FunctionImage, FunctionRecord), CompileError> {
    let key = function_key(checked, source, si, fi, options_fp);
    let _lease = inflight.lease(key);
    compile_function_keyed_traced(checked, source, si, fi, opts, cache, key, trace, track)
}

/// Compiles a whole module against a *shared* cache with in-flight
/// deduplication — the request path of the `warpd` daemon. Unlike
/// [`compile_module_cached_traced`] this entry point is meant to be
/// called concurrently from many threads over the same `cache` and
/// `inflight`: each call compiles its functions sequentially (requests
/// are the unit of parallelism in the service), every function probe is
/// dedup-guarded, and **all** spans — driver, worker, cache — land on
/// the single `track` so a request's latency decomposes on its own
/// trace row.
///
/// # Errors
///
/// Returns the first error of any phase.
pub fn compile_module_shared_traced(
    source: &str,
    opts: &CompileOptions,
    cache: &FnCache,
    inflight: &InFlight,
    trace: &Trace,
    track: TrackId,
) -> Result<CompileResult, CompileError> {
    let (checked, phase1_units, warnings) = prepare_module_traced(source, opts, trace, track)?;
    let options_fp = options_fingerprint(opts);
    let mut images = Vec::new();
    let mut records = Vec::new();
    for si in 0..checked.module.sections.len() {
        for fi in 0..checked.module.sections[si].functions.len() {
            let span = trace.span(
                "worker",
                checked.module.sections[si].functions[fi].name.as_str(),
                track,
            );
            let (img, rec) = compile_function_deduped_traced(
                &checked, source, si, fi, opts, cache, inflight, options_fp, trace, track,
            )?;
            span.finish();
            images.push(img);
            records.push(rec);
        }
    }
    let (module_image, link_units) = link_module_traced(&checked, images, opts, trace, track)?;
    if opts.verify_each_pass {
        let errs =
            warp_analyze::verify_module_image_traced(&module_image, &opts.cell, trace, track);
        if !errs.is_empty() {
            return Err(CompileError::MachineVerify(errs));
        }
    }
    Ok(CompileResult {
        module_image,
        records,
        phase1_units,
        link_units,
        warnings,
    })
}

/// [`compile_module_shared_traced`] with intra-request parallelism —
/// the `jobs` field of a `warpd` compile request. Phase 1 (chunked
/// lex/parse + sema merge), the per-function compiles, and the phase-4
/// resolve all run on up to `jobs` stealing workers; every cache probe
/// remains dedup-guarded by `inflight`, so concurrent tenants racing on
/// one key still compile it exactly once. `jobs <= 1` is exactly
/// [`compile_module_shared_traced`] (all spans on the request's own
/// track); with more jobs the function compiles land on shared
/// `worker N` tracks instead. The output is byte-identical either way.
///
/// # Errors
///
/// Returns the first error of any phase, in the sequential compiler's
/// (section, function) order.
#[allow(clippy::too_many_arguments)]
pub fn compile_module_shared_jobs_traced(
    source: &str,
    opts: &CompileOptions,
    jobs: usize,
    cache: &FnCache,
    inflight: &InFlight,
    trace: &Trace,
    track: TrackId,
) -> Result<CompileResult, CompileError> {
    if jobs <= 1 {
        return compile_module_shared_traced(source, opts, cache, inflight, trace, track);
    }
    let (checked, phase1_units, warnings) =
        prepare_module_parallel_traced(source, opts, jobs, trace, track)?;
    let options_fp = options_fingerprint(opts);
    let worker_tracks = crate::exec::worker_tracks(trace, jobs);
    let fn_jobs: Vec<(usize, usize)> = checked
        .module
        .sections
        .iter()
        .enumerate()
        .flat_map(|(si, s)| (0..s.functions.len()).map(move |fi| (si, fi)))
        .collect();
    let checked_ref = &checked;
    let tracks_ref = &worker_tracks;
    let outcomes = crate::exec::run_stealing(
        jobs,
        fn_jobs,
        &worker_tracks,
        trace,
        move |w, _, (si, fi)| {
            let wt = tracks_ref[w];
            let span = trace.span(
                "worker",
                checked_ref.module.sections[si].functions[fi].name.as_str(),
                wt,
            );
            let r = compile_function_deduped_traced(
                checked_ref,
                source,
                si,
                fi,
                opts,
                cache,
                inflight,
                options_fp,
                trace,
                wt,
            );
            span.finish();
            r
        },
    );
    let mut images = Vec::with_capacity(outcomes.len());
    let mut records = Vec::with_capacity(outcomes.len());
    // Results come back in (section, function) order, so `?` here
    // surfaces the same first error the sequential loop would.
    for outcome in outcomes {
        let (img, rec) = outcome?;
        images.push(img);
        records.push(rec);
    }
    let (module_image, link_units) =
        link_module_parallel_traced(&checked, images, opts, jobs, trace, track)?;
    if opts.verify_each_pass {
        let errs =
            warp_analyze::verify_module_image_traced(&module_image, &opts.cell, trace, track);
        if !errs.is_empty() {
            return Err(CompileError::MachineVerify(errs));
        }
    }
    Ok(CompileResult {
        module_image,
        records,
        phase1_units,
        link_units,
        warnings,
    })
}

/// Renders the per-function fact report of an `--absint` build — the
/// `warpcc --emit facts` output and the golden files under
/// `tests/golden/absint/` compare this text verbatim, so the format is
/// deterministic: fixed line order, fixed flag order, claim lists in
/// program order.
pub fn facts_report(records: &[FunctionRecord]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in records {
        let _ = writeln!(out, "== {}", r.name);
        let Some(f) = &r.facts else {
            let _ = writeln!(out, "facts: none (absint disabled)");
            continue;
        };
        let _ = writeln!(out, "iterations {}", f.iterations);
        let _ = writeln!(
            out,
            "sites div {}/{} mem {}/{} consume {}/{}",
            f.div_safe, f.div_sites, f.mem_safe, f.mem_sites, f.consume_safe, f.consume_sites
        );
        let mut flags: Vec<&str> = Vec::new();
        if f.div_trap_free {
            flags.push("div-trap-free");
        }
        if f.mem_trap_free {
            flags.push("mem-trap-free");
        }
        if f.def_free {
            flags.push("def-free");
        }
        if f.finite_return {
            flags.push("finite-return");
        }
        let _ = writeln!(
            out,
            "flags {}",
            if flags.is_empty() {
                "-".into()
            } else {
                flags.join(" ")
            }
        );
        for s in &f.safe_divs {
            let _ = writeln!(out, "safe-div b{}:{}", s.block, s.inst);
        }
        for s in &f.safe_mems {
            let _ = writeln!(out, "safe-mem b{}:{}", s.block, s.inst);
        }
        for e in &f.dead_edges {
            let _ = writeln!(
                out,
                "dead-edge b{} {}",
                e.block,
                if e.always_then { "else" } else { "then" }
            );
        }
        for l in &f.loop_bounds {
            let _ = writeln!(out, "loop-bound b{} {}", l.block, l.max_trips);
        }
    }
    out
}

/// Converts link work counters to abstract units.
fn link_units_of(work: &LinkWork) -> u64 {
    work.words_scanned as u64 + work.addrs_rebased as u64 * 2 + work.calls_resolved as u64 * 4
}

/// Links per-function images into the final module image (phase 4, the
/// section masters' + master's sequential step).
///
/// `images` must be in source order, grouped as produced by iterating
/// `checked.module.functions()`.
///
/// # Errors
///
/// Returns [`CompileError::Link`] on unresolved calls or overflow.
pub fn link_module(
    checked: &CheckedModule,
    images: Vec<FunctionImage>,
    opts: &CompileOptions,
) -> Result<(ModuleImage, u64), CompileError> {
    link_module_traced(checked, images, opts, &Trace::disabled(), TrackId(0))
}

/// [`link_module`] with span tracing: one `"driver"` span (`link`) on
/// `track` of `trace` covering every section link plus module
/// assembly; the span carries the section count as an argument.
///
/// # Errors
///
/// Returns [`CompileError::Link`] on unresolved calls or overflow.
pub fn link_module_traced(
    checked: &CheckedModule,
    images: Vec<FunctionImage>,
    opts: &CompileOptions,
    trace: &Trace,
    track: TrackId,
) -> Result<(ModuleImage, u64), CompileError> {
    let mut span = trace.span("driver", "link", track);
    let mut iter = images.into_iter();
    let mut sections = Vec::new();
    let mut units = 0u64;
    for section in &checked.module.sections {
        let fns: Vec<FunctionImage> = (0..section.functions.len())
            .map(|_| iter.next().expect("image per function"))
            .collect();
        let (img, work) = link_section(
            &section.name,
            section.first_cell,
            section.last_cell,
            fns,
            &opts.cell,
        )?;
        units += link_units_of(&work);
        sections.push(img);
    }
    span.arg("sections", sections.len() as f64);
    Ok((assemble_module(&checked.module.name, sections), units))
}

/// [`link_module_traced`] with the per-function resolve step fanned out
/// over `workers` work-stealing threads: every section's data layout is
/// planned sequentially (a cheap prefix sum), all functions of all
/// well-planned sections are rebased and call-resolved in parallel, and
/// the per-section recursion check + image assembly runs sequentially
/// in section order. Byte-identical to the sequential path — including
/// which error is reported when several sections fail, since errors are
/// surfaced in (section, function) order.
///
/// # Errors
///
/// Returns [`CompileError::Link`] on unresolved calls or overflow.
pub fn link_module_parallel_traced(
    checked: &CheckedModule,
    images: Vec<FunctionImage>,
    opts: &CompileOptions,
    workers: usize,
    trace: &Trace,
    track: TrackId,
) -> Result<(ModuleImage, u64), CompileError> {
    let workers = workers.max(1);
    let mut span = trace.span("driver", "link", track);
    let worker_tracks = crate::exec::worker_tracks(trace, workers);

    // Collect: group images per section and plan each layout.
    let mut iter = images.into_iter();
    let mut per_section: Vec<Vec<FunctionImage>> = checked
        .module
        .sections
        .iter()
        .map(|s| {
            (0..s.functions.len())
                .map(|_| iter.next().expect("image per function"))
                .collect()
        })
        .collect();
    let plans: Vec<Result<warp_codegen::link::SectionPlan, warp_codegen::LinkError>> = per_section
        .iter()
        .map(|fns| plan_section(fns, &opts.cell))
        .collect();

    // Resolve: rebase + call-resolve every function of every
    // well-planned section in parallel. Jobs are in (section, function)
    // order and `run_stealing` returns results in job order, so the
    // sequential error priority is preserved below.
    let mut jobs: Vec<(usize, usize, FunctionImage, u32)> = Vec::new();
    for (si, fns) in per_section.iter_mut().enumerate() {
        if let Ok(plan) = &plans[si] {
            for (fi, f) in std::mem::take(fns).into_iter().enumerate() {
                jobs.push((si, fi, f, plan.data_bases[fi]));
            }
        }
    }
    let plans_ref = &plans;
    let mut resolved = crate::exec::run_stealing(
        workers,
        jobs,
        &worker_tracks,
        trace,
        move |_, _, (si, fi, mut img, base)| {
            let plan = plans_ref[si]
                .as_ref()
                .expect("only planned sections are resolved");
            let r = resolve_function(&mut img, base, &plan.name_to_index);
            (fi, img, r)
        },
    )
    .into_iter();

    // Finish: surface errors and assemble images in section order.
    let mut sections = Vec::with_capacity(checked.module.sections.len());
    let mut units = 0u64;
    for (section, plan) in checked.module.sections.iter().zip(plans) {
        let plan = plan?;
        let n = section.functions.len();
        let mut fns = Vec::with_capacity(n);
        let mut call_graph: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut work = LinkWork::default();
        for _ in 0..n {
            let (fi, img, r) = resolved.next().expect("one result per planned function");
            let (callees, w) = r?;
            call_graph[fi] = callees;
            work.words_scanned += w.words_scanned;
            work.addrs_rebased += w.addrs_rebased;
            work.calls_resolved += w.calls_resolved;
            fns.push(img);
        }
        let img = finish_section(
            &section.name,
            section.first_cell,
            section.last_cell,
            fns,
            plan,
            &call_graph,
        )?;
        units += link_units_of(&work);
        sections.push(img);
    }
    span.arg("sections", sections.len() as f64);
    Ok((assemble_module(&checked.module.name, sections), units))
}

/// The sequential compiler: phase 1, then every function in source
/// order, then assembly — all in one process (paper §3.2: "the
/// sequential compiler runs as a Common Lisp process on a single SUN
/// workstation").
///
/// # Errors
///
/// Returns the first error of any phase.
pub fn compile_module_source(
    source: &str,
    opts: &CompileOptions,
) -> Result<CompileResult, CompileError> {
    compile_module_traced(source, opts, &Trace::disabled())
}

/// [`compile_module_source`] with span tracing. Driver-level work
/// (`parse`, `sema`, `link`, the module verify) lands on a `driver`
/// track; each function's compilation is wrapped in a `"worker"` span
/// on a `worker 0` track (the sequential compiler is the degenerate
/// one-worker case), with the per-pass spans nested inside it on the
/// same track. With a disabled trace this is exactly
/// [`compile_module_source`].
///
/// # Errors
///
/// Returns the first error of any phase.
pub fn compile_module_traced(
    source: &str,
    opts: &CompileOptions,
    trace: &Trace,
) -> Result<CompileResult, CompileError> {
    compile_module_inner(source, opts, None, trace)
}

/// The sequential compiler with an incremental cache in front of every
/// function compilation: only functions whose content address misses
/// `cache` are recompiled, everything else is fetched. The warm-build
/// entry point of `warpcc --cache-dir` in single-threaded mode.
///
/// # Errors
///
/// Returns the first error of any phase.
pub fn compile_module_cached(
    source: &str,
    opts: &CompileOptions,
    cache: &FnCache,
) -> Result<CompileResult, CompileError> {
    compile_module_inner(source, opts, Some(cache), &Trace::disabled())
}

/// [`compile_module_cached`] with span tracing: cache probes appear as
/// `"cache"` spans (`hit f` / `miss f`) next to the `"worker"` spans.
///
/// # Errors
///
/// Returns the first error of any phase.
pub fn compile_module_cached_traced(
    source: &str,
    opts: &CompileOptions,
    cache: &FnCache,
    trace: &Trace,
) -> Result<CompileResult, CompileError> {
    compile_module_inner(source, opts, Some(cache), trace)
}

fn compile_module_inner(
    source: &str,
    opts: &CompileOptions,
    cache: Option<&FnCache>,
    trace: &Trace,
) -> Result<CompileResult, CompileError> {
    let driver_track = trace.track("driver");
    let worker_track = trace.track("worker 0");
    let (checked, phase1_units, warnings) =
        prepare_module_traced(source, opts, trace, driver_track)?;
    let options_fp = cache.map(|_| options_fingerprint(opts));
    let mut images = Vec::new();
    let mut records = Vec::new();
    for si in 0..checked.module.sections.len() {
        for fi in 0..checked.module.sections[si].functions.len() {
            let span = trace.span(
                "worker",
                checked.module.sections[si].functions[fi].name.as_str(),
                worker_track,
            );
            let (img, rec) = match (cache, options_fp) {
                (Some(cache), Some(fp)) => compile_function_cached_traced(
                    &checked,
                    source,
                    si,
                    fi,
                    opts,
                    cache,
                    fp,
                    trace,
                    worker_track,
                )?,
                _ => compile_function_traced(&checked, source, si, fi, opts, trace, worker_track)?,
            };
            span.finish();
            images.push(img);
            records.push(rec);
        }
    }
    let (module_image, link_units) =
        link_module_traced(&checked, images, opts, trace, driver_track)?;
    if opts.verify_each_pass {
        let errs = warp_analyze::verify_module_image_traced(
            &module_image,
            &opts.cell,
            trace,
            driver_track,
        );
        if !errs.is_empty() {
            return Err(CompileError::MachineVerify(errs));
        }
    }
    Ok(CompileResult {
        module_image,
        records,
        phase1_units,
        link_units,
        warnings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_workload::{synthetic_program, FunctionSize};

    #[test]
    fn compiles_synthetic_small_program() {
        let src = synthetic_program(FunctionSize::Small, 2);
        let r = compile_module_source(&src, &CompileOptions::default()).expect("compile");
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.module_image.section_images.len(), 1);
        assert!(r.module_image.section_images[0]
            .functions
            .iter()
            .all(|f| f.is_linked()));
        assert!(r.phase1_units > 0);
        assert!(r.link_units > 0);
        assert!(r.total_units() > r.phase1_units);
    }

    #[test]
    fn work_grows_with_size() {
        let opts = CompileOptions::default();
        let mut last = 0u64;
        for size in [
            FunctionSize::Tiny,
            FunctionSize::Small,
            FunctionSize::Medium,
        ] {
            let src = synthetic_program(size, 1);
            let r = compile_module_source(&src, &opts).expect("compile");
            let units = r.records[0].compile_units();
            assert!(units > last, "{size}: {units} <= {last}");
            last = units;
        }
    }

    #[test]
    fn parsing_is_small_fraction_of_total() {
        // Paper §3.4: "a sequential compiler spends less than 5% of its
        // time on parsing".
        let src = synthetic_program(FunctionSize::Medium, 2);
        let r = compile_module_source(&src, &CompileOptions::default()).unwrap();
        let frac = r.phase1_units as f64 / r.total_units() as f64;
        assert!(frac < 0.05, "parse fraction {frac}");
    }

    #[test]
    fn phase1_error_aborts() {
        let err = compile_module_source("module broken;", &CompileOptions::default());
        assert!(matches!(err, Err(CompileError::Phase1(_))));
    }

    #[test]
    fn records_carry_cost_estimates() {
        let src = synthetic_program(FunctionSize::Large, 1);
        let r = compile_module_source(&src, &CompileOptions::default()).unwrap();
        let rec = &r.records[0];
        assert!(rec.cost_estimate > 0);
        assert!(rec.lines >= 280);
        assert!(rec.loop_depth >= 2);
        assert!(rec.object_bytes > 0);
    }

    #[test]
    fn parallel_phase1_is_identical_to_sequential() {
        use warp_workload::user_program;
        let mut sources = vec![user_program(), synthetic_program(FunctionSize::Small, 3)];
        // Comment-heavy source exercises the chunk-boundary scanner.
        sources.push(format!(
            "{{ leading block\ncomment }}\n{}\n-- trailing line comment",
            user_program()
        ));
        for src in &sources {
            let (seq, seq_units, seq_warn) = run_phase1(src).expect("sequential phase 1");
            for workers in [1, 2, 4, 8] {
                let (par, par_units, par_warn) =
                    run_phase1_parallel_traced(src, workers, &Trace::disabled(), TrackId(0))
                        .expect("parallel phase 1");
                assert_eq!(par, seq, "checked module mismatch at {workers} workers");
                assert_eq!(par_units, seq_units, "units mismatch at {workers} workers");
                assert_eq!(
                    par_warn, seq_warn,
                    "warning count mismatch at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn parallel_phase1_reports_sequential_errors() {
        for src in [
            "module broken;",
            "module m; section a on cells 0..0; function f(): float begin return q; end; end;",
            "module m; section a on cells 0..0; function f() begin x := section; end; end;",
            "module m; section a on cells 0..0; function f() begin t := ; end; end;",
        ] {
            let seq = run_phase1(src).expect_err("sequential rejects");
            let par = run_phase1_parallel_traced(src, 4, &Trace::disabled(), TrackId(0))
                .expect_err("parallel rejects");
            let (CompileError::Phase1(s), CompileError::Phase1(p)) = (seq, par) else {
                panic!("non-phase1 error")
            };
            assert_eq!(
                p.diagnostics, s.diagnostics,
                "diagnostics differ on {src:?}"
            );
            assert_eq!(p.rendered, s.rendered, "rendering differs on {src:?}");
        }
    }

    #[test]
    fn parallel_link_is_identical_to_sequential() {
        let src = warp_workload::user_program();
        let opts = CompileOptions::default();
        let (checked, _, _) = run_phase1(&src).expect("phase 1");
        let mut images = Vec::new();
        for si in 0..checked.module.sections.len() {
            for fi in 0..checked.module.sections[si].functions.len() {
                let (img, _) = compile_function(&checked, &src, si, fi, &opts).expect("compile");
                images.push(img);
            }
        }
        let (seq_image, seq_units) =
            link_module(&checked, images.clone(), &opts).expect("sequential link");
        for workers in [1, 2, 4, 8] {
            let (par_image, par_units) = link_module_parallel_traced(
                &checked,
                images.clone(),
                &opts,
                workers,
                &Trace::disabled(),
                TrackId(0),
            )
            .expect("parallel link");
            assert_eq!(
                par_image, seq_image,
                "module image mismatch at {workers} workers"
            );
            assert_eq!(
                par_units, seq_units,
                "link units mismatch at {workers} workers"
            );
        }
    }
}

#[cfg(test)]
mod probe {
    use super::*;
    use warp_workload::{synthetic_program, user_program, FunctionSize};

    /// Not a test: prints calibration data (work units and real wall
    /// time per size). Run with `cargo test -p parcc --release probe
    /// -- --ignored --nocapture`.
    #[test]
    #[ignore = "calibration probe, run manually"]
    fn probe_work_units() {
        let opts = CompileOptions::default();
        for size in FunctionSize::ALL {
            let src = synthetic_program(size, 1);
            let t0 = std::time::Instant::now();
            let r = compile_module_source(&src, &opts).expect("compile");
            let dt = t0.elapsed();
            let rec = &r.records[0];
            println!(
                "{size:>9}: lines={:>3} depth={} parse_u={:>6} p2_u={:>8} p3_u={:>9} total_u={:>9} obj={:>6}B wall={dt:?} (modulo_attempts={} pipelined={} spills={})",
                rec.lines,
                rec.loop_depth,
                rec.parse_units,
                rec.p2.units(),
                rec.p3.units(),
                rec.compile_units(),
                rec.object_bytes,
                rec.p3.modulo_attempts,
                rec.p3.pipelined_loops,
                rec.p3.spills,
            );
        }
        let src = user_program();
        let t0 = std::time::Instant::now();
        let r = compile_module_source(&src, &opts).expect("user program");
        println!(
            "user program: total_u={} wall={:?}",
            r.total_units(),
            t0.elapsed()
        );
        for rec in &r.records {
            println!(
                "  {:>14}: lines={:>3} units={:>9} est={:>6}",
                rec.name,
                rec.lines,
                rec.compile_units(),
                rec.cost_estimate
            );
        }
    }
}
