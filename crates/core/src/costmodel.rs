//! The 1989 cost model: how real compilation work maps onto the
//! simulated host.
//!
//! All calibration constants that are *not* part of the generic host
//! hardware ([`warp_netsim::HostConfig`]) live here: Lisp heap sizes,
//! message and file sizes, and the master/section-master bookkeeping
//! costs. `CALIBRATED` is the configuration that reproduces the
//! paper's figures; see EXPERIMENTS.md for the comparison.

use crate::driver::FunctionRecord;
use serde::{Deserialize, Serialize};
use warp_netsim::HostConfig;

/// Cost-model constants for replaying compilations in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// The simulated host hardware.
    pub host: HostConfig,
    /// Live heap of a freshly initialized Lisp compiler image, words.
    pub base_lisp_heap: u64,
    /// Additional live heap per source line while compiling a function.
    pub heap_per_line: u64,
    /// Live heap per source line for the master's parse-only Lisp
    /// child (ASTs are far more compact than the optimizer's working
    /// set).
    pub parse_heap_per_line: u64,
    /// Fixed additional heap per function compilation.
    pub fn_heap_base: u64,
    /// Fraction (×1000) of a function's compile heap the sequential
    /// compiler retains after finishing it (parse trees and images stay
    /// live until assembly).
    pub seq_retain_permille: u64,
    /// Extra live heap of the sequential compiler's image: it carries
    /// the parser, optimizer, code generator *and* assembler plus
    /// whole-module structures, where a function master only needs the
    /// middle phases for one function ("each works on a smaller
    /// subproblem", §4.2.3).
    pub seq_extra_heap: u64,
    /// Paging traffic a Lisp process sends to the file server (diskless
    /// workstations swap over the network): bytes per CPU work unit per
    /// unit of heap excess ratio. This interleaves with compilation and
    /// is the shared-resource cost that limits scaling (§5).
    pub swap_bytes_per_unit: f64,
    /// How many chunks a compile burst is split into so its paging I/O
    /// interleaves with other processes' traffic.
    pub compile_chunks: u64,
    /// Master bookkeeping units per section (scheduling time, §4.2.3).
    pub sched_units_per_section: u64,
    /// Section-master units per function (interpret directives, start a
    /// function master).
    pub section_units_per_fn: u64,
    /// Section-master units per function for combining results and
    /// diagnostics.
    pub combine_units_per_fn: u64,
    /// Bytes of control message master → section master.
    pub msg_bytes: u64,
    /// Bytes of diagnostics a function master ships back.
    pub diag_bytes: u64,
    /// CPU units the master spends probing the compilation cache for
    /// one function (hash the key, consult the index). Paid per
    /// function whenever the cache is enabled, hit or miss.
    pub cache_lookup_units: u64,
    /// Framing and metadata bytes fetched from the file server on top
    /// of the object itself when a cache hit is serviced (key echo,
    /// length, checksum — the `WARPFC01` envelope).
    pub cache_hit_overhead_bytes: u64,
}

impl CostModel {
    /// Live heap while a function master (or the sequential compiler)
    /// compiles `rec`.
    pub fn fn_heap(&self, rec: &FunctionRecord) -> u64 {
        self.fn_heap_base + self.heap_per_line * rec.lines as u64
    }

    /// Heap the sequential compiler retains after finishing `rec`.
    pub fn seq_retained(&self, rec: &FunctionRecord) -> u64 {
        self.fn_heap(rec) * self.seq_retain_permille / 1000
    }

    /// Paging bytes shipped to the file server while executing `units`
    /// of compile work with `heap` live words.
    pub fn swap_bytes(&self, units: u64, heap: u64) -> u64 {
        let mem = self.host.mem_words;
        if heap <= mem {
            return 0;
        }
        let excess = (heap - mem) as f64 / mem as f64;
        (units as f64 * self.swap_bytes_per_unit * excess) as u64
    }

    /// Bytes fetched from the file server to service a cache hit for
    /// `rec`: the stored object plus the store's framing overhead.
    /// This replaces the phase-2/3 CPU burst entirely — a warm build
    /// trades compilation for I/O.
    pub fn hit_fetch_bytes(&self, rec: &FunctionRecord) -> u64 {
        rec.object_bytes + self.cache_hit_overhead_bytes
    }
}

/// The calibrated model used by the figure harness.
pub const CALIBRATED: CostModel = CostModel {
    host: HostConfig {
        workstations: 15,
        cpu_units_per_sec: 950.0,
        mem_words: 1_050_000,
        ethernet_bytes_per_sec: 1_000_000.0,
        net_latency_s: 0.010,
        disk_bytes_per_sec: 600_000.0,
        disk_latency_s: 0.030,
        lisp_image_bytes: 7_000_000,
        lisp_init_units: 2_800,
        c_startup_units: 60,
        gc_coeff: 0.12,
        gc_scale: 1_500_000.0,
        gc_power: 1.2,
        page_coeff: 0.3,
        page_power: 1.0,
    },
    base_lisp_heap: 600_000,
    heap_per_line: 3_200,
    parse_heap_per_line: 150,
    fn_heap_base: 30_000,
    seq_retain_permille: 60,
    seq_extra_heap: 300_000,
    swap_bytes_per_unit: 253.0,
    compile_chunks: 4,
    sched_units_per_section: 120,
    section_units_per_fn: 60,
    combine_units_per_fn: 90,
    msg_bytes: 2_048,
    diag_bytes: 4_096,
    cache_lookup_units: 5,
    cache_hit_overhead_bytes: 512,
};

impl Default for CostModel {
    fn default() -> Self {
        CALIBRATED
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_codegen::phase3::Phase3Work;
    use warp_ir::phase2::Phase2Work;

    fn rec(lines: usize) -> FunctionRecord {
        FunctionRecord {
            section: 0,
            name: "f".into(),
            lines,
            loop_depth: 2,
            parse_units: 10,
            p2: Phase2Work::default(),
            p3: Phase3Work::default(),
            object_bytes: 1000,
            cost_estimate: 100,
            facts: None,
        }
    }

    #[test]
    fn heap_scales_with_lines() {
        let m = CALIBRATED;
        assert!(m.fn_heap(&rec(360)) > m.fn_heap(&rec(35)));
        assert!(m.seq_retained(&rec(100)) < m.fn_heap(&rec(100)));
    }

    #[test]
    fn calibrated_fn_master_heaps_relative_to_memory() {
        let m = CALIBRATED;
        // A large-function master fits in memory (with the base image);
        // the sequential compiler with several large functions does not.
        // A medium-function master fits in memory; the sequential
        // compiler's fatter image with the same function does not.
        let medium_par = m.base_lisp_heap + m.fn_heap(&rec(107));
        assert!(medium_par < m.host.mem_words, "{medium_par}");
        let medium_seq = medium_par + m.seq_extra_heap;
        assert!(medium_seq > m.host.mem_words, "{medium_seq}");
        // Paging traffic only above memory, growing with excess.
        assert_eq!(m.swap_bytes(1000, m.host.mem_words), 0);
        assert!(m.swap_bytes(1000, 2 * m.host.mem_words) > 0);
    }

    #[test]
    fn hit_service_is_far_cheaper_than_recompilation() {
        // The whole point of the cache: fetching a stored object costs
        // orders of magnitude less host time than phases 2 + 3. Check
        // the calibration preserves that for a real medium function.
        let m = CALIBRATED;
        let src = warp_workload::synthetic_program(warp_workload::FunctionSize::Medium, 1);
        let result =
            crate::driver::compile_module_source(&src, &crate::driver::CompileOptions::default())
                .expect("compile");
        let r = &result.records[0];
        let fetch_s = m.hit_fetch_bytes(r) as f64 / m.host.disk_bytes_per_sec
            + m.host.disk_latency_s
            + m.cache_lookup_units as f64 / m.host.cpu_units_per_sec;
        let compile_s = r.compile_units() as f64 / m.host.cpu_units_per_sec;
        assert!(
            fetch_s * 10.0 < compile_s,
            "fetch {fetch_s}s !<< compile {compile_s}s"
        );
    }
}
