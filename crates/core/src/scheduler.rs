//! Processor assignment for function masters.
//!
//! The paper uses a simple first-come-first-served distribution (§3.3)
//! for the synthetic experiments and, for the user program, a grouped
//! assignment driven by the lines-of-code × loop-nesting estimate
//! (§4.3: "smaller functions can be grouped and compiled on the same
//! processor, so the same speedup can be observed using fewer
//! processors").
//!
//! Both strategies schedule from the *a-priori* cost estimate
//! (`FunctionRecord::cost_estimate`, LoC × nesting), never from the
//! measured compile time — the master must place functions before
//! compiling them, exactly the information asymmetry the paper's §4.3
//! comparison is about. The two are compared head-to-head by
//! `figures scheduling` (EXPERIMENTS.md, "Scheduling comparison").

use crate::driver::FunctionRecord;
use serde::{Deserialize, Serialize};

/// A processor assignment: workstation index per function (parallel to
/// the record list). Workstation 0 is reserved for the master
/// processes, so assignments are ≥ 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Workstation per function.
    pub workstation: Vec<usize>,
    /// Number of distinct workstations used.
    pub processors: usize,
}

/// First-come-first-served: functions go to workstations `1..=avail`
/// in source order, wrapping when there are more functions than free
/// machines ("a simple first-come-first-served strategy that
/// distributes the tasks over the available processors", §3.3).
pub fn fcfs(n_functions: usize, available: usize) -> Assignment {
    let available = available.max(1);
    let workstation: Vec<usize> = (0..n_functions).map(|i| 1 + i % available).collect();
    let processors = n_functions.min(available);
    Assignment {
        workstation,
        processors,
    }
}

/// Grouped assignment onto exactly `processors` workstations using the
/// longest-processing-time heuristic over the a-priori cost estimates:
/// sort functions by decreasing estimate, always placing the next one
/// on the least-loaded machine.
pub fn grouped_lpt(records: &[FunctionRecord], processors: usize) -> Assignment {
    let estimates: Vec<u64> = records.iter().map(|r| r.cost_estimate).collect();
    grouped_lpt_estimates(&estimates, processors)
}

/// [`grouped_lpt`] over bare estimates — the schedulers only ever read
/// `FunctionRecord::cost_estimate`, and callers that plan before the
/// records exist (the farm coordinator, benches) pass the estimates
/// directly.
pub fn grouped_lpt_estimates(estimates: &[u64], processors: usize) -> Assignment {
    let processors = processors.max(1);
    let mut order: Vec<usize> = (0..estimates.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(estimates[i]));
    let mut load = vec![0u64; processors];
    let mut workstation = vec![0usize; estimates.len()];
    for i in order {
        let (best, _) = load
            .iter()
            .enumerate()
            .min_by_key(|&(w, l)| (*l, w))
            .expect("at least one processor");
        workstation[i] = 1 + best;
        load[best] += estimates[i].max(1);
    }
    Assignment {
        workstation,
        processors: estimates.len().min(processors),
    }
}

/// Repairs an assignment after losing workstations mid-build: every
/// function placed on a machine in `lost` is moved onto the surviving
/// machine with the least re-planned load (LPT over the a-priori
/// estimates of the displaced functions, heaviest first). Survivors
/// keep their original placement — the master only re-dispatches
/// orphaned work, it never migrates jobs that are still running.
///
/// If every workstation in the original assignment is lost, the
/// displaced functions all land on workstation 0 — the master's own
/// machine, the one host assumed reliable (the in-master sequential
/// fallback of `threads`).
pub fn rebalance_after_loss(
    assignment: &Assignment,
    records: &[FunctionRecord],
    lost: &[usize],
) -> Assignment {
    let estimates: Vec<u64> = records.iter().map(|r| r.cost_estimate).collect();
    rebalance_after_loss_estimates(assignment, &estimates, lost)
}

/// [`rebalance_after_loss`] over bare estimates (see
/// [`grouped_lpt_estimates`]).
pub fn rebalance_after_loss_estimates(
    assignment: &Assignment,
    estimates: &[u64],
    lost: &[usize],
) -> Assignment {
    let is_lost = |w: usize| lost.contains(&w);
    // Surviving stations and their retained load.
    let mut load: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
    for (i, &w) in assignment.workstation.iter().enumerate() {
        if !is_lost(w) {
            *load.entry(w).or_insert(0) += estimates[i].max(1);
        }
    }
    let mut workstation = assignment.workstation.clone();
    let mut displaced: Vec<usize> = (0..workstation.len())
        .filter(|&i| is_lost(workstation[i]))
        .collect();
    displaced.sort_by_key(|&i| (std::cmp::Reverse(estimates[i]), i));
    for i in displaced {
        match load.iter().min_by_key(|&(&w, &l)| (l, w)).map(|(&w, _)| w) {
            Some(best) => {
                workstation[i] = best;
                *load.get_mut(&best).expect("surviving station") += estimates[i].max(1);
            }
            None => workstation[i] = 0,
        }
    }
    let mut used: Vec<usize> = workstation.clone();
    used.sort_unstable();
    used.dedup();
    Assignment {
        workstation,
        processors: used.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use warp_codegen::phase3::Phase3Work;
    use warp_ir::phase2::Phase2Work;

    fn rec(cost: u64) -> FunctionRecord {
        FunctionRecord {
            section: 0,
            name: format!("f{cost}"),
            lines: 10,
            loop_depth: 1,
            parse_units: 1,
            p2: Phase2Work::default(),
            p3: Phase3Work::default(),
            object_bytes: 1,
            cost_estimate: cost,
            facts: None,
        }
    }

    #[test]
    fn fcfs_spreads_then_wraps() {
        let a = fcfs(5, 3);
        assert_eq!(a.workstation, vec![1, 2, 3, 1, 2]);
        assert_eq!(a.processors, 3);
        let b = fcfs(2, 8);
        assert_eq!(b.workstation, vec![1, 2]);
        assert_eq!(b.processors, 2);
    }

    #[test]
    fn lpt_separates_heavy_functions() {
        // Three heavy + three light onto 3 processors: each machine gets
        // one heavy function.
        let records = vec![rec(100), rec(5), rec(100), rec(6), rec(100), rec(7)];
        let a = grouped_lpt(&records, 3);
        let heavy_ws: Vec<usize> = [0, 2, 4].iter().map(|&i| a.workstation[i]).collect();
        let mut sorted = heavy_ws.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            3,
            "each heavy function on its own machine: {a:?}"
        );
    }

    #[test]
    fn lpt_balances_load() {
        let records: Vec<FunctionRecord> = [40, 30, 20, 10, 10, 10].map(rec).into();
        let a = grouped_lpt(&records, 2);
        let mut load = [0u64; 2];
        for (i, r) in records.iter().enumerate() {
            load[a.workstation[i] - 1] += r.cost_estimate;
        }
        let diff = load[0].abs_diff(load[1]);
        assert!(diff <= 10, "{load:?}");
    }

    #[test]
    fn single_processor_groups_everything() {
        let records = vec![rec(10), rec(20)];
        let a = grouped_lpt(&records, 1);
        assert!(a.workstation.iter().all(|&w| w == 1));
    }

    #[test]
    fn rebalance_moves_only_displaced_functions() {
        let records = vec![rec(40), rec(30), rec(20), rec(10)];
        let a = grouped_lpt(&records, 4);
        let lost_ws = a.workstation[1];
        let r = rebalance_after_loss(&a, &records, &[lost_ws]);
        for (i, (&before, &after)) in a.workstation.iter().zip(&r.workstation).enumerate() {
            if before == lost_ws {
                assert_ne!(after, lost_ws, "function {i} must leave the lost machine");
            } else {
                assert_eq!(before, after, "function {i} must not migrate");
            }
        }
        assert_eq!(r.processors, 3);
    }

    #[test]
    fn rebalance_balances_displaced_load_lpt() {
        // Two survivors with loads 10 and 20; displaced 40 and 30 from
        // the lost machine: 40 → lighter (ws of load 10), 30 → the
        // other (now 20 < 50).
        let records = vec![rec(10), rec(20), rec(40), rec(30)];
        let a = Assignment {
            workstation: vec![1, 2, 3, 3],
            processors: 3,
        };
        let r = rebalance_after_loss(&a, &records, &[3]);
        assert_eq!(r.workstation, vec![1, 2, 1, 2]);
    }

    #[test]
    fn rebalance_with_no_survivors_falls_back_to_master() {
        let records = vec![rec(10), rec(20)];
        let a = Assignment {
            workstation: vec![1, 1],
            processors: 1,
        };
        let r = rebalance_after_loss(&a, &records, &[1]);
        assert_eq!(
            r.workstation,
            vec![0, 0],
            "everything on the master's machine"
        );
    }

    #[test]
    fn rebalance_is_identity_when_nothing_lost() {
        let records = vec![rec(10), rec(20), rec(30)];
        let a = grouped_lpt(&records, 2);
        let r = rebalance_after_loss(&a, &records, &[]);
        assert_eq!(a.workstation, r.workstation);
    }
}
