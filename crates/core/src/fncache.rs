//! Content-addressed incremental function compilation.
//!
//! The unit of caching is the unit of parallelism: one *function*
//! (phases 2 + 3, exactly what a function master computes). A cached
//! entry is the pair `(FunctionImage, FunctionRecord)` — the pre-link
//! object plus the deterministic work profile the simulator replays —
//! keyed by a stable hash of everything that compilation reads:
//!
//! * the function's **source slice** (drives `lines`, `parse_units`
//!   and the a-priori cost estimate in the record);
//! * the function's **post-inline AST** (under `--inline` a function's
//!   body also depends on its callees' bodies; the pretty-printed AST
//!   is what phase 2 actually lowers);
//! * the **module-level interface** the function can see: every
//!   signature of its section, sorted by name (calls compile against
//!   these), plus the section index;
//! * the [`CompileOptions`] **fingerprint** and the **compiler
//!   version** ([`options_fingerprint`]): any knob that changes
//!   generated code changes every key.
//!
//! Because the key covers all inputs, a hit may simply return the
//! stored pair — the invalidation tests in
//! `crates/core/tests/cache_invalidation.rs` pin the contract, and the
//! determinism property test asserts bit-identical module images for
//! cold vs warm builds at every worker count.

use crate::driver::{CompileOptions, FunctionRecord};
use warp_cache::{Cache, CacheKey, CacheValue, StableHasher};
use warp_codegen::phase3::Phase3Work;
use warp_ir::phase2::Phase2Work;
use warp_ir::{DeadEdge, FactSet, LoopBound, Site};
use warp_lang::ast::Function;
use warp_lang::CheckedModule;
use warp_target::download::{decode_function, encode_function};
use warp_target::program::FunctionImage;

/// Bump when the cached payload layout or the key recipe changes:
/// old on-disk objects then decode-fail (payload) or simply never
/// match (key), both degrading to misses.
pub const KEY_SCHEMA_VERSION: u32 = 2;

/// The function-compilation cache: what `warpcc --cache-dir` opens and
/// the cached driver entry points consume.
pub type FnCache = Cache<CachedFunction>;

/// One cached function compilation: the pre-link image plus its work
/// record.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedFunction {
    /// The compiled (unlinked) function image.
    pub image: FunctionImage,
    /// The work profile measured when the function was compiled.
    pub record: FunctionRecord,
}

/// Fingerprint of every compilation option that can change generated
/// code, salted with the compiler version and the cache schema
/// version. Computed once per build and folded into every function
/// key.
pub fn options_fingerprint(opts: &CompileOptions) -> u64 {
    let mut h = StableHasher::new();
    h.str(env!("CARGO_PKG_VERSION"));
    h.u32(KEY_SCHEMA_VERSION);
    h.u32(opts.cell.cells);
    h.u32(u32::from(opts.cell.num_regs));
    h.u32(opts.cell.data_mem_words);
    h.u32(opts.cell.inst_mem_words);
    h.u32(opts.cell.queue_depth);
    h.u32(opts.max_ii);
    match &opts.inline {
        None => h.bool(false),
        Some(p) => h
            .bool(true)
            .u64(p.max_callee_stmts as u64)
            .u64(p.max_rounds as u64)
            .bool(p.drop_subsumed),
    };
    match &opts.unroll {
        None => h.bool(false),
        Some(p) => h.bool(true).u32(p.factor).u64(p.max_body_insts as u64),
    };
    match &opts.if_convert {
        None => h.bool(false),
        Some(p) => h
            .bool(true)
            .u64(p.max_side_insts as u64)
            .u64(p.max_rounds as u64),
    };
    h.bool(opts.verify_each_pass);
    h.bool(opts.absint);
    h.finish()
}

/// Feeds the compiled form of `func` — the post-inline AST, exactly
/// what phase 2 lowers — into the hasher, via the canonical
/// pretty-printer.
fn hash_function_ast(h: &mut StableHasher, func: &Function) {
    h.str(&func.name);
    h.u64(func.params.len() as u64);
    for p in &func.params {
        h.str(&p.name);
        h.str(&format!("{:?}", p.ty));
    }
    match &func.ret {
        None => h.bool(false),
        Some(ty) => h.bool(true).str(&format!("{ty:?}")),
    };
    h.u64(func.vars.len() as u64);
    for v in &func.vars {
        h.str(&v.name);
        h.str(&format!("{:?}", v.ty));
    }
    h.u64(func.body.len() as u64);
    for stmt in &func.body {
        h.str(&warp_lang::pretty::stmt_to_source(stmt));
    }
}

/// The content address of compiling function `fi` of section `si`:
/// source slice, post-inline AST, section interface, section index
/// and options fingerprint (see the module docs for why each input is
/// required).
pub fn function_key(
    checked: &CheckedModule,
    source: &str,
    si: usize,
    fi: usize,
    options_fp: u64,
) -> CacheKey {
    let func = &checked.module.sections[si].functions[fi];
    let mut h = StableHasher::new();
    h.u64(options_fp);
    h.u64(si as u64);
    h.str(func.span.slice(source));
    hash_function_ast(&mut h, func);
    let sigs = &checked.sections[si].signatures;
    let mut names: Vec<&String> = sigs.keys().collect();
    names.sort();
    h.u64(names.len() as u64);
    for name in names {
        let sig = &sigs[name];
        h.str(&sig.name);
        h.u64(sig.params.len() as u64);
        for ty in &sig.params {
            h.str(&format!("{ty:?}"));
        }
        match &sig.ret {
            None => h.bool(false),
            Some(ty) => h.bool(true).str(&format!("{ty:?}")),
        };
    }
    h.key()
}

// ---- payload codec -------------------------------------------------

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

struct Take<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Take<'a> {
    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let v = u64::from_le_bytes(self.bytes.get(self.pos..end)?.try_into().ok()?);
        self.pos = end;
        Some(v)
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn str(&mut self) -> Option<String> {
        let len = self.usize()?;
        let end = self.pos.checked_add(len)?;
        let s = String::from_utf8(self.bytes.get(self.pos..end)?.to_vec()).ok()?;
        self.pos = end;
        Some(s)
    }

    fn blob(&mut self) -> Option<&'a [u8]> {
        let len = self.usize()?;
        let end = self.pos.checked_add(len)?;
        let b = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(b)
    }
}

impl CacheValue for CachedFunction {
    fn to_bytes(&self) -> Vec<u8> {
        let image = encode_function(&self.image)
            .expect("a compiled function image always fits the download format");
        let r = &self.record;
        let mut buf = Vec::with_capacity(image.len() + 256);
        put_u64(&mut buf, image.len() as u64);
        buf.extend_from_slice(&image);
        put_u64(&mut buf, r.section as u64);
        put_str(&mut buf, &r.name);
        put_u64(&mut buf, r.lines as u64);
        put_u64(&mut buf, r.loop_depth as u64);
        put_u64(&mut buf, r.parse_units);
        for v in [
            r.p2.lowered_insts,
            r.p2.optimized_insts,
            r.p2.opt_visits,
            r.p2.opt_iterations,
            r.p2.dep_tests,
            r.p2.dep_edges,
            r.p2.loops,
            r.p2.absint_iterations,
            r.p2.branches_pruned,
            r.p2.trap_checks_elided,
            r.p3.ops_selected,
            r.p3.regalloc_rounds,
            r.p3.spills,
            r.p3.list_attempts,
            r.p3.modulo_attempts,
            r.p3.dep_tests,
            r.p3.pipelined_loops,
            r.p3.fallback_loops,
        ] {
            put_u64(&mut buf, v as u64);
        }
        put_u64(&mut buf, u64::from(r.p3.words));
        put_u64(&mut buf, r.object_bytes);
        put_u64(&mut buf, r.cost_estimate);
        put_facts(&mut buf, r.facts.as_ref());
        buf
    }

    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut t = Take { bytes, pos: 0 };
        let image = decode_function(t.blob()?).ok()?;
        let section = t.usize()?;
        let name = t.str()?;
        let lines = t.usize()?;
        let loop_depth = t.usize()?;
        let parse_units = t.u64()?;
        let mut p2 = Phase2Work::default();
        let mut p3 = Phase3Work::default();
        for field in [
            &mut p2.lowered_insts,
            &mut p2.optimized_insts,
            &mut p2.opt_visits,
            &mut p2.opt_iterations,
            &mut p2.dep_tests,
            &mut p2.dep_edges,
            &mut p2.loops,
            &mut p2.absint_iterations,
            &mut p2.branches_pruned,
            &mut p2.trap_checks_elided,
            &mut p3.ops_selected,
            &mut p3.regalloc_rounds,
            &mut p3.spills,
            &mut p3.list_attempts,
            &mut p3.modulo_attempts,
            &mut p3.dep_tests,
            &mut p3.pipelined_loops,
            &mut p3.fallback_loops,
        ] {
            *field = t.usize()?;
        }
        p3.words = u32::try_from(t.u64()?).ok()?;
        let object_bytes = t.u64()?;
        let cost_estimate = t.u64()?;
        let facts = take_facts(&mut t)?;
        if t.pos != bytes.len() {
            return None;
        }
        Some(CachedFunction {
            image,
            record: FunctionRecord {
                section,
                name,
                lines,
                loop_depth,
                parse_units,
                p2,
                p3,
                object_bytes,
                cost_estimate,
                facts,
            },
        })
    }
}

/// Appends an optional [`FactSet`] to the payload (presence flag, the
/// scalar counters and summary bits, then the three claim lists).
fn put_facts(buf: &mut Vec<u8>, facts: Option<&FactSet>) {
    let Some(f) = facts else {
        put_u64(buf, 0);
        return;
    };
    put_u64(buf, 1);
    put_u64(buf, f.iterations as u64);
    for v in [
        f.div_sites,
        f.div_safe,
        f.mem_sites,
        f.mem_safe,
        f.consume_sites,
        f.consume_safe,
    ] {
        put_u64(buf, u64::from(v));
    }
    for b in [
        f.div_trap_free,
        f.mem_trap_free,
        f.def_free,
        f.finite_return,
    ] {
        put_u64(buf, u64::from(b));
    }
    for sites in [&f.safe_divs, &f.safe_mems] {
        put_u64(buf, sites.len() as u64);
        for s in sites {
            put_u64(buf, u64::from(s.block));
            put_u64(buf, u64::from(s.inst));
        }
    }
    put_u64(buf, f.dead_edges.len() as u64);
    for e in &f.dead_edges {
        put_u64(buf, u64::from(e.block));
        put_u64(buf, u64::from(e.always_then));
    }
    put_u64(buf, f.loop_bounds.len() as u64);
    for l in &f.loop_bounds {
        put_u64(buf, u64::from(l.block));
        put_u64(buf, l.max_trips);
    }
}

fn take_facts(t: &mut Take<'_>) -> Option<Option<FactSet>> {
    let tag = t.u64()?;
    if tag == 0 {
        return Some(None);
    }
    if tag != 1 {
        return None;
    }
    let mut f = FactSet {
        iterations: t.usize()?,
        ..FactSet::default()
    };
    for field in [
        &mut f.div_sites,
        &mut f.div_safe,
        &mut f.mem_sites,
        &mut f.mem_safe,
        &mut f.consume_sites,
        &mut f.consume_safe,
    ] {
        *field = u32::try_from(t.u64()?).ok()?;
    }
    for field in [
        &mut f.div_trap_free,
        &mut f.mem_trap_free,
        &mut f.def_free,
        &mut f.finite_return,
    ] {
        *field = match t.u64()? {
            0 => false,
            1 => true,
            _ => return None,
        };
    }
    for sites in [&mut f.safe_divs, &mut f.safe_mems] {
        let n = t.usize()?;
        for _ in 0..n {
            let block = u32::try_from(t.u64()?).ok()?;
            let inst = u32::try_from(t.u64()?).ok()?;
            sites.push(Site { block, inst });
        }
    }
    let n = t.usize()?;
    for _ in 0..n {
        let block = u32::try_from(t.u64()?).ok()?;
        let always_then = match t.u64()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        f.dead_edges.push(DeadEdge { block, always_then });
    }
    let n = t.usize()?;
    for _ in 0..n {
        let block = u32::try_from(t.u64()?).ok()?;
        let max_trips = t.u64()?;
        f.loop_bounds.push(LoopBound { block, max_trips });
    }
    Some(Some(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{compile_function, prepare_module};
    use warp_workload::{synthetic_program, FunctionSize};

    fn checked_small() -> (CheckedModule, String) {
        let src = synthetic_program(FunctionSize::Small, 2);
        let opts = CompileOptions::default();
        let (checked, _, _) = prepare_module(&src, &opts).expect("phase 1");
        (checked, src)
    }

    #[test]
    fn payload_round_trips() {
        let (checked, src) = checked_small();
        let opts = CompileOptions::default();
        let (image, record) = compile_function(&checked, &src, 0, 0, &opts).expect("compile");
        let cached = CachedFunction { image, record };
        let bytes = cached.to_bytes();
        assert_eq!(CachedFunction::from_bytes(&bytes), Some(cached));
        // Any truncation is rejected, not misread.
        assert_eq!(CachedFunction::from_bytes(&bytes[..bytes.len() - 1]), None);
        assert_eq!(CachedFunction::from_bytes(&[]), None);
    }

    #[test]
    fn payload_round_trips_with_facts() {
        let (checked, src) = checked_small();
        let opts = CompileOptions {
            absint: true,
            ..CompileOptions::default()
        };
        let (image, record) = compile_function(&checked, &src, 0, 0, &opts).expect("compile");
        assert!(record.facts.is_some(), "absint build must ship facts");
        let cached = CachedFunction { image, record };
        let bytes = cached.to_bytes();
        assert_eq!(CachedFunction::from_bytes(&bytes), Some(cached));
        assert_eq!(CachedFunction::from_bytes(&bytes[..bytes.len() - 1]), None);
    }

    #[test]
    fn keys_differ_per_function_and_options() {
        let (checked, src) = checked_small();
        let fp = options_fingerprint(&CompileOptions::default());
        let k0 = function_key(&checked, &src, 0, 0, fp);
        let k1 = function_key(&checked, &src, 0, 1, fp);
        assert_ne!(k0, k1, "distinct functions must have distinct keys");

        let mut opts = CompileOptions::default();
        opts.max_ii += 1;
        let fp2 = options_fingerprint(&opts);
        assert_ne!(fp, fp2);
        assert_ne!(k0, function_key(&checked, &src, 0, 0, fp2));
    }

    #[test]
    fn key_is_stable_across_recomputation() {
        let (checked, src) = checked_small();
        let fp = options_fingerprint(&CompileOptions::default());
        assert_eq!(
            function_key(&checked, &src, 0, 0, fp),
            function_key(&checked, &src, 0, 0, fp)
        );
    }

    #[test]
    fn every_option_knob_changes_the_fingerprint() {
        let base = options_fingerprint(&CompileOptions::default());
        let mut cell = CompileOptions::default();
        cell.cell.num_regs += 1;
        let ii = CompileOptions {
            max_ii: CompileOptions::default().max_ii + 1,
            ..CompileOptions::default()
        };
        let inline = CompileOptions::with_inlining();
        let unroll = CompileOptions {
            unroll: Some(warp_ir::UnrollPolicy::default()),
            ..CompileOptions::default()
        };
        let ifc = CompileOptions {
            if_convert: Some(warp_ir::IfConvPolicy::default()),
            ..CompileOptions::default()
        };
        let verify = CompileOptions {
            verify_each_pass: true,
            ..CompileOptions::default()
        };
        let absint = CompileOptions {
            absint: true,
            ..CompileOptions::default()
        };
        let fps: Vec<u64> = [cell, ii, inline, unroll, ifc, verify, absint]
            .iter()
            .map(options_fingerprint)
            .collect();
        for (i, fp) in fps.iter().enumerate() {
            assert_ne!(*fp, base, "knob {i} did not change the fingerprint");
        }
    }
}
