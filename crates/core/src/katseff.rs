//! The §4.2.2 cross-check: a data-partitioned parallel assembler.
//!
//! The paper compares its measurements with Katseff's parallel
//! assembler (*Using Data Partitioning to Implement a Parallel
//! Assembler*, PPEALS 1988): "the speedup reported is about 6 for a
//! large program and 4 for a small one; adding processors past 8 for
//! the large program (5 for the small one) yields no further decrease
//! in elapsed time. Since the amount of computation per processor is
//! larger in our system, we are able to use more processors but also
//! observe the dependence on the input size."
//!
//! This module reproduces that experiment shape on our stack: the
//! *assembly* of a compiled module (rebasing, call resolution, output
//! formatting) is data-partitioned across `k` assembler processes on
//! the simulated host, with a sequential merge — the finer-grain,
//! lower-computation-per-processor regime Katseff studied. The
//! partition count is bounded by the number of functions, so the
//! speedup curve saturates exactly when processors outnumber
//! partitions — the saturation points the paper correlates with its
//! own measurements (`figures katseff`, EXPERIMENTS.md "Katseff's
//! parallel assembler").

use crate::costmodel::CostModel;
use crate::driver::{compile_module_source, CompileError, CompileResult};
use crate::experiment::Experiment;
use serde::{Deserialize, Serialize};
use warp_netsim::{simulate, ProcKind, ProcessSpec};
use warp_workload::{synthetic_program, FunctionSize};

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssemblerPoint {
    /// Assembler processes used.
    pub processors: usize,
    /// Simulated elapsed seconds.
    pub elapsed_s: f64,
    /// Speedup over one assembler.
    pub speedup: f64,
}

/// Sweep results for one program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssemblerSweep {
    /// Label ("large program" / "small program").
    pub label: String,
    /// Number of partitionable units (functions).
    pub functions: usize,
    /// Points for 1..=max processors.
    pub points: Vec<AssemblerPoint>,
}

/// Assembly work for one function, in simulator units. Assembly is
/// much cheaper per item than compilation — the point of the
/// comparison: finer grain saturates earlier.
fn asm_units(rec: &crate::driver::FunctionRecord) -> u64 {
    u64::from(rec.p3.words) * 26 + rec.object_bytes / 16
}

/// Builds the simulated parallel assembly of `result` on `k`
/// assemblers: partition functions LPT by assembly work, one C process
/// per assembler, then a sequential merge pass.
fn assembly_spec(result: &CompileResult, cm: &CostModel, k: usize) -> ProcessSpec {
    let k = k.max(1);
    // LPT partition of functions by assembly work.
    let mut order: Vec<usize> = (0..result.records.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(asm_units(&result.records[i])));
    let mut shares: Vec<(u64, Vec<usize>)> = vec![(0, Vec::new()); k.min(order.len()).max(1)];
    for i in order {
        let (load, items) = shares
            .iter_mut()
            .min_by_key(|(l, _)| *l)
            .expect("at least one share");
        *load += asm_units(&result.records[i]);
        items.push(i);
    }

    let assemblers: Vec<ProcessSpec> = shares
        .iter()
        .enumerate()
        .filter(|(_, (_, items))| !items.is_empty())
        .map(|(a, (load, items))| {
            let objects: u64 = items.iter().map(|&i| result.records[i].object_bytes).sum();
            ProcessSpec::new(
                format!("assembler {a}"),
                1 + a % (cm.host.workstations - 1),
                ProcKind::C,
            )
            // Read the objects from the file server, assemble, write
            // the partial output back.
            .disk(objects)
            .cpu(*load)
            .disk(objects / 2)
        })
        .collect();

    let total_out: u64 = result.records.iter().map(|r| r.object_bytes).sum();
    let merge_units: u64 =
        result.records.iter().map(asm_units).sum::<u64>() / 18 + result.records.len() as u64 * 40;
    ProcessSpec::new("asm-master", 0, ProcKind::C)
        .fork(assemblers)
        .join()
        // Sequential merge and final download-module formatting.
        .cpu(merge_units)
        .disk(total_out / 2)
}

/// Runs the sweep for one program.
///
/// # Errors
///
/// Propagates compilation errors.
pub fn assembler_sweep(
    e: &Experiment,
    label: &str,
    size: FunctionSize,
    n: usize,
    max_procs: usize,
) -> Result<AssemblerSweep, CompileError> {
    let src = synthetic_program(size, n);
    let result = compile_module_source(&src, &e.opts)?;
    let base = simulate(e.model.host, assembly_spec(&result, &e.model, 1)).elapsed_s;
    let points = (1..=max_procs)
        .map(|k| {
            let elapsed = simulate(e.model.host, assembly_spec(&result, &e.model, k)).elapsed_s;
            AssemblerPoint {
                processors: k,
                elapsed_s: elapsed,
                speedup: base / elapsed,
            }
        })
        .collect();
    Ok(AssemblerSweep {
        label: label.to_string(),
        functions: result.records.len(),
        points,
    })
}

/// The two sweeps of the Katseff comparison: a large and a small
/// program.
///
/// # Errors
///
/// Propagates compilation errors.
pub fn katseff_comparison(e: &Experiment) -> Result<Vec<AssemblerSweep>, CompileError> {
    Ok(vec![
        assembler_sweep(e, "large program", FunctionSize::Large, 8, 12)?,
        assembler_sweep(e, "small program", FunctionSize::Small, 5, 12)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_show_saturation_at_partition_count() {
        let e = Experiment::default();
        let sweeps = katseff_comparison(&e).expect("sweeps");
        let large = &sweeps[0];
        let small = &sweeps[1];

        // Speedup grows up to the partition count…
        let s8 = large.points[7].speedup;
        assert!(s8 > 3.0, "large @8: {s8}");
        // …and flattens beyond it (paper: "adding processors past 8 …
        // yields no further decrease in elapsed time").
        let s12 = large.points[11].speedup;
        assert!(
            (s12 - s8).abs() / s8 < 0.02,
            "large saturation: {s8} vs {s12}"
        );

        // The small program saturates at its 5 functions.
        let s5 = small.points[4].speedup;
        let s12s = small.points[11].speedup;
        assert!(
            (s12s - s5).abs() / s5 < 0.02,
            "small saturation: {s5} vs {s12s}"
        );
        // And tops out below the large program.
        assert!(s5 < s8, "small {s5} !< large {s8}");
    }

    #[test]
    fn speedups_monotone_until_saturation() {
        let e = Experiment::default();
        let s = assembler_sweep(&e, "t", FunctionSize::Large, 8, 8).unwrap();
        for w in s.points.windows(2) {
            assert!(
                w[1].speedup >= w[0].speedup * 0.98,
                "non-monotone: {:?}",
                s.points
            );
        }
    }
}
