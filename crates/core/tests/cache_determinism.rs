//! Determinism of cached and parallel compilation: the bits of the
//! download module must not depend on worker count, dispatch order, or
//! whether a function was compiled or fetched from the cache.
//!
//! This is what makes the cache sound to use at all — a hit must be
//! indistinguishable from a recompilation.

use parcc::threads::{compile_parallel, compile_parallel_cached};
use parcc::{compile_module_source, CompileOptions, CompileResult, FnCache};
use proptest::prelude::*;
use warp_workload::{synthetic_program, FunctionSize};

fn image_bytes(r: &CompileResult) -> Vec<u8> {
    warp_target::download::encode(&r.module_image).expect("encode module")
}

/// Compiles `src` every way — sequential, parallel at several widths,
/// cold cached, warm cached — and asserts all outputs are bit-identical.
fn assert_all_ways_identical(src: &str, opts: &CompileOptions) {
    let reference = compile_module_source(src, opts).expect("sequential");
    let ref_bytes = image_bytes(&reference);

    for workers in [1usize, 2, 4, 8] {
        let (par, _) = compile_parallel(src, opts, workers).expect("parallel");
        assert_eq!(
            image_bytes(&par),
            ref_bytes,
            "uncached parallel ({workers} workers) diverged from sequential"
        );
        assert_eq!(par.records, reference.records, "records diverged at {workers} workers");

        let cache = FnCache::in_memory();
        let (cold, _) =
            compile_parallel_cached(src, opts, workers, &cache).expect("cold cached");
        assert_eq!(
            image_bytes(&cold),
            ref_bytes,
            "cold cached parallel ({workers} workers) diverged"
        );
        let (warm, _) =
            compile_parallel_cached(src, opts, workers, &cache).expect("warm cached");
        assert_eq!(
            image_bytes(&warm),
            ref_bytes,
            "warm cached parallel ({workers} workers) diverged"
        );
        assert_eq!(warm.records, reference.records, "warm records diverged");
        let stats = cache.stats();
        assert_eq!(
            stats.hits(),
            reference.records.len() as u64,
            "warm rebuild must hit every function: {stats}"
        );
    }
}

#[test]
fn fig6_workload_is_bit_identical_every_way() {
    let src = synthetic_program(FunctionSize::Medium, 8);
    assert_all_ways_identical(&src, &CompileOptions::default());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Random (size, n) workloads stay bit-identical across worker
    /// counts and cache temperature.
    #[test]
    fn arbitrary_workloads_are_bit_identical(size_idx in 0usize..3, n in 1usize..5) {
        let size = [FunctionSize::Tiny, FunctionSize::Small, FunctionSize::Medium][size_idx];
        let src = synthetic_program(size, n);
        assert_all_ways_identical(&src, &CompileOptions::default());
    }
}
