//! Determinism of cached and parallel compilation: the bits of the
//! download module must not depend on worker count, dispatch order, or
//! whether a function was compiled or fetched from the cache.
//!
//! This is what makes the cache sound to use at all — a hit must be
//! indistinguishable from a recompilation.

use parcc::threads::{
    compile_parallel, compile_parallel_cached, compile_parallel_chaos_cached, ChaosPlan,
    RetryPolicy,
};
use parcc::{compile_module_source, CompileOptions, CompileResult, FnCache};
use proptest::prelude::*;
use std::time::Duration;
use warp_workload::{synthetic_program, FunctionSize};

fn image_bytes(r: &CompileResult) -> Vec<u8> {
    warp_target::download::encode(&r.module_image).expect("encode module")
}

/// Compiles `src` every way — sequential, parallel at several widths,
/// cold cached, warm cached — and asserts all outputs are bit-identical.
fn assert_all_ways_identical(src: &str, opts: &CompileOptions) {
    let reference = compile_module_source(src, opts).expect("sequential");
    let ref_bytes = image_bytes(&reference);

    for workers in [1usize, 2, 4, 8] {
        let (par, _) = compile_parallel(src, opts, workers).expect("parallel");
        assert_eq!(
            image_bytes(&par),
            ref_bytes,
            "uncached parallel ({workers} workers) diverged from sequential"
        );
        assert_eq!(
            par.records, reference.records,
            "records diverged at {workers} workers"
        );

        let cache = FnCache::in_memory();
        let (cold, _) = compile_parallel_cached(src, opts, workers, &cache).expect("cold cached");
        assert_eq!(
            image_bytes(&cold),
            ref_bytes,
            "cold cached parallel ({workers} workers) diverged"
        );
        let (warm, _) = compile_parallel_cached(src, opts, workers, &cache).expect("warm cached");
        assert_eq!(
            image_bytes(&warm),
            ref_bytes,
            "warm cached parallel ({workers} workers) diverged"
        );
        assert_eq!(warm.records, reference.records, "warm records diverged");
        let stats = cache.stats();
        assert_eq!(
            stats.hits(),
            reference.records.len() as u64,
            "warm rebuild must hit every function: {stats}"
        );
    }
}

#[test]
fn fig6_workload_is_bit_identical_every_way() {
    let src = synthetic_program(FunctionSize::Medium, 8);
    assert_all_ways_identical(&src, &CompileOptions::default());
}

#[test]
fn chaos_matrix_is_bit_identical_across_workers_and_cache_temperature() {
    // The full determinism matrix the work-stealing executor must
    // survive: 1/2/4/8 workers × {cold, warm cache} × the eight CI
    // chaos seeds. Warm runs take pure cache hits, so faults there
    // only strike the (empty) compile set — the interesting half is
    // cold-with-chaos, but warm must stay byte-stable too.
    let opts = CompileOptions::default();
    let src = synthetic_program(FunctionSize::Small, 6);
    let reference = compile_module_source(&src, &opts).expect("sequential");
    let ref_bytes = image_bytes(&reference);
    let policy = RetryPolicy::fast(Duration::from_millis(200), 3);

    for workers in [1usize, 2, 4, 8] {
        for seed in 1u64..=8 {
            let chaos = ChaosPlan::from_seed(seed);
            let cache = FnCache::in_memory();
            let (cold, _) =
                compile_parallel_chaos_cached(&src, &opts, workers, &cache, &chaos, &policy)
                    .expect("cold chaos compile");
            assert_eq!(
                image_bytes(&cold),
                ref_bytes,
                "cold cache, {workers} workers, seed {seed}: diverged"
            );
            let (warm, _) =
                compile_parallel_chaos_cached(&src, &opts, workers, &cache, &chaos, &policy)
                    .expect("warm chaos compile");
            assert_eq!(
                image_bytes(&warm),
                ref_bytes,
                "warm cache, {workers} workers, seed {seed}: diverged"
            );
            assert_eq!(warm.records, reference.records, "warm records diverged");
        }
    }
}

#[test]
fn every_example_program_is_bit_identical_under_chaos() {
    // The acceptance bar from the executor rewrite: every checked-in
    // example reproduces the sequential bits under every chaos seed.
    let opts = CompileOptions::default();
    let policy = RetryPolicy::fast(Duration::from_millis(200), 3);
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("read examples/") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "w2") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("read example");
        let reference = compile_module_source(&src, &opts).expect("sequential");
        let ref_bytes = image_bytes(&reference);
        for seed in 1u64..=8 {
            let cache = FnCache::in_memory();
            let (got, _) = compile_parallel_chaos_cached(
                &src,
                &opts,
                4,
                &cache,
                &ChaosPlan::from_seed(seed),
                &policy,
            )
            .expect("chaos compile");
            assert_eq!(
                image_bytes(&got),
                ref_bytes,
                "{}: seed {seed} diverged from sequential",
                path.display()
            );
        }
        checked += 1;
    }
    assert!(
        checked >= 3,
        "expected at least 3 example programs, found {checked}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Random (size, n) workloads stay bit-identical across worker
    /// counts and cache temperature.
    #[test]
    fn arbitrary_workloads_are_bit_identical(size_idx in 0usize..3, n in 1usize..5) {
        let size = [FunctionSize::Tiny, FunctionSize::Small, FunctionSize::Medium][size_idx];
        let src = synthetic_program(size, n);
        assert_all_ways_identical(&src, &CompileOptions::default());
    }
}
