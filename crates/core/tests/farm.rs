//! The build farm against real `warpd-worker` processes.
//!
//! Every test spawns actual OS worker processes (the binary cargo
//! built for this workspace) and talks to them over sockets. The
//! anchor property is the three-way cross-validation the CI `farm`
//! job enforces: sequential `warpcc`, the threaded executor and the
//! multi-process farm must produce bit-identical module images.

use parcc::farm::{compile_farm, FarmConfig};
use parcc::threads::compile_parallel;
use parcc::{compile_module_source, CompileError, CompileOptions, CompileResult};
use std::path::PathBuf;
use std::time::Duration;
use warp_workload::{synthetic_program, FunctionSize};

/// The worker binary cargo built alongside this test.
fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_warpd-worker"))
}

fn farm_config(workers: usize) -> FarmConfig {
    FarmConfig {
        worker_cmd: Some(worker_bin()),
        ..FarmConfig::new(workers)
    }
}

fn image_bytes(r: &CompileResult) -> Vec<u8> {
    warp_target::download::encode(&r.module_image).expect("encode module")
}

/// A scratch dir under the target temp dir, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let path =
            std::env::temp_dir().join(format!("warp-farm-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("scratch dir");
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn farm_matches_sequential_and_threads_on_fig6_workload() {
    // The paper's fig. 6 workload: 8 medium functions, one section.
    let src = synthetic_program(FunctionSize::Medium, 8);
    let opts = CompileOptions::default();

    let sequential = compile_module_source(&src, &opts).expect("sequential");
    let (threaded, _) = compile_parallel(&src, &opts, 4).expect("threads");
    let (farmed, report) = compile_farm(&src, &opts, &farm_config(4)).expect("farm");

    assert_eq!(
        image_bytes(&sequential),
        image_bytes(&threaded),
        "threads diverged from sequential"
    );
    assert_eq!(
        image_bytes(&sequential),
        image_bytes(&farmed),
        "farm diverged from sequential"
    );
    assert_eq!(sequential.records, farmed.records, "farm records diverged");
    assert_eq!(report.workers_spawned, 4);
    assert_eq!(report.workers_lost, 0);
    assert!(
        report.faults.is_quiet(),
        "healthy build: {:?}",
        report.faults
    );
}

#[test]
fn cold_farm_ships_hashes_warm_farm_ships_nothing() {
    let src = synthetic_program(FunctionSize::Small, 6);
    let opts = CompileOptions::default();
    let scratch = Scratch::new("warm");
    let cfg = FarmConfig {
        cache_dir: Some(scratch.0.join("cache")),
        ..farm_config(3)
    };

    // Cold: every object travels as a content hash through the shared
    // store — never as bytes in the frame.
    let (cold, cold_report) = compile_farm(&src, &opts, &cfg).expect("cold farm");
    let n = cold.records.len();
    assert_eq!(cold_report.cache_hits, 0);
    assert_eq!(cold_report.hash_shipped, n, "{cold_report:?}");
    assert_eq!(cold_report.bytes_shipped, 0, "{cold_report:?}");

    // Warm: every job resolves from the store before dispatch; no
    // worker process is even spawned.
    let (warm, warm_report) = compile_farm(&src, &opts, &cfg).expect("warm farm");
    assert_eq!(warm_report.cache_hits, n);
    assert_eq!(warm_report.workers_spawned, 0, "warm build spawned workers");
    assert_eq!(warm_report.hash_shipped, 0);
    assert_eq!(warm_report.bytes_shipped, 0);
    assert_eq!(image_bytes(&cold), image_bytes(&warm));
    assert_eq!(cold.records, warm.records);
}

#[test]
fn ship_bytes_mode_is_identical_but_pays_in_bytes() {
    let src = synthetic_program(FunctionSize::Small, 5);
    let opts = CompileOptions::default();
    let cfg = FarmConfig {
        ship_bytes: true,
        ..farm_config(2)
    };
    let sequential = compile_module_source(&src, &opts).expect("sequential");
    let (farmed, report) = compile_farm(&src, &opts, &cfg).expect("farm");
    assert_eq!(image_bytes(&sequential), image_bytes(&farmed));
    assert_eq!(report.bytes_shipped, farmed.records.len(), "{report:?}");
    assert_eq!(report.hash_shipped, 0, "{report:?}");
}

#[test]
fn tcp_transport_matches_unix() {
    let src = synthetic_program(FunctionSize::Small, 4);
    let opts = CompileOptions::default();
    let sequential = compile_module_source(&src, &opts).expect("sequential");
    let cfg = FarmConfig {
        tcp: true,
        ..farm_config(2)
    };
    let (farmed, report) = compile_farm(&src, &opts, &cfg).expect("tcp farm");
    assert_eq!(image_bytes(&sequential), image_bytes(&farmed));
    assert_eq!(report.workers_spawned, 2);
}

#[test]
fn options_travel_the_wire() {
    // Non-default codegen options must reach the workers (the
    // fingerprint handshake would kill the build otherwise) and the
    // output must still match the sequential compile with the same
    // options.
    let src = synthetic_program(FunctionSize::Small, 4);
    let opts = CompileOptions {
        inline: Some(warp_ir::InlinePolicy::default()),
        if_convert: Some(warp_ir::IfConvPolicy::default()),
        absint: true,
        ..CompileOptions::default()
    };
    let sequential = compile_module_source(&src, &opts).expect("sequential");
    let (farmed, _) = compile_farm(&src, &opts, &farm_config(2)).expect("farm");
    assert_eq!(image_bytes(&sequential), image_bytes(&farmed));
    assert_eq!(sequential.records, farmed.records);
}

#[test]
fn no_worker_processes_or_sockets_outlive_the_build() {
    let src = synthetic_program(FunctionSize::Small, 4);
    let opts = CompileOptions::default();
    let (_, report) = compile_farm(&src, &opts, &farm_config(3)).expect("farm");
    assert_eq!(report.worker_pids.len(), 3);

    // Every worker must be fully reaped: a zombie still has a /proc
    // entry, so an absent (or foreign) /proc/<pid> proves both exit
    // and reaping.
    for pid in &report.worker_pids {
        let cmdline = std::fs::read(format!("/proc/{pid}/cmdline")).unwrap_or_default();
        let cmdline = String::from_utf8_lossy(&cmdline).replace('\0', " ");
        assert!(
            !cmdline.contains("warpd-worker"),
            "worker {pid} still alive after the build: {cmdline}"
        );
    }

    // The farm's scratch dirs (socket + private cache) are removed.
    let me = std::process::id();
    let leftovers: Vec<String> = std::fs::read_dir(std::env::temp_dir())
        .expect("read temp dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(&format!("warp-farm-{me}-")))
        .collect();
    assert!(leftovers.is_empty(), "leaked farm dirs: {leftovers:?}");
}

#[test]
fn missing_worker_binary_is_a_clean_error() {
    let src = synthetic_program(FunctionSize::Small, 2);
    let opts = CompileOptions::default();
    let cfg = FarmConfig {
        worker_cmd: Some(PathBuf::from("/nonexistent/warpd-worker")),
        handshake_timeout: Duration::from_millis(500),
        ..FarmConfig::new(2)
    };
    match compile_farm(&src, &opts, &cfg) {
        Err(CompileError::Worker(msg)) => {
            assert!(
                msg.contains("warpd-worker"),
                "error should name the missing binary: {msg}"
            );
        }
        other => panic!("expected a Worker error, got {other:?}"),
    }
}

#[test]
fn farm_of_one_worker_still_works() {
    let src = synthetic_program(FunctionSize::Small, 3);
    let opts = CompileOptions::default();
    let sequential = compile_module_source(&src, &opts).expect("sequential");
    let (farmed, report) = compile_farm(&src, &opts, &farm_config(1)).expect("farm");
    assert_eq!(image_bytes(&sequential), image_bytes(&farmed));
    assert_eq!(report.workers_spawned, 1);
}
