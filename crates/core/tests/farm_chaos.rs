//! The seeded chaos matrix against the *real* farm: injected faults
//! are actual SIGKILLed worker processes, silent worker exits, and
//! workers stalling past the dispatch timeout — not simulated thread
//! panics. Under every seed the module image must stay bit-identical
//! to the sequential compile.
//!
//! CI runs this suite once per seed (`WARP_FAULT_SEED=n cargo test
//! --test farm_chaos`), in the same matrix as the threaded chaos
//! suite; locally the full default sweep runs. Failures write their
//! trace and report under `farm-chaos-artifacts/` before panicking.

use parcc::farm::{compile_farm_traced, FarmConfig};
use parcc::threads::{ChaosPlan, RetryPolicy};
use parcc::{compile_module_source, CompileOptions, CompileResult};
use std::path::PathBuf;
use std::time::Duration;
use warp_obs::{ClockDomain, Trace};
use warp_workload::{synthetic_program, FunctionSize};

/// The default seed sweep — the same eight seeds the CI matrix pins.
const DEFAULT_SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

fn seeds() -> Vec<u64> {
    match std::env::var("WARP_FAULT_SEED") {
        Ok(s) => {
            let seed = s
                .parse()
                .unwrap_or_else(|_| panic!("bad WARP_FAULT_SEED `{s}`"));
            vec![seed]
        }
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from("farm-chaos-artifacts");
    std::fs::create_dir_all(&dir).expect("create farm-chaos-artifacts/");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write farm chaos artifact");
    path
}

fn image_bytes(r: &CompileResult) -> Vec<u8> {
    warp_target::download::encode(&r.module_image).expect("encode module")
}

fn chaos_config(workers: usize, chaos: ChaosPlan) -> FarmConfig {
    FarmConfig {
        worker_cmd: Some(PathBuf::from(env!("CARGO_BIN_EXE_warpd-worker"))),
        chaos: Some(chaos),
        // Short timeout so lost/stalled jobs are detected in test
        // time; enough headroom that a healthy compile never trips it.
        policy: RetryPolicy::fast(Duration::from_secs(5), 3),
        ..FarmConfig::new(workers)
    }
}

/// Compiles `src` on a chaos-stricken farm and asserts the image is
/// bit-identical to the sequential compile; on divergence the trace
/// and fault report go to `farm-chaos-artifacts/` first.
fn assert_farm_chaos_identical(src: &str, opts: &CompileOptions, cfg: &FarmConfig, what: &str) {
    let reference = compile_module_source(src, opts).expect("sequential");
    let trace = Trace::new(ClockDomain::Monotonic);
    let (got, report) = compile_farm_traced(src, opts, cfg, &trace)
        .unwrap_or_else(|e| panic!("{what}: farm chaos compile failed: {e}"));
    let identical =
        image_bytes(&got) == image_bytes(&reference) && got.records == reference.records;
    let mut leaked = Vec::new();
    for pid in &report.worker_pids {
        let cmdline = std::fs::read(format!("/proc/{pid}/cmdline")).unwrap_or_default();
        let cmdline = String::from_utf8_lossy(&cmdline).replace('\0', " ");
        if cmdline.contains("warpd-worker") {
            leaked.push(*pid);
        }
    }
    if !identical || !leaked.is_empty() {
        let json = warp_obs::to_chrome_json(&trace.snapshot());
        let path = write_artifact(&format!("{what}.trace.json"), &json);
        let stats = write_artifact(&format!("{what}.stats.txt"), &format!("{report:#?}"));
        panic!(
            "{what}: {} (trace: {}, stats: {})",
            if identical {
                format!("leaked worker processes {leaked:?}")
            } else {
                "farm output diverged from sequential under chaos".to_string()
            },
            path.display(),
            stats.display()
        );
    }
}

#[test]
fn seeded_farm_chaos_is_bit_identical_for_every_matrix_seed() {
    let opts = CompileOptions::default();
    // The fig. 6 workload, as in the threaded matrix: 25% of first
    // attempts SIGKILL their worker, 20% exit silently, 15% stall
    // 200 ms. Kills and exits force real process loss and
    // rebalancing; the dedicated stall test below covers stalls that
    // outlive the dispatch timeout.
    let src = synthetic_program(FunctionSize::Medium, 8);
    for seed in seeds() {
        let chaos = ChaosPlan::from_seed(seed);
        assert_farm_chaos_identical(
            &src,
            &opts,
            &chaos_config(4, chaos),
            &format!("farm-w4-seed-{seed}"),
        );
    }
}

#[test]
fn every_single_job_kill_is_bit_identical() {
    let opts = CompileOptions::default();
    let src = synthetic_program(FunctionSize::Small, 6);
    let n = compile_module_source(&src, &opts)
        .expect("sequential")
        .records
        .len();
    for job in 0..n {
        // crash_one → a real SIGKILL of the worker holding `job`.
        assert_farm_chaos_identical(
            &src,
            &opts,
            &chaos_config(3, ChaosPlan::crash_one(job)),
            &format!("farm-kill-job-{job}"),
        );
        // lose_one → that worker exits silently mid-protocol.
        assert_farm_chaos_identical(
            &src,
            &opts,
            &chaos_config(3, ChaosPlan::lose_one(job)),
            &format!("farm-exit-job-{job}"),
        );
    }
}

#[test]
fn stalled_worker_past_timeout_is_bit_identical() {
    let opts = CompileOptions::default();
    let src = synthetic_program(FunctionSize::Small, 4);
    // Stall one job well past the dispatch timeout: the coordinator
    // must retry it elsewhere and absorb the late reply harmlessly.
    let mut cfg = chaos_config(2, ChaosPlan::stall_one(1, Duration::from_millis(900)));
    cfg.policy = RetryPolicy::fast(Duration::from_millis(300), 3);
    assert_farm_chaos_identical(&src, &opts, &cfg, "farm-stall-job-1");
}

#[test]
fn killing_every_worker_falls_back_to_the_coordinator() {
    let opts = CompileOptions::default();
    let src = synthetic_program(FunctionSize::Small, 4);
    // Every attempt of every job kills its worker: the whole farm
    // dies and the coordinator must compile everything itself.
    let chaos = ChaosPlan {
        crash_prob: 1.0,
        first_attempt_only: false,
        ..ChaosPlan::default()
    };
    let reference = compile_module_source(&src, &opts).expect("sequential");
    let (got, report) =
        parcc::farm::compile_farm(&src, &opts, &chaos_config(2, chaos)).expect("farm");
    assert_eq!(image_bytes(&reference), image_bytes(&got));
    assert_eq!(report.workers_lost, report.workers_spawned);
    assert!(
        report.faults.coordinator_fallbacks > 0,
        "the coordinator must have taken work back: {:?}",
        report.faults
    );
}

#[test]
fn farm_chaos_reports_count_real_faults() {
    let opts = CompileOptions::default();
    let src = synthetic_program(FunctionSize::Small, 6);
    // One guaranteed kill: the report must show it, and recovery must
    // leave no trace in the output.
    let (_, report) =
        parcc::farm::compile_farm(&src, &opts, &chaos_config(3, ChaosPlan::crash_one(0)))
            .expect("farm");
    assert_eq!(report.faults.kills, 1, "{:?}", report.faults);
    assert_eq!(report.workers_lost, 1, "{:?}", report.faults);
}
