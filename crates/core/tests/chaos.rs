//! The seeded chaos matrix: fault tolerance of both executors must be
//! invisible in the output and deterministic per seed.
//!
//! CI runs this suite once per seed (`WARP_FAULT_SEED=n cargo test
//! --test chaos`); locally, with the variable unset, every test sweeps
//! the full default seed list. On a failure each test first writes the
//! offending trace/report JSON under `chaos-artifacts/` (uploaded by
//! the CI job) and then panics with the path in the message.

use parcc::threads::{compile_parallel_chaos_traced, ChaosPlan, RetryPolicy};
use parcc::{compile_module_source, CompileOptions, CompileResult, Experiment};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;
use warp_netsim::{simulate, simulate_faulted_traced, FaultPlan};
use warp_obs::{ClockDomain, Trace};
use warp_workload::{synthetic_program, FunctionSize};

/// The default seed sweep — the same eight seeds the CI matrix pins.
const DEFAULT_SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Seeds to exercise: `WARP_FAULT_SEED` selects a single seed (one CI
/// matrix job per seed), otherwise the full default sweep runs.
fn seeds() -> Vec<u64> {
    match std::env::var("WARP_FAULT_SEED") {
        Ok(s) => {
            let seed = s
                .parse()
                .unwrap_or_else(|_| panic!("bad WARP_FAULT_SEED `{s}`"));
            vec![seed]
        }
        Err(_) => DEFAULT_SEEDS.to_vec(),
    }
}

/// Writes a failure artifact and returns its path (for the panic
/// message). CI uploads `chaos-artifacts/` when the job fails.
fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from("chaos-artifacts");
    std::fs::create_dir_all(&dir).expect("create chaos-artifacts/");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write chaos artifact");
    path
}

fn image_bytes(r: &CompileResult) -> Vec<u8> {
    warp_target::download::encode(&r.module_image).expect("encode module")
}

/// Compiles `src` under `chaos` and asserts the module is bit-identical
/// to the sequential compile; on divergence the run's trace goes to
/// `chaos-artifacts/` first.
fn assert_chaos_identical(
    src: &str,
    opts: &CompileOptions,
    workers: usize,
    chaos: &ChaosPlan,
    policy: &RetryPolicy,
    what: &str,
) {
    let reference = compile_module_source(src, opts).expect("sequential");
    let trace = Trace::new(ClockDomain::Monotonic);
    let (got, report) = compile_parallel_chaos_traced(src, opts, workers, chaos, policy, &trace)
        .unwrap_or_else(|e| panic!("{what}: chaos compile failed: {e}"));
    if image_bytes(&got) != image_bytes(&reference) || got.records != reference.records {
        let json = warp_obs::to_chrome_json(&trace.snapshot());
        let path = write_artifact(&format!("{what}.trace.json"), &json);
        let stats = write_artifact(&format!("{what}.stats.txt"), &format!("{report:#?}"));
        panic!(
            "{what}: chaos output diverged from sequential \
             (trace: {}, stats: {})",
            path.display(),
            stats.display()
        );
    }
}

/// Short timeout so lost/stalled jobs are detected in test time, not
/// the production 30 s.
fn fast_policy() -> RetryPolicy {
    RetryPolicy::fast(Duration::from_millis(200), 3)
}

#[test]
fn seeded_chaos_is_bit_identical_for_every_matrix_seed() {
    let opts = CompileOptions::default();
    let src = synthetic_program(FunctionSize::Medium, 8);
    // Worker-count sweep × the seed matrix: the work-stealing executor
    // must reproduce the sequential bits at every pool width.
    for workers in [1, 2, 4, 8] {
        for seed in seeds() {
            let chaos = ChaosPlan::from_seed(seed);
            assert_chaos_identical(
                &src,
                &opts,
                workers,
                &chaos,
                &fast_policy(),
                &format!("threads-w{workers}-seed-{seed}"),
            );
        }
    }
}

#[test]
fn every_single_job_crash_is_bit_identical() {
    let opts = CompileOptions::default();
    let src = synthetic_program(FunctionSize::Small, 6);
    let n = compile_module_source(&src, &opts)
        .expect("sequential")
        .records
        .len();
    for job in 0..n {
        assert_chaos_identical(
            &src,
            &opts,
            3,
            &ChaosPlan::crash_one(job),
            &fast_policy(),
            &format!("crash-job-{job}"),
        );
        assert_chaos_identical(
            &src,
            &opts,
            3,
            &ChaosPlan::lose_one(job),
            &fast_policy(),
            &format!("lose-job-{job}"),
        );
    }
}

#[test]
fn stalled_jobs_do_not_change_the_bits() {
    let opts = CompileOptions::default();
    let src = synthetic_program(FunctionSize::Small, 4);
    // Stall past the detection timeout: the job is retried while the
    // stalled worker is still asleep, and its late result is drained
    // without corrupting the image.
    assert_chaos_identical(
        &src,
        &opts,
        2,
        &ChaosPlan::stall_one(1, Duration::from_millis(350)),
        &fast_policy(),
        "stall-job-1",
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any seed and any injection mix still reproduces the sequential
    /// bits — the executor never trades correctness for liveness.
    #[test]
    fn arbitrary_chaos_mix_is_bit_identical(
        seed in 0u64..1_000_000,
        crash in 0.0f64..1.0,
        lose in 0.0f64..0.5,
    ) {
        let opts = CompileOptions::default();
        let src = synthetic_program(FunctionSize::Small, 4);
        let chaos = ChaosPlan {
            seed,
            crash_prob: crash,
            lose_prob: lose,
            ..ChaosPlan::default()
        };
        assert_chaos_identical(
            &src,
            &opts,
            3,
            &chaos,
            &fast_policy(),
            &format!("prop-seed-{seed}"),
        );
    }
}

/// Runs the faulted fig6 simulation once, returning the report's Debug
/// rendering and the chrome trace JSON (both must be byte-stable).
fn faulted_netsim_run(e: &Experiment, result: &CompileResult, seed: u64) -> (String, String) {
    let avail = e.model.host.workstations.saturating_sub(1);
    let assignment = parcc::fcfs(result.records.len(), avail);
    let horizon = simulate(
        e.model.host,
        parcc::simspec::par_spec(result, &e.model, &assignment),
    )
    .elapsed_s;
    let plan = FaultPlan::generate(seed, 3, e.model.host.workstations, horizon);
    let trace = Trace::new(ClockDomain::Virtual);
    let report = simulate_faulted_traced(
        e.model.host,
        plan,
        parcc::simspec::par_spec(result, &e.model, &assignment),
        &trace,
    );
    (
        format!("{report:#?}"),
        warp_obs::to_chrome_json(&trace.snapshot()),
    )
}

#[test]
fn netsim_fault_runs_are_byte_identical_per_seed() {
    let e = Experiment::default();
    let result = compile_module_source(&synthetic_program(FunctionSize::Medium, 8), &e.opts)
        .expect("compile");
    for seed in seeds() {
        let (report_a, trace_a) = faulted_netsim_run(&e, &result, seed);
        let (report_b, trace_b) = faulted_netsim_run(&e, &result, seed);
        if report_a != report_b {
            let pa = write_artifact(&format!("netsim-seed-{seed}.report-a.txt"), &report_a);
            let pb = write_artifact(&format!("netsim-seed-{seed}.report-b.txt"), &report_b);
            panic!(
                "seed {seed}: two identical faulted simulations produced different \
                 reports ({} vs {})",
                pa.display(),
                pb.display()
            );
        }
        if trace_a != trace_b {
            let pa = write_artifact(&format!("netsim-seed-{seed}.trace-a.json"), &trace_a);
            let pb = write_artifact(&format!("netsim-seed-{seed}.trace-b.json"), &trace_b);
            panic!(
                "seed {seed}: two identical faulted simulations produced different \
                 traces ({} vs {})",
                pa.display(),
                pb.display()
            );
        }
    }
}

#[test]
fn fig6_under_faults_matches_itself_per_seed() {
    let e = Experiment::default();
    for seed in seeds() {
        let a = e
            .fig6_under_faults(FunctionSize::Medium, 8, seed, &[0, 2])
            .expect("fig6");
        let b = e
            .fig6_under_faults(FunctionSize::Medium, 8, seed, &[0, 2])
            .expect("fig6");
        assert_eq!(a, b, "seed {seed}: fig6-under-faults not deterministic");
        assert!(
            a.points
                .iter()
                .all(|p| p.elapsed_s >= a.par_elapsed_s - 1e-9),
            "seed {seed}: faults made the build faster: {a:?}"
        );
    }
}
