//! Trace acceptance tests: the `warpcc --trace` CLI produces a
//! loadable Chrome trace with driver / per-pass / worker spans, the
//! netsim figure runs produce virtual-time traces, and the
//! span-buffer route to the paper's measurements
//! ([`parcc::Measurement::from_trace`]) agrees with the legacy
//! report-based route on the Figure 6 workload.

use parcc::simspec::{par_spec, seq_spec};
use parcc::{fcfs, overheads, CompileOptions, Experiment, Measurement, Placement};
use std::path::PathBuf;
use std::process::Command;
use warp_workload::{synthetic_program, FunctionSize};

fn example_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples")
        .join(name)
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("warpcc-trace-{}-{tag}.json", std::process::id()))
}

#[test]
fn warpcc_trace_writes_chrome_trace_with_expected_scopes() {
    let out = temp_path("seq");
    let status = Command::new(env!("CARGO_BIN_EXE_warpcc"))
        .arg("--trace")
        .arg(&out)
        .arg(example_path("dot_product.w2"))
        .status()
        .expect("run warpcc");
    assert!(status.success());
    let json = std::fs::read_to_string(&out).expect("trace file");
    let _ = std::fs::remove_file(&out);
    let stats = warp_obs::validate_chrome_json(&json).expect("valid Chrome trace");
    assert!(stats.spans > 0, "{stats:?}");
    // Spans from the driver, per-pass, and worker scopes must all be
    // present (the acceptance bar for the tracing layer).
    for cat in ["driver", "pass", "worker"] {
        assert!(
            json.contains(&format!("\"cat\":\"{cat}\"")),
            "no {cat} spans in {json}"
        );
    }
    // Monotonic clock domain is declared in the file metadata.
    assert!(json.contains("\"clock_domain\":\"monotonic\""));
}

#[test]
fn warpcc_trace_with_workers_and_verify_adds_verify_spans() {
    let out = temp_path("par");
    let status = Command::new(env!("CARGO_BIN_EXE_warpcc"))
        .args(["--workers", "2", "--verify", "--trace"])
        .arg(&out)
        .arg(example_path("dot_product.w2"))
        .status()
        .expect("run warpcc");
    assert!(status.success());
    let json = std::fs::read_to_string(&out).expect("trace file");
    let _ = std::fs::remove_file(&out);
    let stats = warp_obs::validate_chrome_json(&json).expect("valid Chrome trace");
    assert!(stats.spans > 0);
    for cat in ["driver", "pass", "worker", "verify"] {
        assert!(
            json.contains(&format!("\"cat\":\"{cat}\"")),
            "no {cat} spans"
        );
    }
}

#[test]
fn parallel_compile_trace_has_the_documented_sched_shape() {
    // The scheduler-observability contract from docs/TRACING.md:
    // per-worker queue-depth counters always appear; any steal/idle
    // instants that do appear use the documented names and land on
    // worker tracks. (Whether a steal happens is timing-dependent, so
    // only the *shape* is asserted, never the count.)
    let workers = 4;
    let src = synthetic_program(FunctionSize::Small, 8);
    let trace = warp_obs::Trace::new(warp_obs::ClockDomain::Monotonic);
    let (result, _) =
        parcc::compile_parallel_traced(&src, &CompileOptions::default(), workers, &trace)
            .expect("parallel compile");
    assert_eq!(result.records.len(), 8);

    let snap = trace.snapshot();
    let worker_tracks: Vec<_> = (0..workers)
        .filter_map(|w| snap.tracks.iter().position(|t| t == &format!("worker {w}")))
        .collect();
    assert_eq!(
        worker_tracks.len(),
        workers,
        "one track per worker: {:?}",
        snap.tracks
    );

    // Every worker's deque depth is counted, and counters live on
    // that worker's own track.
    for (w, &track) in worker_tracks.iter().enumerate() {
        let name = format!("queue {w}");
        let counters: Vec<_> = snap.counters.iter().filter(|c| c.name == name).collect();
        assert!(
            !counters.is_empty(),
            "no `{name}` counter in {:?}",
            snap.counters
        );
        for c in &counters {
            assert_eq!(c.track.0 as usize, track, "`{name}` on the wrong track");
        }
    }

    // Sched instants are optional per run but constrained in shape.
    for i in snap.instants.iter().filter(|i| i.cat == "sched") {
        assert!(
            i.name == "idle"
                || i.name == "steal from injector"
                || i.name.starts_with("steal from worker "),
            "undocumented sched instant `{}`",
            i.name
        );
        assert!(
            worker_tracks.contains(&(i.track.0 as usize)),
            "sched instant `{}` off the worker tracks",
            i.name
        );
    }

    // The whole thing still exports as a loadable Chrome trace.
    let json = warp_obs::to_chrome_json(&snap);
    warp_obs::validate_chrome_json(&json).expect("valid Chrome trace");
}

#[test]
fn figure_run_produces_virtual_time_traces() {
    let e = Experiment::default();
    let src = synthetic_program(FunctionSize::Medium, 2);
    let result = parcc::compile_module_source(&src, &e.opts).expect("compile");
    let (_, traces) = e.compare_result_traced(&result, Placement::Fcfs);
    for snap in [&traces.seq, &traces.par] {
        assert_eq!(snap.domain, warp_obs::ClockDomain::Virtual);
        assert!(snap.spans_in("cpu").count() > 0);
        assert!(snap.spans_in("process").count() > 0);
        let json = warp_obs::to_chrome_json(snap);
        let stats = warp_obs::validate_chrome_json(&json).expect("valid Chrome trace");
        assert!(stats.spans > 0);
        assert!(json.contains("\"clock_domain\":\"virtual\""));
    }
    // The parallel run exercises the paper's process hierarchy.
    assert!(traces.par.spans_in("process").any(|s| s.name == "master"));
    assert!(traces
        .par
        .spans_in("process")
        .any(|s| s.name.starts_with("fn-master")));
}

#[test]
fn trace_derived_measurement_matches_report_on_fig6_workload() {
    let e = Experiment::default();
    let src = synthetic_program(FunctionSize::Medium, 4);
    let result = parcc::compile_module_source(&src, &CompileOptions::default()).expect("compile");
    let assignment = fcfs(
        result.records.len(),
        e.model.host.workstations.saturating_sub(1),
    );

    // Legacy route: simulator report → Measurement.
    let seq_report = warp_netsim::simulate(e.model.host, seq_spec(&result, &e.model));
    let par_report = warp_netsim::simulate(e.model.host, par_spec(&result, &e.model, &assignment));
    let seq_legacy = Measurement::from_report(&seq_report);
    let par_legacy = Measurement::from_report(&par_report);

    // Span-buffer route: traced simulation → Measurement.
    let (cmp, _) = e.compare_result_traced(&result, Placement::Fcfs);

    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    for (trace_m, legacy_m) in [(&cmp.seq, &seq_legacy), (&cmp.par, &par_legacy)] {
        assert!(
            close(trace_m.elapsed_s, legacy_m.elapsed_s),
            "{trace_m:?}\n{legacy_m:?}"
        );
        assert!(close(trace_m.max_cpu_s, legacy_m.max_cpu_s));
        assert!(close(trace_m.master_cpu_s, legacy_m.master_cpu_s));
        assert!(close(trace_m.parser_cpu_s, legacy_m.parser_cpu_s));
        assert!(close(trace_m.section_cpu_s, legacy_m.section_cpu_s));
        assert!(close(trace_m.compile_cpu_s, legacy_m.compile_cpu_s));
        assert!(close(trace_m.memory_overhead_s, legacy_m.memory_overhead_s));
        assert_eq!(
            trace_m.cpu_per_processor.len(),
            legacy_m.cpu_per_processor.len()
        );
        for (a, b) in trace_m
            .cpu_per_processor
            .iter()
            .zip(&legacy_m.cpu_per_processor)
        {
            assert!(close(*a, *b));
        }
    }

    // The §4.2.3 decomposition built on the span buffer matches the
    // decomposition built on the simulator report.
    let k = assignment.processors.max(1);
    let legacy_o = overheads(&par_legacy, &seq_legacy, k);
    assert_eq!(cmp.overheads.k, legacy_o.k);
    assert!(close(cmp.overheads.total_s, legacy_o.total_s));
    assert!(close(
        cmp.overheads.implementation_s,
        legacy_o.implementation_s
    ));
    assert!(close(cmp.overheads.system_s, legacy_o.system_s));
    assert!(close(cmp.overheads.total_frac, legacy_o.total_frac));
    assert!(close(cmp.overheads.system_frac, legacy_o.system_frac));
}
