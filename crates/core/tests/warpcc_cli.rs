//! End-to-end tests of the `warpcc` command-line driver.

use std::process::Command;

const PROGRAM: &str = "module cli;\nsection s on cells 0..1;\n\
  function triple(x: float): float begin return x * 3.0; end;\n\
end;\n";

fn warpcc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_warpcc"))
}

fn write_program() -> tempfile_path::TempPath {
    tempfile_path::write(PROGRAM)
}

/// Minimal temp-file helper (no extra dependencies).
mod tempfile_path {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    pub fn write(contents: &str) -> TempPath {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "warpcc-test-{}-{}.w2",
            std::process::id(),
            contents.len()
        ));
        std::fs::write(&p, contents).expect("write temp program");
        TempPath(p)
    }
}

#[test]
fn summary_lists_functions() {
    let f = write_program();
    let out = warpcc().arg(&f.0).output().expect("run warpcc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("module `cli`"), "{stdout}");
    assert!(stdout.contains("triple"), "{stdout}");
}

#[test]
fn run_executes_function() {
    let f = write_program();
    let out = warpcc()
        .args(["--run", "triple", "14.0"])
        .arg(&f.0)
        .output()
        .expect("run warpcc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("triple(14.0) = 42"), "{stdout}");
}

#[test]
fn emit_asm_disassembles() {
    let f = write_program();
    let out = warpcc()
        .args(["--emit", "asm"])
        .arg(&f.0)
        .output()
        .expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("section s"), "{stdout}");
    assert!(stdout.contains("br: ret"), "{stdout}");
}

#[test]
fn emit_ast_round_trips() {
    let f = write_program();
    let out = warpcc()
        .args(["--emit", "ast"])
        .arg(&f.0)
        .output()
        .expect("run");
    assert!(out.status.success());
    let printed = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(warp_lang::phase1(&printed).is_ok(), "{printed}");
}

#[test]
fn emit_facts_prints_the_fact_report() {
    const LOOPY: &str = "module cli;\nsection s on cells 0..1;\n\
      function f(x: float): float\n\
      var t: float; v: float[16]; i: int;\n\
      begin\n  t := x;\n  for i := 0 to 15 do v[i] := t; t := t + v[i]; end;\n\
      return t;\nend;\nend;\n";
    let f = tempfile_path::write(LOOPY);
    let out = warpcc()
        .args(["--emit", "facts"])
        .arg(&f.0)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== f"), "{stdout}");
    assert!(stdout.contains("iterations "), "{stdout}");
    assert!(stdout.contains("mem-trap-free"), "{stdout}");
}

#[test]
fn absint_flag_adds_summary_columns() {
    let f = write_program();
    let out = warpcc().arg("--absint").arg(&f.0).output().expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("absint-it"), "{stdout}");
    assert!(stdout.contains("pruned"), "{stdout}");
    // Without the flag the summary layout is unchanged.
    let out = warpcc().arg(&f.0).output().expect("run");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("absint-it"), "{stdout}");
}

#[test]
fn stdin_input_works() {
    use std::io::Write as _;
    let mut child = warpcc()
        .arg("-")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(PROGRAM.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
}

#[test]
fn bad_program_fails_with_diagnostics() {
    let f = tempfile_path::write("module broken;\n");
    let out = warpcc().arg(&f.0).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error"), "{stderr}");
}

#[test]
fn unknown_flag_rejected() {
    let out = warpcc().arg("--frobnicate").output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn help_exits_cleanly() {
    let out = warpcc().arg("--help").output().expect("run");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("usage: warpcc"), "{stdout}");
}

#[test]
fn ifconv_flag_accepted() {
    let f = tempfile_path::write(PROGRAM);
    let out = warpcc()
        .args(["--ifconv", "--inline"])
        .arg(&f.0)
        .output()
        .expect("run");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn jobs_flag_output_matches_sequential() {
    let f = write_program();
    let run = |args: &[&str]| {
        let out = warpcc().args(args).arg(&f.0).output().expect("run warpcc");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let sequential = run(&[]);
    assert_eq!(run(&["--jobs", "2"]), sequential);
    // 0 = all available cores; -j and --workers are spellings of --jobs.
    assert_eq!(run(&["--jobs", "0"]), sequential);
    assert_eq!(run(&["-j", "4"]), sequential);
    assert_eq!(run(&["--workers", "4"]), sequential);
}

#[test]
fn bad_jobs_count_rejected() {
    let f = write_program();
    let out = warpcc()
        .args(["--jobs", "lots"])
        .arg(&f.0)
        .output()
        .expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad job count"), "{stderr}");
}

#[test]
fn cache_dir_turns_second_run_into_hits() {
    let f = write_program();
    let mut dir = std::env::temp_dir();
    dir.push(format!("warpcc-test-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let run = || {
        warpcc()
            .args(["--cache-dir", dir.to_str().unwrap(), "--cache-stats"])
            .arg(&f.0)
            .output()
            .expect("run warpcc")
    };
    let cold = run();
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_err = String::from_utf8_lossy(&cold.stderr);
    assert!(cold_err.contains("cache:"), "{cold_err}");
    assert!(
        cold_err.contains("0 hit(s)"),
        "cold run must miss: {cold_err}"
    );

    let warm = run();
    assert!(
        warm.status.success(),
        "{}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let warm_err = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_err.contains("1 hit(s)"),
        "warm run must hit: {warm_err}"
    );
    assert!(warm_err.contains("0 miss(es)"), "{warm_err}");

    // Identical output either way.
    assert_eq!(cold.stdout, warm.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_stats_without_dir_counts_in_memory() {
    let f = write_program();
    let out = warpcc()
        .arg("--cache-stats")
        .arg(&f.0)
        .output()
        .expect("run warpcc");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("1 miss(es)"), "{stderr}");
}

#[test]
fn farm_flag_output_matches_sequential() {
    let f = write_program();
    let run = |args: &[&str]| {
        let out = warpcc()
            .env("WARPD_WORKER", env!("CARGO_BIN_EXE_warpd-worker"))
            .args(args)
            .arg(&f.0)
            .output()
            .expect("run warpcc");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let sequential = run(&[]);
    assert_eq!(run(&["--farm", "2"]), sequential);
}

#[test]
fn farm_and_jobs_are_mutually_exclusive() {
    let f = write_program();
    let out = warpcc()
        .args(["--farm", "2", "--jobs", "2"])
        .arg(&f.0)
        .output()
        .expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--farm") && stderr.contains("--jobs"),
        "{stderr}"
    );
}
