//! Cache-key soundness: exactly the right entries are invalidated.
//!
//! * Editing one function's body recompiles exactly that function;
//! * changing `CompileOptions` invalidates every entry (any knob can
//!   change generated code);
//! * changing the module-level interface a function can see (adding a
//!   function to its section) invalidates the whole section, because
//!   name resolution and inlining depend on it.
//!
//! All assertions go through the cache's hit/miss counters, so they
//! pin the *mechanism*, not just the output.

use parcc::{compile_module_cached, CompileOptions, FnCache};
use warp_workload::{synthetic_program, FunctionSize};

const N: usize = 4;

/// A primed cache for the medium n=4 program plus the source text.
fn primed() -> (String, FnCache) {
    let src = synthetic_program(FunctionSize::Medium, N);
    let cache = FnCache::in_memory();
    compile_module_cached(&src, &CompileOptions::default(), &cache).expect("prime");
    let s = cache.stats();
    assert_eq!(
        (s.hits(), s.misses, s.stores),
        (0, N as u64, N as u64),
        "cold prime: {s}"
    );
    (src, cache)
}

#[test]
fn unchanged_rebuild_hits_everything() {
    let (src, cache) = primed();
    let warm = cache.fork_memory();
    compile_module_cached(&src, &CompileOptions::default(), &warm).expect("rebuild");
    let s = warm.stats();
    assert_eq!((s.hits(), s.misses, s.stores), (N as u64, 0, 0), "{s}");
}

#[test]
fn editing_one_function_recompiles_exactly_that_function() {
    let (src, cache) = primed();
    // Change one loop bound in the first function's body — a pure
    // body edit, no signature or interface change.
    let edited = src.replacen("0 to 15", "0 to 16", 1);
    assert_ne!(edited, src, "workload must contain the expected loop bound");
    let warm = cache.fork_memory();
    compile_module_cached(&edited, &CompileOptions::default(), &warm).expect("rebuild");
    let s = warm.stats();
    assert_eq!(
        (s.hits(), s.misses, s.stores),
        (N as u64 - 1, 1, 1),
        "one edit must cost one recompilation: {s}"
    );
}

#[test]
fn changing_compile_options_invalidates_everything() {
    let (src, cache) = primed();
    for (label, opts) in [
        (
            "verify_each_pass",
            CompileOptions {
                verify_each_pass: true,
                ..CompileOptions::default()
            },
        ),
        (
            "inline",
            CompileOptions {
                inline: Some(warp_ir::InlinePolicy::default()),
                ..CompileOptions::default()
            },
        ),
        (
            "if_convert",
            CompileOptions {
                if_convert: Some(warp_ir::IfConvPolicy::default()),
                ..CompileOptions::default()
            },
        ),
    ] {
        let warm = cache.fork_memory();
        compile_module_cached(&src, &opts, &warm).expect("rebuild");
        let s = warm.stats();
        assert_eq!(s.hits(), 0, "{label}: stale options must never hit: {s}");
        assert_eq!(s.misses, N as u64, "{label}: {s}");
    }
}

#[test]
fn changing_module_interface_invalidates_the_section() {
    let (src, cache) = primed();
    // Add a function to the (single) section: every function in it now
    // sees a different interface, so nothing may hit. The module's
    // closing `end;` is the last one in the source.
    let body = src
        .strip_suffix("end;\n")
        .expect("module must end with end;");
    let grown =
        format!("{body}function cache_probe(x: float): float begin return x + 1.0; end;\nend;\n");
    assert_ne!(grown, src);
    let warm = cache.fork_memory();
    compile_module_cached(&grown, &CompileOptions::default(), &warm).expect("rebuild");
    let s = warm.stats();
    assert_eq!(
        s.hits(),
        0,
        "interface change must invalidate the section: {s}"
    );
    assert_eq!(s.misses, N as u64 + 1, "{s}");
}

#[test]
fn options_roundtrip_back_to_hits() {
    // Sanity: invalidation is keyed, not a flush — switching options
    // away and back hits the original entries again.
    let (src, cache) = primed();
    let other = CompileOptions {
        verify_each_pass: true,
        ..CompileOptions::default()
    };
    compile_module_cached(&src, &other, &cache).expect("other options");
    let warm = cache.fork_memory();
    compile_module_cached(&src, &CompileOptions::default(), &warm).expect("back");
    let s = warm.stats();
    assert_eq!((s.hits(), s.misses), (N as u64, 0), "{s}");
}
