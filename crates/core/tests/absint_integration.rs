//! End-to-end tests of the absint pipeline: fact-driven rewrites fire
//! on the fig6 workload, facts ride the function cache so warm
//! rebuilds re-analyze nothing, and the facts report is stable across
//! cold and warm builds.

use parcc::{compile_module_cached, compile_module_source, facts_report, CompileOptions, FnCache};
use warp_workload::{synthetic_program, FunctionSize};

fn absint_opts() -> CompileOptions {
    CompileOptions {
        absint: true,
        ..CompileOptions::default()
    }
}

/// The fig6 workload (the paper's S_n benchmark modules) contains
/// statically infeasible branches (loop guards with known bounds) and
/// provably-redundant trap checks (`i mod 16` under loop bounds ≤ 15);
/// the fact-driven pass must find and rewrite both.
#[test]
fn fig6_workload_prunes_branches_and_elides_trap_checks() {
    let src = synthetic_program(FunctionSize::Medium, 4);
    let r = compile_module_source(&src, &absint_opts()).expect("compile");
    let pruned: usize = r.records.iter().map(|x| x.p2.branches_pruned).sum();
    let elided: usize = r.records.iter().map(|x| x.p2.trap_checks_elided).sum();
    assert!(
        pruned >= 1,
        "no infeasible branch pruned on the fig6 workload"
    );
    assert!(elided >= 1, "no trap check elided on the fig6 workload");
    for rec in &r.records {
        let facts = rec
            .facts
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no facts", rec.name));
        assert!(
            rec.p2.absint_iterations > 0,
            "{}: analysis did no work",
            rec.name
        );
        assert!(facts.claim_count() > 0, "{}: no claims proven", rec.name);
    }
    // Without absint: no iterations charged, no facts shipped.
    let off = compile_module_source(&src, &CompileOptions::default()).expect("compile");
    for rec in &off.records {
        assert!(rec.facts.is_none());
        assert_eq!(rec.p2.absint_iterations, 0);
    }
}

/// Facts are part of the cached function payload: a warm rebuild with
/// `absint` on hits every entry (re-analyzes zero unchanged functions)
/// and restores bitwise-identical fact sets and work counters.
#[test]
fn warm_rebuild_reuses_cached_facts_without_reanalysis() {
    const N: usize = 4;
    let src = synthetic_program(FunctionSize::Medium, N);
    let cache = FnCache::in_memory();
    let cold = compile_module_cached(&src, &absint_opts(), &cache).expect("prime");
    let s = cache.stats();
    assert_eq!((s.hits(), s.misses), (0, N as u64), "cold prime: {s}");

    let warm = cache.fork_memory();
    let hot = compile_module_cached(&src, &absint_opts(), &warm).expect("rebuild");
    let s = warm.stats();
    assert_eq!(
        (s.hits(), s.misses),
        (N as u64, 0),
        "warm rebuild must re-analyze zero unchanged functions: {s}"
    );
    for (a, b) in cold.records.iter().zip(hot.records.iter()) {
        assert_eq!(a.facts, b.facts, "{}: cached facts differ", a.name);
        assert_eq!(
            a.p2.absint_iterations, b.p2.absint_iterations,
            "{}: cached work counters differ",
            a.name
        );
    }
    assert_eq!(facts_report(&cold.records), facts_report(&hot.records));
}

/// An absint-on cache entry is keyed separately from an absint-off
/// one: flipping the option cannot serve stale facts (or fact-less
/// records) from the other configuration.
#[test]
fn absint_option_does_not_share_cache_entries() {
    const N: usize = 2;
    let src = synthetic_program(FunctionSize::Small, N);
    let cache = FnCache::in_memory();
    compile_module_cached(&src, &CompileOptions::default(), &cache).expect("prime off");
    let warm = cache.fork_memory();
    let on = compile_module_cached(&src, &absint_opts(), &warm).expect("absint build");
    let s = warm.stats();
    assert_eq!(
        s.hits(),
        0,
        "absint build must not reuse absint-off entries: {s}"
    );
    assert!(on.records.iter().all(|r| r.facts.is_some()));
}

/// The facts report names every function and prints per-function
/// claim lines in a stable, machine-diffable format.
#[test]
fn facts_report_covers_every_function() {
    let src = synthetic_program(FunctionSize::Small, 3);
    let r = compile_module_source(&src, &absint_opts()).expect("compile");
    let report = facts_report(&r.records);
    for rec in &r.records {
        assert!(
            report.contains(&format!("== {}", rec.name)),
            "missing {}",
            rec.name
        );
    }
    assert!(report.contains("iterations "));
    assert!(report.contains("sites "));
    // Deterministic: a second compile prints the same report.
    let r2 = compile_module_source(&src, &absint_opts()).expect("compile");
    assert_eq!(report, facts_report(&r2.records));
}
