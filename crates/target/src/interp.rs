//! Cycle-accurate interpreter for linked section images.
//!
//! A [`Cell`] executes one [`crate::word::InstructionWord`] per cycle:
//! all placed operations read the register file as it stands at the
//! start of the cycle, and each result is written back at the start of
//! cycle `issue + latency`. In-flight writebacks survive taken
//! branches — software-pipelined kernels depend on results landing
//! after the backward branch. A word containing a `Recv` on an empty
//! queue (or a `Send` into a full bounded queue) stalls atomically:
//! the cycle counter advances but the word has no effect.
//!
//! In *strict* mode ([`Cell::set_strict`]) the cell faults on schedule
//! hazards instead of silently misbehaving: issuing to a functional
//! unit still reserved by an iterative operation, or letting an
//! *undefined* value (from a register never written on the executed
//! path) reach a consumption point — a branch condition, a memory
//! address, a divisor, a queue send, or a host-side [`Cell::reg`]
//! read. Merely *computing* with undefined values propagates
//! undefinedness without faulting, so speculative reads in
//! if-converted code stay legal. Data memory starts zero-filled and
//! defined, matching the reference interpreter's zero defaults.
//!
//! An [`ArrayMachine`] wires cells into the linear array with bounded
//! inter-cell queues, giving the backpressure behaviour of the real
//! machine: a fast producer stalls when its consumer falls behind.

use crate::config::CellConfig;
use crate::decode::{decode_image, DecodedImage, DecodedOp};
use crate::exec;
use crate::fu::FuKind;
use crate::isa::{BranchOp, Opcode, Operand, QueueDir, Reg};
use crate::program::SectionImage;
use crate::word::InstructionWord;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// A runtime value: the machine is word-addressed and every word is a
/// single-precision float or a 32-bit integer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A single-precision float.
    F(f32),
    /// A 32-bit integer.
    I(i32),
}

impl Value {
    /// The value as a float (integers convert).
    pub fn as_f(self) -> f32 {
        match self {
            Value::F(x) => x,
            Value::I(x) => x as f32,
        }
    }

    /// The value as an integer (floats truncate).
    pub fn as_i(self) -> i32 {
        match self {
            Value::I(x) => x,
            Value::F(x) => x as i32,
        }
    }

    /// Branch-condition truth: nonzero in either representation.
    pub fn truthy(self) -> bool {
        match self {
            Value::I(x) => x != 0,
            Value::F(x) => x != 0.0,
        }
    }

    /// The raw bit pattern, for bit-exact comparison across engines
    /// (NaNs compare by representation, not by float equality).
    pub fn to_bits(self) -> u64 {
        match self {
            Value::F(x) => u64::from(x.to_bits()),
            Value::I(x) => 0x1_0000_0000 | u64::from(x as u32),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I(v) => write!(f, "{v}"),
            Value::F(v) => match f.precision() {
                Some(p) => write!(f, "{v:.p$}"),
                None => write!(f, "{v:?}"),
            },
        }
    }
}

/// What a fault was about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Strict mode: an undefined value (from a register that was never
    /// written on the executed path) reached a consuming context — a
    /// branch condition, a memory address, a divisor, a queue send, or
    /// a host-side register read. Speculative reads of undefined
    /// registers (if-converted code saves and discards values it may
    /// not need) only *propagate* undefinedness; they do not fault.
    UninitializedRead(Reg),
    /// Strict mode: an operation was issued on a unit still reserved
    /// by an earlier iterative operation.
    StructuralHazard(FuKind),
    /// A data-memory access outside the configured memory.
    MemOutOfBounds(i64),
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// The program counter left the function's code.
    PcOutOfBounds,
    /// A call to a function index the section does not have.
    BadCallTarget(u32),
    /// An operation was missing a required operand.
    MissingOperand,
    /// A register number outside the configured register file.
    BadRegister(Reg),
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::UninitializedRead(r) => write!(f, "read of uninitialized {r}"),
            FaultKind::StructuralHazard(fu) => {
                write!(f, "structural hazard: {fu} unit still reserved")
            }
            FaultKind::MemOutOfBounds(a) => write!(f, "memory access @{a} out of bounds"),
            FaultKind::DivisionByZero => write!(f, "integer division by zero"),
            FaultKind::PcOutOfBounds => write!(f, "program counter out of bounds"),
            FaultKind::BadCallTarget(t) => write!(f, "call to unknown function index {t}"),
            FaultKind::MissingOperand => write!(f, "operation is missing an operand"),
            FaultKind::BadRegister(r) => write!(f, "register {r} outside the register file"),
        }
    }
}

/// Errors from building or running a cell.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// The section's code does not fit the instruction memory.
    CodeTooLarge {
        /// Words required.
        needed: u64,
        /// Words available.
        available: u32,
    },
    /// The section's data does not fit the data memory.
    DataTooLarge {
        /// Words required.
        needed: u64,
        /// Words available.
        available: u32,
    },
    /// The section still has unresolved call relocations.
    Unlinked(String),
    /// [`Cell::prepare_call`] named a function the section lacks.
    UnknownFunction(String),
    /// [`Cell::prepare_call`] passed the wrong number of arguments.
    ArityMismatch {
        /// Function name.
        name: String,
        /// Parameters the function declares.
        expected: u16,
        /// Arguments supplied.
        got: usize,
    },
    /// Execution did not halt within the cycle budget.
    CycleLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// The machine faulted.
    Fault {
        /// Function index at the fault.
        function: usize,
        /// Word index at the fault.
        pc: usize,
        /// What went wrong.
        kind: FaultKind,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::CodeTooLarge { needed, available } => {
                write!(
                    f,
                    "code of {needed} words exceeds instruction memory of {available}"
                )
            }
            InterpError::DataTooLarge { needed, available } => {
                write!(
                    f,
                    "data of {needed} words exceeds data memory of {available}"
                )
            }
            InterpError::Unlinked(name) => {
                write!(
                    f,
                    "function {name} has unresolved calls; link the section first"
                )
            }
            InterpError::UnknownFunction(name) => write!(f, "no function named {name}"),
            InterpError::ArityMismatch {
                name,
                expected,
                got,
            } => {
                write!(f, "{name} takes {expected} arguments, got {got}")
            }
            InterpError::CycleLimit { limit } => {
                write!(f, "did not halt within {limit} cycles")
            }
            InterpError::Fault { function, pc, kind } => {
                write!(f, "fault at fn{function} word {pc}: {kind}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Result of a single [`Cell::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A word was issued.
    Ran,
    /// The word stalled on a queue; the cycle counter advanced but
    /// nothing else happened.
    Stalled,
    /// The cell has halted (return with an empty call stack).
    Halted,
}

/// A register writeback in flight: `(due_cycle, dst, value, defined)`.
pub type Writeback = (u64, Reg, Value, bool);

/// One Warp cell executing a linked [`SectionImage`].
pub struct Cell {
    config: CellConfig,
    image: SectionImage,
    /// The image's code, decoded once at construction; `step` fetches
    /// from here so no word is re-decoded per cycle.
    decoded: DecodedImage,
    regs: Vec<Value>,
    reg_def: Vec<bool>,
    mem: Vec<Value>,
    mem_def: Vec<bool>,
    strict: bool,
    fn_idx: usize,
    pc: usize,
    cycle: u64,
    halted: bool,
    call_stack: Vec<(usize, usize)>,
    pending: Vec<Writeback>,
    fu_free: [u64; 7],
    cap_out_left: Option<usize>,
    cap_out_right: Option<usize>,
    /// Values arriving from the left neighbour (or the host).
    pub in_left: VecDeque<Value>,
    /// Values arriving from the right neighbour.
    pub in_right: VecDeque<Value>,
    /// Values sent towards the left neighbour.
    pub out_left: VecDeque<Value>,
    /// Values sent towards the right neighbour (or the host).
    pub out_right: VecDeque<Value>,
}

impl Cell {
    /// Builds a cell around a linked section, checking that the image
    /// fits the configured memories.
    pub fn new(config: CellConfig, image: SectionImage) -> Result<Cell, InterpError> {
        let code_words = u64::from(image.code_words());
        if code_words > u64::from(config.inst_mem_words) {
            return Err(InterpError::CodeTooLarge {
                needed: code_words,
                available: config.inst_mem_words,
            });
        }
        if u64::from(image.data_words) > u64::from(config.data_mem_words) {
            return Err(InterpError::DataTooLarge {
                needed: u64::from(image.data_words),
                available: config.data_mem_words,
            });
        }
        if let Some(unlinked) = image.functions.iter().find(|f| !f.is_linked()) {
            return Err(InterpError::Unlinked(unlinked.name.clone()));
        }
        let entry = image.entry.min(image.functions.len().saturating_sub(1));
        let decoded = decode_image(&image);
        Ok(Cell {
            decoded,
            regs: vec![Value::I(0); usize::from(config.num_regs)],
            reg_def: vec![false; usize::from(config.num_regs)],
            mem: vec![Value::I(0); config.data_mem_words as usize],
            // Zero-filled data memory is defined by design: the paper's
            // workloads read arrays the host never wrote.
            mem_def: vec![true; config.data_mem_words as usize],
            strict: false,
            fn_idx: entry,
            pc: 0,
            cycle: 0,
            halted: image.functions.is_empty(),
            call_stack: Vec::new(),
            pending: Vec::new(),
            fu_free: [0; 7],
            cap_out_left: None,
            cap_out_right: None,
            in_left: VecDeque::new(),
            in_right: VecDeque::new(),
            out_left: VecDeque::new(),
            out_right: VecDeque::new(),
            config,
            image,
        })
    }

    /// Enables or disables strict mode (fault on structural hazards
    /// and uninitialized register reads).
    pub fn set_strict(&mut self, strict: bool) {
        self.strict = strict;
    }

    /// Cycles executed since the last [`Cell::prepare_call`].
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The configuration the cell was built with.
    pub fn config(&self) -> &CellConfig {
        &self.config
    }

    /// `true` once the cell has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Arms the cell to run the named function: arguments are placed
    /// in `r1..`, the program counter is set to the function's first
    /// word, and all execution state (registers, pipeline, call stack,
    /// cycle counter — but not data memory or the queues) is reset.
    pub fn prepare_call(&mut self, name: &str, args: &[Value]) -> Result<(), InterpError> {
        let idx = self
            .image
            .function_index(name)
            .ok_or_else(|| InterpError::UnknownFunction(name.to_string()))?;
        let expected = self.image.functions[idx].param_count;
        if usize::from(expected) != args.len() {
            return Err(InterpError::ArityMismatch {
                name: name.to_string(),
                expected,
                got: args.len(),
            });
        }
        self.start_at(idx);
        for (i, &v) in args.iter().enumerate() {
            let r = Reg::arg(i as u16);
            self.regs[usize::from(r.0)] = v;
            self.reg_def[usize::from(r.0)] = true;
        }
        Ok(())
    }

    /// Arms the cell at a function index without touching arguments —
    /// used by [`ArrayMachine`] to start every cell in its section's
    /// entry function.
    fn start_at(&mut self, idx: usize) {
        self.fn_idx = idx;
        self.pc = 0;
        self.cycle = 0;
        self.halted = self.image.functions.is_empty();
        self.call_stack.clear();
        self.pending.clear();
        self.fu_free = [0; 7];
        self.regs.iter_mut().for_each(|v| *v = Value::I(0));
        self.reg_def.iter_mut().for_each(|b| *b = false);
    }

    /// Reads a register as visible *now* (after any writebacks due
    /// this cycle). Undefined registers read as integer zero; in
    /// strict mode reading one from the host is an error, since a
    /// value the program never produced is about to become visible.
    pub fn reg(&self, r: Reg) -> Result<Value, InterpError> {
        let i = usize::from(r.0);
        if i >= self.regs.len() {
            return Err(self.fault(FaultKind::BadRegister(r)));
        }
        if !self.reg_def[i] && self.strict {
            return Err(self.fault(FaultKind::UninitializedRead(r)));
        }
        Ok(self.regs[i])
    }

    /// Where the cell is about to execute: `(function index, word
    /// index, the word itself)` — for diagnostics.
    pub fn debug_position(&self) -> (usize, usize, InstructionWord) {
        let word = self
            .image
            .functions
            .get(self.fn_idx)
            .and_then(|f| f.code.get(self.pc))
            .copied()
            .unwrap_or_default();
        (self.fn_idx, self.pc, word)
    }

    /// Runs until the cell halts, for at most `max_cycles` cycles.
    /// Returns the number of cycles executed.
    pub fn run(&mut self, max_cycles: u64) -> Result<u64, InterpError> {
        let start = self.cycle;
        while !self.halted {
            if self.cycle - start >= max_cycles {
                return Err(InterpError::CycleLimit { limit: max_cycles });
            }
            self.step()?;
        }
        Ok(self.cycle - start)
    }

    fn fault(&self, kind: FaultKind) -> InterpError {
        InterpError::Fault {
            function: self.fn_idx,
            pc: self.pc,
            kind,
        }
    }

    /// Applies every writeback due at or before the current cycle.
    fn apply_due_writebacks(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let now = self.cycle;
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= now {
                let (_, r, v, def) = self.pending.remove(i);
                self.regs[usize::from(r.0)] = v;
                self.reg_def[usize::from(r.0)] = def;
            } else {
                i += 1;
            }
        }
    }

    /// Drains *all* in-flight writebacks — the pipeline empties when
    /// the cell halts, so results of the final word are visible.
    fn drain_writebacks(&mut self) {
        for (_, r, v, def) in std::mem::take(&mut self.pending) {
            self.regs[usize::from(r.0)] = v;
            self.reg_def[usize::from(r.0)] = def;
        }
    }

    /// The concrete value of an operand; undefined registers read as
    /// integer zero (definedness travels separately, see
    /// [`exec::operand_def`]).
    fn read_operand(&self, o: Option<Operand>) -> Result<Value, InterpError> {
        exec::read_operand(&self.regs, o).map_err(|k| self.fault(k))
    }

    /// Strict mode: faults if `o` is an undefined register. Used where
    /// an undefined value would be *consumed* rather than merely
    /// copied around — addresses, divisors, branch conditions, sends.
    fn require_def(&self, o: Option<Operand>) -> Result<(), InterpError> {
        exec::require_def(self.strict, &self.reg_def, o).map_err(|k| self.fault(k))
    }

    fn in_queue(&self, dir: QueueDir) -> &VecDeque<Value> {
        match dir {
            QueueDir::Left => &self.in_left,
            QueueDir::Right => &self.in_right,
        }
    }

    /// `true` if the outgoing queue towards `dir` cannot accept
    /// another value this cycle.
    fn out_queue_full(&self, dir: QueueDir) -> bool {
        match dir {
            QueueDir::Left => self
                .cap_out_left
                .is_some_and(|cap| self.out_left.len() >= cap),
            QueueDir::Right => self
                .cap_out_right
                .is_some_and(|cap| self.out_right.len() >= cap),
        }
    }

    /// Executes one cycle.
    pub fn step(&mut self) -> Result<StepOutcome, InterpError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        // Writebacks land at the start of the cycle, so same-cycle
        // reads observe them.
        self.apply_due_writebacks();

        let (n_ops, branch, has_queue_op) = {
            let word = match self
                .decoded
                .functions
                .get(self.fn_idx)
                .and_then(|f| f.words.get(self.pc))
            {
                Some(w) => w,
                None => return Err(self.fault(FaultKind::PcOutOfBounds)),
            };
            (word.ops.len(), word.branch, word.has_queue_op)
        };
        let at =
            |i: usize| -> DecodedOp { self.decoded.functions[self.fn_idx].words[self.pc].ops[i] };

        // Stall check before any side effect: the word issues
        // atomically or not at all. Only queue ops can stall.
        if has_queue_op {
            for i in 0..n_ops {
                let op = at(i);
                let stalled = match op.opcode {
                    Opcode::Recv(dir) => self.in_queue(dir).is_empty(),
                    Opcode::Send(dir) => self.out_queue_full(dir),
                    _ => false,
                };
                if stalled {
                    self.cycle += 1;
                    return Ok(StepOutcome::Stalled);
                }
            }
        }

        let mut reg_writes: Vec<Writeback> = Vec::new();
        let mut mem_write: Option<(usize, Value, bool)> = None;
        let mut queue_push: Option<(QueueDir, Value)> = None;

        for i in 0..n_ops {
            let op = at(i);
            let slot = usize::from(op.slot);
            if self.strict && self.fu_free[slot] > self.cycle {
                return Err(self.fault(FaultKind::StructuralHazard(op.fu)));
            }
            self.fu_free[slot] = self.cycle + op.init_interval;

            let result = match op.opcode {
                Opcode::Store => {
                    self.require_def(op.a)?;
                    let addr = exec::mem_addr(self.mem.len(), self.read_operand(op.a)?)
                        .map_err(|k| self.fault(k))?;
                    let v = self.read_operand(op.b)?;
                    mem_write = Some((addr, v, exec::operand_def(&self.reg_def, op.b)));
                    None
                }
                Opcode::Send(dir) => {
                    // The value leaves the cell: undefinedness would
                    // become visible, so it must be defined.
                    self.require_def(op.a)?;
                    let v = self.read_operand(op.a)?;
                    queue_push = Some((dir, v));
                    None
                }
                Opcode::Recv(dir) => {
                    // Checked nonempty above; popped now, visible at
                    // writeback like any other result.
                    let v = match dir {
                        QueueDir::Left => self.in_left.pop_front(),
                        QueueDir::Right => self.in_right.pop_front(),
                    };
                    Some((v.expect("stall check guarantees a value"), true))
                }
                _ => Some(
                    exec::compute(
                        self.strict,
                        &self.regs,
                        &self.reg_def,
                        &self.mem,
                        &self.mem_def,
                        &op,
                    )
                    .map_err(|k| self.fault(k))?,
                ),
            };
            if let (Some(dst), Some((v, def))) = (op.dst, result) {
                if usize::from(dst.0) >= self.regs.len() {
                    return Err(self.fault(FaultKind::BadRegister(dst)));
                }
                reg_writes.push((self.cycle + op.latency, dst, v, def));
            }
        }

        // The branch condition reads the same cycle-start state as the
        // rest of the word.
        let mut next_fn = self.fn_idx;
        let mut next_pc = self.pc + 1;
        let mut halt = false;
        match branch {
            None => {}
            Some(BranchOp::Jump(t)) => next_pc = t as usize,
            Some(BranchOp::BrTrue(r, t)) => {
                // An undefined condition means control flow the program
                // never decided — consume, so strict mode faults.
                self.require_def(Some(Operand::Reg(r)))?;
                if self.reg(r)?.truthy() {
                    next_pc = t as usize;
                }
            }
            Some(BranchOp::Call(t)) => {
                if t as usize >= self.image.functions.len() {
                    return Err(self.fault(FaultKind::BadCallTarget(t)));
                }
                self.call_stack.push((self.fn_idx, self.pc + 1));
                next_fn = t as usize;
                next_pc = 0;
            }
            Some(BranchOp::Ret) => match self.call_stack.pop() {
                Some((f, p)) => {
                    next_fn = f;
                    next_pc = p;
                }
                None => halt = true,
            },
        }

        // Commit.
        if let Some((addr, v, def)) = mem_write {
            self.mem[addr] = v;
            self.mem_def[addr] = def;
        }
        if let Some((dir, v)) = queue_push {
            match dir {
                QueueDir::Left => self.out_left.push_back(v),
                QueueDir::Right => self.out_right.push_back(v),
            }
        }
        self.pending.extend(reg_writes);
        self.fn_idx = next_fn;
        self.pc = next_pc;
        self.cycle += 1;
        if halt {
            self.halted = true;
            self.drain_writebacks();
            return Ok(StepOutcome::Halted);
        }
        Ok(StepOutcome::Ran)
    }
}

/// Run statistics of an [`ArrayMachine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stats {
    /// Global cycles until every cell halted.
    pub cycles: u64,
    /// Total stalled cell-cycles (queue waits) across all cells.
    pub stall_cycles: u64,
}

/// The linear array: one [`Cell`] per array position, with bounded
/// queues between neighbours. Cell `i`'s `out_right` feeds cell
/// `i + 1`'s `in_left` and vice versa; the outward-facing queues of
/// the end cells stay unbounded for the host.
pub struct ArrayMachine {
    cells: Vec<Cell>,
    queue_depth: usize,
}

impl ArrayMachine {
    /// Builds the array: each section occupies the cells
    /// `first_cell..=last_cell`, and every cell starts in its
    /// section's entry function.
    pub fn new(config: CellConfig, sections: &[SectionImage]) -> Result<ArrayMachine, InterpError> {
        let mut ordered: Vec<&SectionImage> = sections.iter().collect();
        ordered.sort_by_key(|s| s.first_cell);
        let mut cells = Vec::new();
        for sec in ordered {
            for _ in sec.first_cell..=sec.last_cell {
                let mut cell = Cell::new(config, sec.clone())?;
                cell.start_at(sec.entry.min(sec.functions.len().saturating_sub(1)));
                cells.push(cell);
            }
        }
        let depth = config.queue_depth.max(1) as usize;
        let n = cells.len();
        for (i, cell) in cells.iter_mut().enumerate() {
            if i > 0 {
                cell.cap_out_left = Some(depth);
            }
            if i + 1 < n {
                cell.cap_out_right = Some(depth);
            }
        }
        Ok(ArrayMachine {
            cells,
            queue_depth: depth,
        })
    }

    /// Number of cells in the array.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Mutable access to cell `i` — to push host inputs, pop outputs,
    /// or inspect registers.
    pub fn cell_mut(&mut self, i: usize) -> &mut Cell {
        &mut self.cells[i]
    }

    /// Moves values across the inter-cell links, respecting the
    /// bounded depth of the receiving queues.
    fn transfer(&mut self) {
        let depth = self.queue_depth;
        for i in 0..self.cells.len().saturating_sub(1) {
            let (left_half, right_half) = self.cells.split_at_mut(i + 1);
            let left = &mut left_half[i];
            let right = &mut right_half[0];
            while !left.out_right.is_empty() && right.in_left.len() < depth {
                right
                    .in_left
                    .push_back(left.out_right.pop_front().expect("nonempty"));
            }
            while !right.out_left.is_empty() && left.in_right.len() < depth {
                left.in_right
                    .push_back(right.out_left.pop_front().expect("nonempty"));
            }
        }
    }

    /// Runs every cell until all have halted, for at most `max_cycles`
    /// global cycles.
    pub fn run(&mut self, max_cycles: u64) -> Result<Stats, InterpError> {
        let mut stats = Stats::default();
        while self.cells.iter().any(|c| !c.halted) {
            if stats.cycles >= max_cycles {
                return Err(InterpError::CycleLimit { limit: max_cycles });
            }
            for cell in &mut self.cells {
                if cell.halted {
                    continue;
                }
                if cell.step()? == StepOutcome::Stalled {
                    stats.stall_cycles += 1;
                }
            }
            self.transfer();
            stats.cycles += 1;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Op;
    use crate::program::{FunctionImage, SectionImage};

    fn word(places: &[(FuKind, Op)], branch: Option<BranchOp>) -> InstructionWord {
        let mut w = InstructionWord::new();
        for &(fu, op) in places {
            w.place(fu, op).expect("free slot");
        }
        w.branch = branch;
        w
    }

    fn section(code: Vec<InstructionWord>, param_count: u16) -> SectionImage {
        SectionImage {
            name: "s".into(),
            first_cell: 0,
            last_cell: 0,
            functions: vec![FunctionImage {
                name: "f".into(),
                code,
                data_words: 16,
                param_count,
                returns_value: true,
                call_relocs: vec![],
            }],
            data_bases: vec![0],
            data_words: 16,
            entry: 0,
        }
    }

    fn mov(dst: Reg, v: Operand) -> Op {
        Op::new1(Opcode::Move, dst, v)
    }

    #[test]
    fn writeback_latency_is_visible() {
        // fadd r12 <- 1.0 + 2.0 issued at cycle 0 lands at cycle 5:
        // a same-word and a next-cycle reader both see the old value.
        let code = vec![
            word(
                &[
                    (FuKind::Alu, mov(Reg(12), Operand::ImmI(7))),
                    (
                        FuKind::FAdd,
                        Op::new2(
                            Opcode::FAdd,
                            Reg(13),
                            Operand::ImmF(1.0),
                            Operand::ImmF(2.0),
                        ),
                    ),
                ],
                None,
            ),
            word(&[(FuKind::Alu, mov(Reg(14), Operand::Reg(Reg(12))))], None),
            InstructionWord::new(),
            InstructionWord::new(),
            InstructionWord::new(),
            word(&[(FuKind::Alu, mov(Reg(0), Operand::Reg(Reg(13))))], None),
            InstructionWord::branch_only(BranchOp::Ret),
        ];
        let mut cell = Cell::new(CellConfig::default(), section(code, 0)).unwrap();
        cell.set_strict(true);
        cell.prepare_call("f", &[]).unwrap();
        cell.run(100).unwrap();
        // mov r14 <- r12 at cycle 1 sees the cycle-1 writeback of r12.
        assert_eq!(cell.reg(Reg(14)).unwrap(), Value::I(7));
        // mov r0 <- r13 at cycle 5 sees the FAdd result exactly then.
        assert_eq!(cell.reg(Reg(0)).unwrap(), Value::F(3.0));
    }

    #[test]
    fn strict_mode_tracks_undefined_values_to_consumption() {
        // Speculatively copying an undefined register is legal (the
        // if-converter does exactly this); the undefinedness travels
        // with the value and only faults where it is consumed — here,
        // the host-side read of the return register.
        let code = vec![
            word(&[(FuKind::Alu, mov(Reg(0), Operand::Reg(Reg(20))))], None),
            InstructionWord::branch_only(BranchOp::Ret),
        ];
        let mut cell = Cell::new(CellConfig::default(), section(code.clone(), 0)).unwrap();
        cell.set_strict(true);
        cell.prepare_call("f", &[]).unwrap();
        cell.run(10).unwrap();
        let err = cell.reg(Reg::RET).unwrap_err();
        assert!(
            matches!(
                err,
                InterpError::Fault {
                    kind: FaultKind::UninitializedRead(Reg(0)),
                    ..
                }
            ),
            "{err}"
        );
        // Non-strict: the same program reads integer zero.
        let mut cell = Cell::new(CellConfig::default(), section(code, 0)).unwrap();
        cell.prepare_call("f", &[]).unwrap();
        cell.run(10).unwrap();
        assert_eq!(cell.reg(Reg::RET).unwrap(), Value::I(0));
    }

    #[test]
    fn strict_mode_faults_on_undefined_branch_condition() {
        let code = vec![
            InstructionWord::branch_only(BranchOp::BrTrue(Reg(20), 0)),
            InstructionWord::branch_only(BranchOp::Ret),
        ];
        let mut cell = Cell::new(CellConfig::default(), section(code.clone(), 0)).unwrap();
        cell.set_strict(true);
        cell.prepare_call("f", &[]).unwrap();
        let err = cell.run(10).unwrap_err();
        assert!(
            matches!(
                err,
                InterpError::Fault {
                    kind: FaultKind::UninitializedRead(Reg(20)),
                    ..
                }
            ),
            "{err}"
        );
        // Non-strict: the undefined condition reads zero — not taken.
        let mut cell = Cell::new(CellConfig::default(), section(code, 0)).unwrap();
        cell.prepare_call("f", &[]).unwrap();
        cell.run(10).unwrap();
        assert!(cell.is_halted());
    }

    #[test]
    fn selt_discards_undefinedness_of_the_unselected_side() {
        // cond = 1 selects the defined immediate even though the dst
        // held an undefined value; the result is defined and clean.
        let selt = Op::new2(Opcode::SelT, Reg(0), Operand::ImmI(1), Operand::ImmF(2.5));
        let code = vec![
            word(&[(FuKind::Alu, selt)], None),
            InstructionWord::new(),
            InstructionWord::branch_only(BranchOp::Ret),
        ];
        let mut cell = Cell::new(CellConfig::default(), section(code, 0)).unwrap();
        cell.set_strict(true);
        cell.prepare_call("f", &[]).unwrap();
        cell.run(10).unwrap();
        assert_eq!(cell.reg(Reg::RET).unwrap(), Value::F(2.5));
    }

    #[test]
    fn strict_mode_faults_on_structural_hazard() {
        // Back-to-back integer divides on the ALU violate the 8-cycle
        // initiation interval.
        let div = Op::new2(Opcode::IDiv, Reg(12), Operand::ImmI(9), Operand::ImmI(3));
        let code = vec![
            word(&[(FuKind::Alu, div)], None),
            word(&[(FuKind::Alu, div)], None),
            InstructionWord::branch_only(BranchOp::Ret),
        ];
        let mut cell = Cell::new(CellConfig::default(), section(code, 0)).unwrap();
        cell.set_strict(true);
        cell.prepare_call("f", &[]).unwrap();
        let err = cell.run(10).unwrap_err();
        assert!(
            matches!(
                err,
                InterpError::Fault {
                    kind: FaultKind::StructuralHazard(FuKind::Alu),
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn recv_stalls_until_data_arrives() {
        let recv = Op {
            opcode: Opcode::Recv(QueueDir::Left),
            dst: Some(Reg(12)),
            a: None,
            b: None,
        };
        let send = Op {
            opcode: Opcode::Send(QueueDir::Right),
            dst: None,
            a: Some(Operand::Reg(Reg(12))),
            b: None,
        };
        let code = vec![
            word(&[(FuKind::Queue, recv)], None),
            word(&[(FuKind::Queue, send)], None),
            InstructionWord::branch_only(BranchOp::Ret),
        ];
        let mut cell = Cell::new(CellConfig::default(), section(code, 0)).unwrap();
        cell.prepare_call("f", &[]).unwrap();
        assert_eq!(cell.step().unwrap(), StepOutcome::Stalled);
        assert_eq!(cell.step().unwrap(), StepOutcome::Stalled);
        cell.in_left.push_back(Value::F(4.5));
        assert_eq!(cell.step().unwrap(), StepOutcome::Ran);
        cell.run(10).unwrap();
        assert_eq!(cell.out_right.pop_front(), Some(Value::F(4.5)));
    }

    #[test]
    fn in_flight_writebacks_survive_a_taken_branch() {
        // Kernel of a pipelined loop: the FAdd issued in the branch
        // word completes after the backward branch is taken.
        let fadd = Op::new2(
            Opcode::FAdd,
            Reg(13),
            Operand::Reg(Reg(13)),
            Operand::ImmF(1.0),
        );
        let dec = Op::new2(
            Opcode::ISub,
            Reg(12),
            Operand::Reg(Reg(12)),
            Operand::ImmI(1),
        );
        let code = vec![
            // r13 := 0.0; r12 := 3 (counter)
            word(
                &[
                    (FuKind::Alu, mov(Reg(13), Operand::ImmF(0.0))),
                    (FuKind::Agu, mov(Reg(12), Operand::ImmI(3))),
                ],
                None,
            ),
            // kernel (ii = 5 to respect the FAdd self-dependence):
            word(&[(FuKind::FAdd, fadd), (FuKind::Alu, dec)], None),
            InstructionWord::new(),
            InstructionWord::new(),
            InstructionWord::new(),
            word(&[], Some(BranchOp::BrTrue(Reg(12), 1))),
            // epilogue: wait for the last fadd, move to r0.
            InstructionWord::new(),
            InstructionWord::new(),
            InstructionWord::new(),
            word(&[(FuKind::Alu, mov(Reg(0), Operand::Reg(Reg(13))))], None),
            InstructionWord::branch_only(BranchOp::Ret),
        ];
        let mut cell = Cell::new(CellConfig::default(), section(code, 0)).unwrap();
        cell.set_strict(true);
        cell.prepare_call("f", &[]).unwrap();
        cell.run(200).unwrap();
        // 3 trips of the kernel: the branch sees the counter already
        // decremented (3 -> 2, 2 -> 1 taken; 1 -> 0 falls through).
        assert_eq!(cell.reg(Reg::RET).unwrap(), Value::F(3.0));
    }

    #[test]
    fn array_backpressure_counts_stalls() {
        // Producer floods 200 sends; consumer of one section recv-adds
        // slowly. Queue depth limits occupancy and forces stalls.
        let send = Op {
            opcode: Opcode::Send(QueueDir::Right),
            dst: None,
            a: Some(Operand::ImmF(2.0)),
            b: None,
        };
        let dec = Op::new2(
            Opcode::ISub,
            Reg(12),
            Operand::Reg(Reg(12)),
            Operand::ImmI(1),
        );
        let producer = SectionImage {
            name: "p".into(),
            first_cell: 0,
            last_cell: 0,
            functions: vec![FunctionImage {
                name: "main".into(),
                code: vec![
                    word(&[(FuKind::Alu, mov(Reg(12), Operand::ImmI(199)))], None),
                    word(
                        &[(FuKind::Queue, send), (FuKind::Alu, dec)],
                        Some(BranchOp::BrTrue(Reg(12), 1)),
                    ),
                    InstructionWord::branch_only(BranchOp::Ret),
                ],
                data_words: 0,
                param_count: 0,
                returns_value: false,
                call_relocs: vec![],
            }],
            data_bases: vec![0],
            data_words: 0,
            entry: 0,
        };
        let recv = Op {
            opcode: Opcode::Recv(QueueDir::Left),
            dst: Some(Reg(13)),
            a: None,
            b: None,
        };
        let mut consumer = producer.clone();
        consumer.name = "c".into();
        consumer.first_cell = 1;
        consumer.last_cell = 1;
        // The producer's same-word branch reads the counter before the
        // decrement lands (200 sends from 199); the consumer's branch
        // sits after the decrement, so it needs 200 to balance.
        consumer.functions[0].code = vec![
            word(&[(FuKind::Alu, mov(Reg(12), Operand::ImmI(200)))], None),
            word(&[(FuKind::Queue, recv), (FuKind::Alu, dec)], None),
            InstructionWord::new(),
            InstructionWord::new(),
            word(&[], Some(BranchOp::BrTrue(Reg(12), 1))),
            InstructionWord::branch_only(BranchOp::Ret),
        ];
        let config = CellConfig {
            queue_depth: 4,
            ..CellConfig::default()
        };
        let mut array = ArrayMachine::new(config, &[producer, consumer]).unwrap();
        let stats = array.run(100_000).unwrap();
        assert!(stats.stall_cycles > 0, "{stats:?}");
        assert!(array.cell_mut(0).out_right.is_empty());
        assert!(array.cell_mut(1).in_left.is_empty());
    }
}
