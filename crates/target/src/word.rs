//! The wide microinstruction word: one slot per functional unit plus a
//! branch slot.

use crate::fu::FuKind;
use crate::isa::{BranchOp, Op};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error from [`InstructionWord::place`]: the slot already holds an
/// operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotOccupied {
    /// The unit whose slot was already taken.
    pub fu: FuKind,
}

impl fmt::Display for SlotOccupied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} slot already occupied", self.fu)
    }
}

impl std::error::Error for SlotOccupied {}

/// One wide instruction word. Every cycle the cell issues one word:
/// all placed operations start together, and the branch (if any)
/// redirects the program counter for the next cycle.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct InstructionWord {
    slots: [Option<Op>; 7],
    /// The branch slot.
    pub branch: Option<BranchOp>,
}

impl InstructionWord {
    /// An empty word (a machine no-op).
    pub fn new() -> InstructionWord {
        InstructionWord::default()
    }

    /// A word holding only a branch.
    pub fn branch_only(branch: BranchOp) -> InstructionWord {
        InstructionWord {
            slots: Default::default(),
            branch: Some(branch),
        }
    }

    /// Places `op` in the slot of `fu`; fails if the slot is taken.
    pub fn place(&mut self, fu: FuKind, op: Op) -> Result<(), SlotOccupied> {
        let slot = &mut self.slots[fu.slot_index()];
        if slot.is_some() {
            return Err(SlotOccupied { fu });
        }
        *slot = Some(op);
        Ok(())
    }

    /// Overwrites the slot of `fu` with `op`.
    pub fn replace(&mut self, fu: FuKind, op: Op) {
        self.slots[fu.slot_index()] = Some(op);
    }

    /// The operation in the slot of `fu`, if any.
    pub fn slot(&self, fu: FuKind) -> Option<&Op> {
        self.slots[fu.slot_index()].as_ref()
    }

    /// `true` if no operation is placed and there is no branch.
    pub fn is_empty(&self) -> bool {
        self.branch.is_none() && self.slots.iter().all(Option::is_none)
    }

    /// The placed operations with their units, in slot order.
    pub fn ops(&self) -> impl Iterator<Item = (FuKind, &Op)> {
        FuKind::ALL
            .into_iter()
            .filter_map(move |fu| self.slots[fu.slot_index()].as_ref().map(|op| (fu, op)))
    }
}

impl fmt::Display for InstructionWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut first = true;
        for (_, op) in self.ops() {
            if !first {
                write!(f, " | ")?;
            }
            write!(f, "{op}")?;
            first = false;
        }
        if let Some(b) = &self.branch {
            if !first {
                write!(f, " | ")?;
            }
            write!(f, "br: {b}")?;
            first = false;
        }
        if first {
            write!(f, "nop")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Opcode, Operand, Reg};

    fn iadd() -> Op {
        Op::new2(
            Opcode::IAdd,
            Reg(12),
            Operand::Reg(Reg(13)),
            Operand::ImmI(1),
        )
    }

    #[test]
    fn place_rejects_double_booking() {
        let mut w = InstructionWord::new();
        assert!(w.is_empty());
        w.place(FuKind::Alu, iadd()).unwrap();
        assert_eq!(
            w.place(FuKind::Alu, iadd()),
            Err(SlotOccupied { fu: FuKind::Alu })
        );
        w.place(FuKind::Agu, iadd()).unwrap();
        assert_eq!(w.ops().count(), 2);
        assert!(w.slot(FuKind::Alu).is_some());
        assert!(w.slot(FuKind::Mem).is_none());
    }

    #[test]
    fn branch_only_word_displays() {
        let w = InstructionWord::branch_only(BranchOp::Jump(3));
        assert_eq!(w.to_string(), "[br: jump 3]");
        assert_eq!(InstructionWord::new().to_string(), "[nop]");
    }
}
