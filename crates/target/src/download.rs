//! The download-module format of phase 4: a checksummed binary
//! serialization of a [`ModuleImage`] as the host would download it to
//! the array.
//!
//! The format is deliberately simple and fully self-describing: a
//! magic header, length-prefixed strings, fixed-width little-endian
//! integers, floats as IEEE-754 bit patterns (so round-trips are
//! bit-exact), and a trailing FNV-1a checksum over everything before
//! it. [`decode`] verifies the checksum and bounds-checks every read,
//! so corrupted images are rejected rather than misinterpreted.

use crate::isa::{BranchOp, CmpKind, Op, Opcode, Operand, QueueDir, Reg};
use crate::program::{CallReloc, FunctionImage, ModuleImage, SectionImage};
use crate::word::InstructionWord;
use std::fmt;

/// Magic bytes opening every download image.
pub const MAGIC: &[u8; 8] = b"WARPDL01";

/// Errors from [`encode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A count (functions, words, string length) exceeds `u32`.
    TooLarge(&'static str),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooLarge(what) => write!(f, "{what} too large for the download format"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The image does not start with [`MAGIC`].
    BadMagic,
    /// The image ends before a field is complete.
    Truncated,
    /// The trailing checksum does not match the payload.
    ChecksumMismatch {
        /// Checksum stored in the image.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// An enum tag byte has no meaning.
    BadTag(&'static str, u8),
    /// A string field is not UTF-8.
    BadString,
    /// Bytes remain after the checksum.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a download image (bad magic)"),
            DecodeError::Truncated => write!(f, "download image is truncated"),
            DecodeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            DecodeError::BadTag(what, tag) => write!(f, "invalid {what} tag {tag:#04x}"),
            DecodeError::BadString => write!(f, "string field is not UTF-8"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after checksum"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    fn str(&mut self, s: &str) -> Result<(), EncodeError> {
        let len = u32::try_from(s.len()).map_err(|_| EncodeError::TooLarge("string"))?;
        self.u32(len);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    fn count(&mut self, n: usize, what: &'static str) -> Result<(), EncodeError> {
        self.u32(u32::try_from(n).map_err(|_| EncodeError::TooLarge(what))?);
        Ok(())
    }

    fn reg(&mut self, r: Reg) {
        self.u16(r.0);
    }

    fn operand(&mut self, o: Operand) {
        match o {
            Operand::Reg(r) => {
                self.u8(0);
                self.reg(r);
            }
            Operand::ImmI(v) => {
                self.u8(1);
                self.i32(v);
            }
            Operand::ImmF(v) => {
                self.u8(2);
                self.f32(v);
            }
            Operand::Addr(a) => {
                self.u8(3);
                self.u32(a);
            }
        }
    }

    fn opcode(&mut self, op: Opcode) {
        let (tag, sub) = opcode_tag(op);
        self.u8(tag);
        if let Some(sub) = sub {
            self.u8(sub);
        }
    }

    fn op(&mut self, op: &Op) {
        self.opcode(op.opcode);
        match op.dst {
            None => self.u8(0),
            Some(r) => {
                self.u8(1);
                self.reg(r);
            }
        }
        for operand in [op.a, op.b] {
            match operand {
                None => self.u8(0),
                Some(o) => {
                    self.u8(1);
                    self.operand(o);
                }
            }
        }
    }

    fn branch(&mut self, b: &BranchOp) {
        match b {
            BranchOp::Jump(t) => {
                self.u8(0);
                self.u32(*t);
            }
            BranchOp::BrTrue(r, t) => {
                self.u8(1);
                self.reg(*r);
                self.u32(*t);
            }
            BranchOp::Call(t) => {
                self.u8(2);
                self.u32(*t);
            }
            BranchOp::Ret => self.u8(3),
        }
    }

    fn word(&mut self, w: &InstructionWord) {
        for (fu, _) in w.ops() {
            self.u8(1 + fu.slot_index() as u8);
        }
        self.u8(0);
        for (_, op) in w.ops() {
            self.op(op);
        }
        match &w.branch {
            None => self.u8(0),
            Some(b) => {
                self.u8(1);
                self.branch(b);
            }
        }
    }

    fn function(&mut self, f: &FunctionImage) -> Result<(), EncodeError> {
        self.str(&f.name)?;
        self.u16(f.param_count);
        self.u8(u8::from(f.returns_value));
        self.u32(f.data_words);
        self.count(f.call_relocs.len(), "call relocations")?;
        for r in &f.call_relocs {
            self.u32(r.word);
            self.str(&r.callee)?;
        }
        self.count(f.code.len(), "code")?;
        for w in &f.code {
            self.word(w);
        }
        Ok(())
    }

    fn section(&mut self, s: &SectionImage) -> Result<(), EncodeError> {
        self.str(&s.name)?;
        self.u32(s.first_cell);
        self.u32(s.last_cell);
        self.u32(u32::try_from(s.entry).map_err(|_| EncodeError::TooLarge("entry index"))?);
        self.u32(s.data_words);
        self.count(s.data_bases.len(), "data bases")?;
        for &b in &s.data_bases {
            self.u32(b);
        }
        self.count(s.functions.len(), "functions")?;
        for f in &s.functions {
            self.function(f)?;
        }
        Ok(())
    }
}

/// Encodes a module image as a checksummed download image.
pub fn encode(module: &ModuleImage) -> Result<Vec<u8>, EncodeError> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.str(&module.name)?;
    w.str(&module.io_driver)?;
    w.count(module.section_images.len(), "sections")?;
    for s in &module.section_images {
        w.section(s)?;
    }
    let sum = fnv1a(&w.buf);
    w.u32(sum);
    Ok(w.buf)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(i32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadString)
    }

    /// Reads a count, rejecting values that could not possibly fit in
    /// the remaining bytes (each element needs at least one byte).
    fn count(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n > self.bytes.len() - self.pos {
            return Err(DecodeError::Truncated);
        }
        Ok(n)
    }

    fn reg(&mut self) -> Result<Reg, DecodeError> {
        Ok(Reg(self.u16()?))
    }

    fn operand(&mut self) -> Result<Operand, DecodeError> {
        match self.u8()? {
            0 => Ok(Operand::Reg(self.reg()?)),
            1 => Ok(Operand::ImmI(self.i32()?)),
            2 => Ok(Operand::ImmF(self.f32()?)),
            3 => Ok(Operand::Addr(self.u32()?)),
            t => Err(DecodeError::BadTag("operand", t)),
        }
    }

    fn opcode(&mut self) -> Result<Opcode, DecodeError> {
        let tag = self.u8()?;
        opcode_from_tag(tag, || self.u8())
    }

    fn op(&mut self) -> Result<Op, DecodeError> {
        let opcode = self.opcode()?;
        let dst = match self.u8()? {
            0 => None,
            1 => Some(self.reg()?),
            t => return Err(DecodeError::BadTag("destination", t)),
        };
        let mut operands = [None, None];
        for slot in &mut operands {
            *slot = match self.u8()? {
                0 => None,
                1 => Some(self.operand()?),
                t => return Err(DecodeError::BadTag("operand presence", t)),
            };
        }
        Ok(Op {
            opcode,
            dst,
            a: operands[0],
            b: operands[1],
        })
    }

    fn branch(&mut self) -> Result<BranchOp, DecodeError> {
        match self.u8()? {
            0 => Ok(BranchOp::Jump(self.u32()?)),
            1 => Ok(BranchOp::BrTrue(self.reg()?, self.u32()?)),
            2 => Ok(BranchOp::Call(self.u32()?)),
            3 => Ok(BranchOp::Ret),
            t => Err(DecodeError::BadTag("branch", t)),
        }
    }

    fn word(&mut self) -> Result<InstructionWord, DecodeError> {
        let mut slots = Vec::new();
        loop {
            match self.u8()? {
                0 => break,
                s @ 1..=7 => slots.push(s - 1),
                t => return Err(DecodeError::BadTag("slot", t)),
            }
            if slots.len() > 7 {
                return Err(DecodeError::BadTag("slot list", 8));
            }
        }
        let mut w = InstructionWord::new();
        for slot in slots {
            let op = self.op()?;
            let fu = crate::fu::FuKind::ALL[usize::from(slot)];
            w.replace(fu, op);
        }
        w.branch = match self.u8()? {
            0 => None,
            1 => Some(self.branch()?),
            t => return Err(DecodeError::BadTag("branch presence", t)),
        };
        Ok(w)
    }

    fn function(&mut self) -> Result<FunctionImage, DecodeError> {
        let name = self.str()?;
        let param_count = self.u16()?;
        let returns_value = self.u8()? != 0;
        let data_words = self.u32()?;
        let n_relocs = self.count()?;
        let mut call_relocs = Vec::with_capacity(n_relocs);
        for _ in 0..n_relocs {
            let word = self.u32()?;
            let callee = self.str()?;
            call_relocs.push(CallReloc { word, callee });
        }
        let n_words = self.count()?;
        let mut code = Vec::with_capacity(n_words);
        for _ in 0..n_words {
            code.push(self.word()?);
        }
        Ok(FunctionImage {
            name,
            code,
            data_words,
            param_count,
            returns_value,
            call_relocs,
        })
    }

    fn section(&mut self) -> Result<SectionImage, DecodeError> {
        let name = self.str()?;
        let first_cell = self.u32()?;
        let last_cell = self.u32()?;
        let entry = self.u32()? as usize;
        let data_words = self.u32()?;
        let n_bases = self.count()?;
        let mut data_bases = Vec::with_capacity(n_bases);
        for _ in 0..n_bases {
            data_bases.push(self.u32()?);
        }
        let n_functions = self.count()?;
        let mut functions = Vec::with_capacity(n_functions);
        for _ in 0..n_functions {
            functions.push(self.function()?);
        }
        Ok(SectionImage {
            name,
            first_cell,
            last_cell,
            functions,
            data_bases,
            data_words,
            entry,
        })
    }
}

/// Magic bytes opening a standalone (pre-link) function image — the
/// unit the incremental compilation cache stores.
pub const FUNCTION_MAGIC: &[u8; 8] = b"WARPFN01";

/// Encodes a single (possibly unlinked) function image with the same
/// bit-exact field codec as the download format, framed by
/// [`FUNCTION_MAGIC`] and a trailing FNV-1a checksum. This is the
/// serialization `warp-cache` objects use for the image half of a
/// cached compilation.
///
/// # Errors
///
/// Returns [`EncodeError`] if a count exceeds the format's `u32`
/// limits.
pub fn encode_function(image: &FunctionImage) -> Result<Vec<u8>, EncodeError> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(FUNCTION_MAGIC);
    w.function(image)?;
    let sum = fnv1a(&w.buf);
    w.u32(sum);
    Ok(w.buf)
}

/// Decodes and checksum-verifies a standalone function image written
/// by [`encode_function`].
///
/// # Errors
///
/// Returns [`DecodeError`] on framing, checksum or field violations.
pub fn decode_function(bytes: &[u8]) -> Result<FunctionImage, DecodeError> {
    if bytes.len() < FUNCTION_MAGIC.len() + 4 {
        return Err(DecodeError::Truncated);
    }
    if &bytes[..FUNCTION_MAGIC.len()] != FUNCTION_MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let payload_end = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[payload_end..].try_into().expect("4 bytes"));
    let computed = fnv1a(&bytes[..payload_end]);
    if stored != computed {
        return Err(DecodeError::ChecksumMismatch { stored, computed });
    }
    let mut r = Reader {
        bytes: &bytes[..payload_end],
        pos: FUNCTION_MAGIC.len(),
    };
    let image = r.function()?;
    if r.pos != r.bytes.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(image)
}

/// Decodes and checksum-verifies a download image.
pub fn decode(bytes: &[u8]) -> Result<ModuleImage, DecodeError> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(DecodeError::Truncated);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let payload_end = bytes.len() - 4;
    let stored = u32::from_le_bytes(bytes[payload_end..].try_into().expect("4 bytes"));
    let computed = fnv1a(&bytes[..payload_end]);
    if stored != computed {
        return Err(DecodeError::ChecksumMismatch { stored, computed });
    }
    let mut r = Reader {
        bytes: &bytes[..payload_end],
        pos: MAGIC.len(),
    };
    let name = r.str()?;
    let io_driver = r.str()?;
    let n_sections = r.count()?;
    let mut section_images = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        section_images.push(r.section()?);
    }
    if r.pos != r.bytes.len() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(ModuleImage {
        name,
        section_images,
        io_driver,
    })
}

fn opcode_tag(op: Opcode) -> (u8, Option<u8>) {
    let cmp = |k: CmpKind| {
        Some(match k {
            CmpKind::Eq => 0,
            CmpKind::Ne => 1,
            CmpKind::Lt => 2,
            CmpKind::Le => 3,
            CmpKind::Gt => 4,
            CmpKind::Ge => 5,
        })
    };
    let dir = |d: QueueDir| {
        Some(match d {
            QueueDir::Left => 0,
            QueueDir::Right => 1,
        })
    };
    match op {
        Opcode::IAdd => (0, None),
        Opcode::ISub => (1, None),
        Opcode::IMul => (2, None),
        Opcode::IDiv => (3, None),
        Opcode::IMod => (4, None),
        Opcode::INeg => (5, None),
        Opcode::IAbs => (6, None),
        Opcode::IMin => (7, None),
        Opcode::IMax => (8, None),
        Opcode::ICmp(k) => (9, cmp(k)),
        Opcode::FAdd => (10, None),
        Opcode::FSub => (11, None),
        Opcode::FMul => (12, None),
        Opcode::FDiv => (13, None),
        Opcode::FNeg => (14, None),
        Opcode::FAbs => (15, None),
        Opcode::FMin => (16, None),
        Opcode::FMax => (17, None),
        Opcode::FSqrt => (18, None),
        Opcode::FSin => (19, None),
        Opcode::FCos => (20, None),
        Opcode::FExp => (21, None),
        Opcode::FLog => (22, None),
        Opcode::FFloor => (23, None),
        Opcode::FCmp(k) => (24, cmp(k)),
        Opcode::ItoF => (25, None),
        Opcode::FtoI => (26, None),
        Opcode::BAnd => (27, None),
        Opcode::BOr => (28, None),
        Opcode::BNot => (29, None),
        Opcode::Move => (30, None),
        Opcode::Load => (31, None),
        Opcode::Store => (32, None),
        Opcode::Send(d) => (33, dir(d)),
        Opcode::Recv(d) => (34, dir(d)),
        Opcode::SelT => (35, None),
    }
}

fn opcode_from_tag(
    tag: u8,
    mut sub: impl FnMut() -> Result<u8, DecodeError>,
) -> Result<Opcode, DecodeError> {
    let cmp = |s: u8| match s {
        0 => Ok(CmpKind::Eq),
        1 => Ok(CmpKind::Ne),
        2 => Ok(CmpKind::Lt),
        3 => Ok(CmpKind::Le),
        4 => Ok(CmpKind::Gt),
        5 => Ok(CmpKind::Ge),
        t => Err(DecodeError::BadTag("comparison", t)),
    };
    let dir = |s: u8| match s {
        0 => Ok(QueueDir::Left),
        1 => Ok(QueueDir::Right),
        t => Err(DecodeError::BadTag("queue direction", t)),
    };
    Ok(match tag {
        0 => Opcode::IAdd,
        1 => Opcode::ISub,
        2 => Opcode::IMul,
        3 => Opcode::IDiv,
        4 => Opcode::IMod,
        5 => Opcode::INeg,
        6 => Opcode::IAbs,
        7 => Opcode::IMin,
        8 => Opcode::IMax,
        9 => Opcode::ICmp(cmp(sub()?)?),
        10 => Opcode::FAdd,
        11 => Opcode::FSub,
        12 => Opcode::FMul,
        13 => Opcode::FDiv,
        14 => Opcode::FNeg,
        15 => Opcode::FAbs,
        16 => Opcode::FMin,
        17 => Opcode::FMax,
        18 => Opcode::FSqrt,
        19 => Opcode::FSin,
        20 => Opcode::FCos,
        21 => Opcode::FExp,
        22 => Opcode::FLog,
        23 => Opcode::FFloor,
        24 => Opcode::FCmp(cmp(sub()?)?),
        25 => Opcode::ItoF,
        26 => Opcode::FtoI,
        27 => Opcode::BAnd,
        28 => Opcode::BOr,
        29 => Opcode::BNot,
        30 => Opcode::Move,
        31 => Opcode::Load,
        32 => Opcode::Store,
        33 => Opcode::Send(dir(sub()?)?),
        34 => Opcode::Recv(dir(sub()?)?),
        35 => Opcode::SelT,
        t => return Err(DecodeError::BadTag("opcode", t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::FuKind;

    fn fixture() -> ModuleImage {
        let mut w0 = InstructionWord::new();
        w0.replace(
            FuKind::Alu,
            Op::new2(
                Opcode::IAdd,
                Reg(12),
                Operand::Reg(Reg(1)),
                Operand::ImmI(3),
            ),
        );
        w0.replace(
            FuKind::FAdd,
            Op::new2(
                Opcode::FAdd,
                Reg(13),
                Operand::ImmF(1.5),
                Operand::Reg(Reg(12)),
            ),
        );
        let w1 = InstructionWord::branch_only(BranchOp::Ret);
        ModuleImage {
            name: "m".into(),
            io_driver: "driver text".into(),
            section_images: vec![SectionImage {
                name: "main".into(),
                first_cell: 0,
                last_cell: 9,
                functions: vec![FunctionImage {
                    name: "f".into(),
                    code: vec![w0, w1],
                    data_words: 12,
                    param_count: 1,
                    returns_value: true,
                    call_relocs: vec![CallReloc {
                        word: 0,
                        callee: "g".into(),
                    }],
                }],
                data_bases: vec![0],
                data_words: 12,
                entry: 0,
            }],
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let m = fixture();
        let bytes = encode(&m).unwrap();
        assert_eq!(decode(&bytes).unwrap(), m);
    }

    #[test]
    fn function_round_trip_is_exact() {
        // The cache stores *pre-link* images: call relocations must
        // survive the round trip bit-exactly.
        let f = fixture().section_images[0].functions[0].clone();
        assert!(!f.call_relocs.is_empty(), "fixture must exercise relocs");
        let bytes = encode_function(&f).unwrap();
        assert_eq!(decode_function(&bytes).unwrap(), f);
    }

    #[test]
    fn function_corruption_is_detected() {
        let f = fixture().section_images[0].functions[0].clone();
        let bytes = encode_function(&f).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_function(&bad).is_err(), "flip at {i} accepted");
        }
        assert!(decode_function(&bytes[..bytes.len() - 1]).is_err());
        assert!(
            decode_function(b"WARPDL01").is_err(),
            "module magic rejected"
        );
    }

    #[test]
    fn corruption_is_detected() {
        let m = fixture();
        let bytes = encode(&m).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode(&bad).is_err(), "flip at byte {i} went unnoticed");
        }
        assert!(decode(&bytes[..bytes.len() - 1]).is_err());
        assert_eq!(decode(b"not an image at all"), Err(DecodeError::BadMagic));
    }
}
