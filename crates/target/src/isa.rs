//! The Warp cell instruction set.
//!
//! A cell executes wide microinstruction words; each word carries at
//! most one [`Op`] per functional unit plus an optional branch. The
//! opcodes here are the operation repertoire the code generator
//! targets; [`Opcode::timing`] and [`Opcode::fu_candidates`] describe
//! the machine resources the schedulers must respect.

use crate::fu::FuKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A physical register. The calling convention fixes `r0` as the
/// return-value register and `r1..` as argument registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u16);

impl Reg {
    /// The return-value register (`r0`).
    pub const RET: Reg = Reg(0);

    /// The register holding argument `i` (`r1` holds argument 0).
    pub fn arg(i: u16) -> Reg {
        Reg(1 + i)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An operand of a machine [`Op`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// Integer immediate.
    ImmI(i32),
    /// Float immediate.
    ImmF(f32),
    /// Function-local data-memory address; the linker rebases these to
    /// absolute [`Operand::ImmI`] addresses.
    Addr(u32),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::ImmI(v) => write!(f, "#{v}"),
            Operand::ImmF(v) => write!(f, "#{v:?}"),
            Operand::Addr(a) => write!(f, "@{a}"),
        }
    }
}

/// Comparison predicate of [`Opcode::ICmp`] / [`Opcode::FCmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpKind {
    /// `true` if this predicate accepts the ordering `ord`.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering;
        match self {
            CmpKind::Eq => ord == Ordering::Equal,
            CmpKind::Ne => ord != Ordering::Equal,
            CmpKind::Lt => ord == Ordering::Less,
            CmpKind::Le => ord != Ordering::Greater,
            CmpKind::Gt => ord == Ordering::Greater,
            CmpKind::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
        })
    }
}

/// Which neighbour a queue operation talks to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueDir {
    /// The left neighbour (towards the host interface).
    Left,
    /// The right neighbour (towards the array output).
    Right,
}

/// Issue timing of an opcode: result `latency` in cycles, and the
/// `initiation_interval` its functional unit stays reserved (iterative
/// operations such as divide occupy their unit for many cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timing {
    /// Cycles until the result is written back and readable.
    pub latency: u32,
    /// Cycles until the functional unit can accept another operation.
    pub initiation_interval: u32,
}

const fn t(latency: u32, initiation_interval: u32) -> Timing {
    Timing {
        latency,
        initiation_interval,
    }
}

/// Latency of the integer units (ALU and AGU).
const INT: Timing = t(1, 1);
/// Latency of the pipelined floating-point units.
const FP: Timing = t(5, 1);

const INT_UNITS: &[FuKind] = &[FuKind::Alu, FuKind::Agu];
const FADD_UNIT: &[FuKind] = &[FuKind::FAdd];
const FMUL_UNIT: &[FuKind] = &[FuKind::FMul];
const ALU_UNIT: &[FuKind] = &[FuKind::Alu];
const MEM_UNIT: &[FuKind] = &[FuKind::Mem];
const QUEUE_UNIT: &[FuKind] = &[FuKind::Queue];

/// A machine opcode. Integer arithmetic wraps; float arithmetic is
/// IEEE single precision, matching the reference interpreter of the
/// language front end bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Integer add (wrapping).
    IAdd,
    /// Integer subtract (wrapping).
    ISub,
    /// Integer multiply (wrapping).
    IMul,
    /// Integer divide (iterative; faults on division by zero).
    IDiv,
    /// Integer remainder (iterative; faults on division by zero).
    IMod,
    /// Integer negate.
    INeg,
    /// Integer absolute value.
    IAbs,
    /// Integer minimum.
    IMin,
    /// Integer maximum.
    IMax,
    /// Integer compare, producing 1 or 0.
    ICmp(CmpKind),
    /// Float add.
    FAdd,
    /// Float subtract.
    FSub,
    /// Float multiply.
    FMul,
    /// Float divide (iterative on the multiplier).
    FDiv,
    /// Float negate.
    FNeg,
    /// Float absolute value.
    FAbs,
    /// Float minimum.
    FMin,
    /// Float maximum.
    FMax,
    /// Float square root (iterative on the multiplier).
    FSqrt,
    /// Sine (microcoded, iterative).
    FSin,
    /// Cosine (microcoded, iterative).
    FCos,
    /// Exponential (microcoded, iterative).
    FExp,
    /// Natural logarithm (microcoded, iterative).
    FLog,
    /// Floor, producing an *integer* result.
    FFloor,
    /// Float compare, producing 1 or 0 (any comparison with NaN is
    /// false except `Ne`).
    FCmp(CmpKind),
    /// Integer to float conversion.
    ItoF,
    /// Float to integer conversion (truncating).
    FtoI,
    /// Boolean and (operands are 0/1).
    BAnd,
    /// Boolean or (operands are 0/1).
    BOr,
    /// Boolean not (operands are 0/1).
    BNot,
    /// Register/immediate copy.
    Move,
    /// Load a data-memory word.
    Load,
    /// Store a data-memory word.
    Store,
    /// Push a value on the outgoing queue towards a neighbour.
    Send(QueueDir),
    /// Pop a value from the incoming queue from a neighbour; the whole
    /// word stalls while the queue is empty.
    Recv(QueueDir),
    /// Conditional select: `dst := b` if `a` is nonzero, else `dst` is
    /// left unchanged (reads its own destination).
    SelT,
}

impl Opcode {
    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::IAdd => "iadd",
            Opcode::ISub => "isub",
            Opcode::IMul => "imul",
            Opcode::IDiv => "idiv",
            Opcode::IMod => "imod",
            Opcode::INeg => "ineg",
            Opcode::IAbs => "iabs",
            Opcode::IMin => "imin",
            Opcode::IMax => "imax",
            Opcode::ICmp(k) => match k {
                CmpKind::Eq => "icmp.eq",
                CmpKind::Ne => "icmp.ne",
                CmpKind::Lt => "icmp.lt",
                CmpKind::Le => "icmp.le",
                CmpKind::Gt => "icmp.gt",
                CmpKind::Ge => "icmp.ge",
            },
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::FNeg => "fneg",
            Opcode::FAbs => "fabs",
            Opcode::FMin => "fmin",
            Opcode::FMax => "fmax",
            Opcode::FSqrt => "fsqrt",
            Opcode::FSin => "fsin",
            Opcode::FCos => "fcos",
            Opcode::FExp => "fexp",
            Opcode::FLog => "flog",
            Opcode::FFloor => "ffloor",
            Opcode::FCmp(k) => match k {
                CmpKind::Eq => "fcmp.eq",
                CmpKind::Ne => "fcmp.ne",
                CmpKind::Lt => "fcmp.lt",
                CmpKind::Le => "fcmp.le",
                CmpKind::Gt => "fcmp.gt",
                CmpKind::Ge => "fcmp.ge",
            },
            Opcode::ItoF => "itof",
            Opcode::FtoI => "ftoi",
            Opcode::BAnd => "band",
            Opcode::BOr => "bor",
            Opcode::BNot => "bnot",
            Opcode::Move => "mov",
            Opcode::Load => "ld",
            Opcode::Store => "st",
            Opcode::Send(QueueDir::Left) => "send.left",
            Opcode::Send(QueueDir::Right) => "send.right",
            Opcode::Recv(QueueDir::Left) => "recv.left",
            Opcode::Recv(QueueDir::Right) => "recv.right",
            Opcode::SelT => "selt",
        }
    }

    /// Latency and initiation interval.
    pub fn timing(self) -> Timing {
        match self {
            Opcode::IAdd
            | Opcode::ISub
            | Opcode::IMul
            | Opcode::INeg
            | Opcode::IAbs
            | Opcode::IMin
            | Opcode::IMax
            | Opcode::ICmp(_)
            | Opcode::ItoF
            | Opcode::FtoI
            | Opcode::BAnd
            | Opcode::BOr
            | Opcode::BNot
            | Opcode::Move
            | Opcode::SelT => INT,
            Opcode::IDiv | Opcode::IMod => t(8, 8),
            Opcode::FAdd | Opcode::FSub | Opcode::FMul => FP,
            Opcode::FNeg | Opcode::FAbs | Opcode::FMin | Opcode::FMax => FP,
            Opcode::FFloor => FP,
            Opcode::FCmp(_) => t(1, 1),
            Opcode::FDiv => t(12, 12),
            Opcode::FSqrt => t(8, 8),
            Opcode::FSin | Opcode::FCos | Opcode::FExp | Opcode::FLog => t(10, 10),
            Opcode::Load => t(2, 1),
            Opcode::Store => t(1, 1),
            Opcode::Send(_) | Opcode::Recv(_) => t(1, 1),
        }
    }

    /// Functional units able to execute this opcode. Multi-candidate
    /// opcodes may be placed on any of them by the schedulers.
    pub fn fu_candidates(self) -> &'static [FuKind] {
        match self {
            Opcode::IAdd
            | Opcode::ISub
            | Opcode::IMul
            | Opcode::INeg
            | Opcode::IAbs
            | Opcode::IMin
            | Opcode::IMax
            | Opcode::ICmp(_)
            | Opcode::ItoF
            | Opcode::FtoI
            | Opcode::BAnd
            | Opcode::BOr
            | Opcode::BNot
            | Opcode::Move
            | Opcode::SelT => INT_UNITS,
            Opcode::IDiv | Opcode::IMod => ALU_UNIT,
            Opcode::FAdd
            | Opcode::FSub
            | Opcode::FNeg
            | Opcode::FAbs
            | Opcode::FMin
            | Opcode::FMax
            | Opcode::FFloor
            | Opcode::FCmp(_)
            | Opcode::FSin
            | Opcode::FCos
            | Opcode::FExp
            | Opcode::FLog => FADD_UNIT,
            Opcode::FMul | Opcode::FDiv | Opcode::FSqrt => FMUL_UNIT,
            Opcode::Load | Opcode::Store => MEM_UNIT,
            Opcode::Send(_) | Opcode::Recv(_) => QUEUE_UNIT,
        }
    }
}

/// A machine operation: opcode, optional destination register, and up
/// to two operands. Stores and sends have no destination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// The opcode.
    pub opcode: Opcode,
    /// Destination register, if the operation produces a value.
    pub dst: Option<Reg>,
    /// First operand.
    pub a: Option<Operand>,
    /// Second operand.
    pub b: Option<Operand>,
}

impl Op {
    /// Builds a one-operand op writing `dst`.
    pub fn new1(opcode: Opcode, dst: Reg, a: Operand) -> Op {
        Op {
            opcode,
            dst: Some(dst),
            a: Some(a),
            b: None,
        }
    }

    /// Builds a two-operand op writing `dst`.
    pub fn new2(opcode: Opcode, dst: Reg, a: Operand, b: Operand) -> Op {
        Op {
            opcode,
            dst: Some(dst),
            a: Some(a),
            b: Some(b),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.opcode.mnemonic())?;
        match self.dst {
            Some(r) => write!(f, "{r}")?,
            None => write!(f, "_")?,
        }
        for o in self.a.iter().chain(self.b.iter()) {
            write!(f, ", {o}")?;
        }
        Ok(())
    }
}

/// The branch slot of an instruction word. Jump and branch targets are
/// word indices within the current function; call targets are function
/// indices within the section (resolved by the linker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BranchOp {
    /// Unconditional jump to a word of the current function.
    Jump(u32),
    /// Branch to a word of the current function if the register is
    /// nonzero.
    BrTrue(Reg, u32),
    /// Call the function with the given index in the section.
    Call(u32),
    /// Return to the caller, or halt if the call stack is empty.
    Ret,
}

impl fmt::Display for BranchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BranchOp::Jump(w) => write!(f, "jump {w}"),
            BranchOp::BrTrue(r, w) => write!(f, "brtrue {r}, {w}"),
            BranchOp::Call(t) => write!(f, "call {t}"),
            BranchOp::Ret => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calling_convention_registers() {
        assert_eq!(Reg::RET, Reg(0));
        assert_eq!(Reg::arg(0), Reg(1));
        assert_eq!(Reg::arg(3), Reg(4));
        assert_eq!(Reg(7).to_string(), "r7");
    }

    #[test]
    fn mnemonics_cover_directions_and_predicates() {
        assert_eq!(Opcode::Recv(QueueDir::Left).mnemonic(), "recv.left");
        assert_eq!(Opcode::Send(QueueDir::Right).mnemonic(), "send.right");
        assert_eq!(Opcode::ICmp(CmpKind::Lt).mnemonic(), "icmp.lt");
        assert_eq!(Opcode::FCmp(CmpKind::Ge).mnemonic(), "fcmp.ge");
    }

    #[test]
    fn iterative_ops_reserve_their_unit() {
        assert_eq!(Opcode::FDiv.timing().initiation_interval, 12);
        assert_eq!(Opcode::IDiv.timing(), Opcode::IMod.timing());
        assert_eq!(
            Opcode::IDiv.timing().latency,
            Opcode::IDiv.timing().initiation_interval
        );
        assert_eq!(
            Opcode::FAdd.timing(),
            Timing {
                latency: 5,
                initiation_interval: 1
            }
        );
    }

    #[test]
    fn candidates_are_consistent_with_units() {
        use crate::fu::FuKind;
        assert_eq!(Opcode::IAdd.fu_candidates(), &[FuKind::Alu, FuKind::Agu]);
        assert_eq!(Opcode::FDiv.fu_candidates(), &[FuKind::FMul]);
        assert_eq!(Opcode::Load.fu_candidates(), &[FuKind::Mem]);
        for op in [Opcode::FSqrt, Opcode::Recv(QueueDir::Left), Opcode::Store] {
            assert_eq!(op.fu_candidates().len(), 1, "{op:?}");
        }
    }

    #[test]
    fn op_display() {
        let op = Op::new2(
            Opcode::IAdd,
            Reg(12),
            Operand::Reg(Reg(13)),
            Operand::ImmI(2),
        );
        assert_eq!(op.to_string(), "iadd r12, r13, #2");
        let st = Op {
            opcode: Opcode::Store,
            dst: None,
            a: Some(Operand::Addr(3)),
            b: Some(Operand::Reg(Reg(5))),
        };
        assert_eq!(st.to_string(), "st _, @3, r5");
    }
}
