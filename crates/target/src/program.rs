//! Code images: the output of phase 3 (per function), of the linker
//! (per section), and of phase 4 assembly (per module).

use crate::word::InstructionWord;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// An unresolved call site: word `word` of the function calls `callee`
/// by name; the linker patches the branch slot with the callee's
/// function index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallReloc {
    /// Word index of the call within the function's code.
    pub word: u32,
    /// Name of the called function.
    pub callee: String,
}

/// Compiled code of one function, before or after linking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionImage {
    /// Function name.
    pub name: String,
    /// The scheduled instruction words.
    pub code: Vec<InstructionWord>,
    /// Words of data memory the function owns (arrays and spill
    /// slots); function-local until the linker assigns a base.
    pub data_words: u32,
    /// Number of parameters (passed in `r1..`).
    pub param_count: u16,
    /// `true` if the function leaves a value in `r0`.
    pub returns_value: bool,
    /// Call sites still to be resolved; empty once linked.
    pub call_relocs: Vec<CallReloc>,
}

impl FunctionImage {
    /// Number of instruction words.
    pub fn code_words(&self) -> u32 {
        self.code.len() as u32
    }

    /// `true` once every call site has been resolved.
    pub fn is_linked(&self) -> bool {
        self.call_relocs.is_empty()
    }
}

/// The linked code of one section: every function of the section with
/// data-memory bases assigned and calls resolved, ready to run on the
/// cells `first_cell..=last_cell`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SectionImage {
    /// Section name.
    pub name: String,
    /// First cell the section occupies.
    pub first_cell: u32,
    /// Last cell the section occupies (inclusive).
    pub last_cell: u32,
    /// The linked functions.
    pub functions: Vec<FunctionImage>,
    /// Absolute data-memory base of each function, parallel to
    /// `functions`.
    pub data_bases: Vec<u32>,
    /// Total data-memory words of the section.
    pub data_words: u32,
    /// Index of the entry function each cell starts in.
    pub entry: usize,
}

impl SectionImage {
    /// Total instruction words over all functions.
    pub fn code_words(&self) -> u32 {
        self.functions.iter().map(FunctionImage::code_words).sum()
    }

    /// Index of the function named `name`.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// A human-readable listing of the whole section.
    pub fn disassemble(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "section {} on cells {}..{} ({} words code, {} words data)",
            self.name,
            self.first_cell,
            self.last_cell,
            self.code_words(),
            self.data_words
        );
        for (i, f) in self.functions.iter().enumerate() {
            let entry = if i == self.entry { " (entry)" } else { "" };
            let base = self.data_bases.get(i).copied().unwrap_or(0);
            let _ = writeln!(
                s,
                "fn {} {}{entry}: {} words, data base @{base}",
                i,
                f.name,
                f.code.len()
            );
            for (w, word) in f.code.iter().enumerate() {
                let _ = writeln!(s, "  {w:4}: {word}");
            }
        }
        s
    }
}

/// A fully assembled module: the download image of phase 4. One
/// [`SectionImage`] per section program, plus the generated host I/O
/// driver source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleImage {
    /// Module name.
    pub name: String,
    /// One linked image per section.
    pub section_images: Vec<SectionImage>,
    /// Generated host-side I/O driver (source text).
    pub io_driver: String,
}

impl ModuleImage {
    /// Size of the download image in 32-bit words: four words per
    /// instruction, one per data word, plus per-section headers and
    /// the I/O driver text.
    pub fn download_words(&self) -> u32 {
        let sections: u32 = self
            .section_images
            .iter()
            .map(|s| 8 + s.code_words() * 4 + s.data_words)
            .sum();
        8 + sections + (self.io_driver.len() as u32).div_ceil(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BranchOp, Op, Opcode, Operand, Reg};
    use crate::word::InstructionWord;

    fn tiny_section() -> SectionImage {
        let mut w = InstructionWord::new();
        w.replace(
            crate::fu::FuKind::Alu,
            Op::new1(Opcode::Move, Reg(0), Operand::ImmI(7)),
        );
        SectionImage {
            name: "main".into(),
            first_cell: 0,
            last_cell: 0,
            functions: vec![FunctionImage {
                name: "f".into(),
                code: vec![w, InstructionWord::branch_only(BranchOp::Ret)],
                data_words: 4,
                param_count: 0,
                returns_value: true,
                call_relocs: vec![],
            }],
            data_bases: vec![0],
            data_words: 4,
            entry: 0,
        }
    }

    #[test]
    fn sizes_and_lookup() {
        let sec = tiny_section();
        assert_eq!(sec.code_words(), 2);
        assert_eq!(sec.function_index("f"), Some(0));
        assert_eq!(sec.function_index("g"), None);
        assert!(sec.functions[0].is_linked());

        let m = ModuleImage {
            name: "m".into(),
            section_images: vec![sec],
            io_driver: "drive".into(),
        };
        assert!(m.download_words() > 0);
    }

    #[test]
    fn disassembly_mentions_every_word() {
        let sec = tiny_section();
        let text = sec.disassemble();
        assert!(text.contains("section main"));
        assert!(text.contains("mov r0, #7"));
        assert!(text.contains("ret"));
    }
}
