//! The shared execution kernel: one implementation of operand access,
//! definedness (poison) propagation, and per-opcode arithmetic.
//!
//! Two engines execute cell programs — the cycle-accurate
//! [`crate::interp::Cell`] and the data-parallel
//! [`crate::batch::BatchInterp`] — and "bit-identical" between them is
//! a hard requirement of the differential-testing harness. The parts
//! of the semantics where a silent divergence would be hardest to spot
//! (float arithmetic, comparison edge cases, poison propagation rules,
//! fault precedence inside a single operation) therefore live here as
//! free functions over raw lane state, and both engines call them.
//! The step *scaffolding* (stall checks, hazard checks, branch
//! evaluation, commit order) is small enough to pin with property
//! tests and stays with each engine.
//!
//! All functions report faults as bare [`FaultKind`]; the caller wraps
//! them with its own function/pc coordinates.

use crate::decode::DecodedOp;
use crate::interp::{FaultKind, Value};
use crate::isa::{CmpKind, Opcode, Operand};
use std::cmp::Ordering;

/// The concrete value of an operand; undefined registers read as
/// integer zero (definedness travels separately, see [`operand_def`]).
#[inline]
pub fn read_operand(regs: &[Value], o: Option<Operand>) -> Result<Value, FaultKind> {
    match o {
        None => Err(FaultKind::MissingOperand),
        Some(Operand::Reg(r)) => match regs.get(usize::from(r.0)) {
            Some(&v) => Ok(v),
            None => Err(FaultKind::BadRegister(r)),
        },
        Some(Operand::ImmI(v)) => Ok(Value::I(v)),
        Some(Operand::ImmF(v)) => Ok(Value::F(v)),
        Some(Operand::Addr(a)) => Ok(Value::I(a as i32)),
    }
}

/// `true` if the operand carries a defined value. Immediates are
/// always defined; a register is defined once a writeback landed in it
/// on the executed path.
#[inline]
pub fn operand_def(reg_def: &[bool], o: Option<Operand>) -> bool {
    match o {
        Some(Operand::Reg(r)) => reg_def.get(usize::from(r.0)).copied().unwrap_or(false),
        _ => true,
    }
}

/// Strict mode: faults if `o` is an undefined register. Used where an
/// undefined value would be *consumed* rather than merely copied
/// around — addresses, divisors, branch conditions, sends.
#[inline]
pub fn require_def(strict: bool, reg_def: &[bool], o: Option<Operand>) -> Result<(), FaultKind> {
    if strict && !operand_def(reg_def, o) {
        if let Some(Operand::Reg(r)) = o {
            return Err(FaultKind::UninitializedRead(r));
        }
    }
    Ok(())
}

/// Converts a value to a data-memory word index, faulting when it
/// falls outside `mem_words`.
#[inline]
pub fn mem_addr(mem_words: usize, v: Value) -> Result<usize, FaultKind> {
    let a = i64::from(v.as_i());
    if a < 0 || a >= mem_words as i64 {
        return Err(FaultKind::MemOutOfBounds(a));
    }
    Ok(a as usize)
}

/// Whether comparison kind `k` holds for ordering `ord`.
#[inline]
pub fn cmp_holds(k: CmpKind, ord: Ordering) -> bool {
    match k {
        CmpKind::Eq => ord == Ordering::Equal,
        CmpKind::Ne => ord != Ordering::Equal,
        CmpKind::Lt => ord == Ordering::Less,
        CmpKind::Le => ord != Ordering::Greater,
        CmpKind::Gt => ord == Ordering::Greater,
        CmpKind::Ge => ord != Ordering::Less,
    }
}

/// Pure computation of every opcode except `Store`, `Send`, and
/// `Recv` (those touch engine-owned state and stay with the engines).
/// Returns the result and whether it is defined: an op computing on an
/// undefined input *propagates* undefinedness instead of faulting, so
/// speculative if-converted code can save and discard values it may
/// never need. Consumption points (addresses, divisors) fault in
/// strict mode.
#[inline]
pub fn compute(
    strict: bool,
    regs: &[Value],
    reg_def: &[bool],
    mem: &[Value],
    mem_def: &[bool],
    op: &DecodedOp,
) -> Result<(Value, bool), FaultKind> {
    use Opcode::*;
    let a = || read_operand(regs, op.a);
    let b = || read_operand(regs, op.b);
    // Default: defined iff every operand the op reads is defined.
    // Unary ops carry no `b`, so the blanket check is exact.
    let def = operand_def(reg_def, op.a) && operand_def(reg_def, op.b);
    let v = match op.opcode {
        IAdd => Value::I(a()?.as_i().wrapping_add(b()?.as_i())),
        ISub => Value::I(a()?.as_i().wrapping_sub(b()?.as_i())),
        IMul => Value::I(a()?.as_i().wrapping_mul(b()?.as_i())),
        IDiv | IMod => {
            // A divisor the program never produced is consumed here:
            // its concrete value decides a fault.
            require_def(strict, reg_def, op.b)?;
            let (x, y) = (a()?.as_i(), b()?.as_i());
            if y == 0 {
                return Err(FaultKind::DivisionByZero);
            }
            if op.opcode == IDiv {
                Value::I(x.wrapping_div(y))
            } else {
                Value::I(x.wrapping_rem(y))
            }
        }
        INeg => Value::I(a()?.as_i().wrapping_neg()),
        IAbs => Value::I(a()?.as_i().wrapping_abs()),
        IMin => Value::I(a()?.as_i().min(b()?.as_i())),
        IMax => Value::I(a()?.as_i().max(b()?.as_i())),
        ICmp(k) => Value::I(cmp_holds(k, a()?.as_i().cmp(&b()?.as_i())) as i32),
        FAdd => Value::F(a()?.as_f() + b()?.as_f()),
        FSub => Value::F(a()?.as_f() - b()?.as_f()),
        FMul => Value::F(a()?.as_f() * b()?.as_f()),
        FDiv => Value::F(a()?.as_f() / b()?.as_f()),
        FNeg => Value::F(-a()?.as_f()),
        FAbs => Value::F(a()?.as_f().abs()),
        FMin => Value::F(a()?.as_f().min(b()?.as_f())),
        FMax => Value::F(a()?.as_f().max(b()?.as_f())),
        FSqrt => Value::F(a()?.as_f().sqrt()),
        FSin => Value::F(a()?.as_f().sin()),
        FCos => Value::F(a()?.as_f().cos()),
        FExp => Value::F(a()?.as_f().exp()),
        FLog => Value::F(a()?.as_f().ln()),
        FFloor => Value::I(a()?.as_f().floor() as i32),
        FCmp(k) => {
            let holds = match a()?.as_f().partial_cmp(&b()?.as_f()) {
                Some(ord) => cmp_holds(k, ord),
                None => k == CmpKind::Ne,
            };
            Value::I(holds as i32)
        }
        ItoF => Value::F(a()?.as_f()),
        FtoI => Value::I(a()?.as_i()),
        BAnd => Value::I((a()?.truthy() && b()?.truthy()) as i32),
        BOr => Value::I((a()?.truthy() || b()?.truthy()) as i32),
        BNot => Value::I(!a()?.truthy() as i32),
        Move => a()?,
        Load => {
            // An undefined address could reach anywhere: consume.
            require_def(strict, reg_def, op.a)?;
            let addr = mem_addr(mem.len(), a()?)?;
            return Ok((mem[addr], mem_def[addr]));
        }
        SelT => {
            let dst = op.dst.ok_or(FaultKind::MissingOperand)?;
            let di = usize::from(dst.0);
            if di >= regs.len() {
                return Err(FaultKind::BadRegister(dst));
            }
            // dst keeps its own (possibly undefined) value when the
            // condition is false; only the *selected* input decides
            // definedness, plus the condition itself.
            let cond = a()?;
            let picked_def = if cond.truthy() {
                operand_def(reg_def, op.b)
            } else {
                reg_def[di]
            };
            let picked = if cond.truthy() { b()? } else { regs[di] };
            return Ok((picked, operand_def(reg_def, op.a) && picked_def));
        }
        Store | Send(_) | Recv(_) => unreachable!("handled by the engines"),
    };
    Ok((v, def))
}
