//! Pre-decoded instruction words, shared by the strict interpreter and
//! the batched interpreter.
//!
//! [`crate::interp::Cell`] used to re-interpret the raw
//! [`InstructionWord`] on every cycle: iterate the seven option slots,
//! look up each opcode's timing, and copy the whole word out of the
//! image. That work is identical on every execution of the same word,
//! so it is hoisted here: [`decode_image`] runs once per
//! [`SectionImage`] and produces a [`DecodedImage`] whose words carry
//! their placed operations densely, in slot order, with the slot index
//! and timing already resolved. Both execution engines — the
//! cycle-accurate [`crate::interp::Cell`] and the data-parallel
//! [`crate::batch::BatchInterp`] — fetch from the decoded form, so a
//! word is decoded exactly once no matter how many cycles or lanes
//! execute it.
//!
//! Decode is a *pure reshaping*: no operand is altered, no op is
//! reordered, and the branch slot is copied verbatim. The golden test
//! in `tests/decode_golden.rs` pins this equivalence against both a
//! committed fixture and freshly compiled workloads.

use crate::fu::FuKind;
use crate::isa::{BranchOp, Op, Opcode, Operand, Reg};
use crate::program::SectionImage;
use crate::word::InstructionWord;

/// One placed operation with its slot and timing resolved at decode
/// time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodedOp {
    /// The functional unit the op is placed on.
    pub fu: FuKind,
    /// `fu.slot_index()`, precomputed for the hazard table.
    pub slot: u8,
    /// The opcode.
    pub opcode: Opcode,
    /// Destination register, if the op produces a value.
    pub dst: Option<Reg>,
    /// First operand.
    pub a: Option<Operand>,
    /// Second operand.
    pub b: Option<Operand>,
    /// `opcode.timing().latency`, widened to cycle arithmetic.
    pub latency: u64,
    /// `opcode.timing().initiation_interval`, widened likewise.
    pub init_interval: u64,
}

/// A pre-decoded instruction word: the placed operations densely in
/// slot order, plus the branch slot.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedWord {
    /// Placed operations in slot order (the order
    /// [`InstructionWord::ops`] yields them).
    pub ops: Box<[DecodedOp]>,
    /// The branch slot, copied verbatim.
    pub branch: Option<BranchOp>,
    /// `true` if any op is a `Send` or `Recv` — only such words can
    /// stall, so engines skip the stall check otherwise.
    pub has_queue_op: bool,
}

/// A pre-decoded function: one [`DecodedWord`] per instruction word.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFunction {
    /// The decoded words, parallel to `FunctionImage::code`.
    pub words: Box<[DecodedWord]>,
}

/// A pre-decoded section image: one [`DecodedFunction`] per function,
/// parallel to [`SectionImage::functions`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedImage {
    /// The decoded functions.
    pub functions: Box<[DecodedFunction]>,
}

/// Decodes one placed operation.
pub fn decode_op(fu: FuKind, op: &Op) -> DecodedOp {
    let timing = op.opcode.timing();
    DecodedOp {
        fu,
        slot: fu.slot_index() as u8,
        opcode: op.opcode,
        dst: op.dst,
        a: op.a,
        b: op.b,
        latency: u64::from(timing.latency),
        init_interval: u64::from(timing.initiation_interval),
    }
}

/// Decodes one instruction word.
pub fn decode_word(word: &InstructionWord) -> DecodedWord {
    let ops: Vec<DecodedOp> = word.ops().map(|(fu, op)| decode_op(fu, op)).collect();
    let has_queue_op = ops
        .iter()
        .any(|op| matches!(op.opcode, Opcode::Send(_) | Opcode::Recv(_)));
    DecodedWord {
        ops: ops.into_boxed_slice(),
        branch: word.branch,
        has_queue_op,
    }
}

/// Decodes every word of every function of a linked section image.
pub fn decode_image(image: &SectionImage) -> DecodedImage {
    let functions = image
        .functions
        .iter()
        .map(|f| DecodedFunction {
            words: f
                .code
                .iter()
                .map(decode_word)
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        })
        .collect::<Vec<_>>()
        .into_boxed_slice();
    DecodedImage { functions }
}

impl DecodedWord {
    /// A one-line listing of the decoded word, used by the golden
    /// decode fixture: each op as
    /// `slot:unit mnemonic dst, a, b (lat/ii)`, then the branch.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("[");
        let mut first = true;
        for op in self.ops.iter() {
            if !first {
                s.push_str(" | ");
            }
            let _ = write!(s, "{}:{} {} ", op.slot, op.fu, op.opcode.mnemonic());
            match op.dst {
                Some(r) => {
                    let _ = write!(s, "{r}");
                }
                None => s.push('_'),
            }
            for o in op.a.iter().chain(op.b.iter()) {
                let _ = write!(s, ", {o}");
            }
            let _ = write!(s, " ({}/{})", op.latency, op.init_interval);
            first = false;
        }
        if let Some(b) = &self.branch {
            if !first {
                s.push_str(" | ");
            }
            let _ = write!(s, "br: {b}");
            first = false;
        }
        if first {
            s.push_str("nop");
        }
        s.push(']');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{CmpKind, QueueDir};

    fn word_with(ops: &[(FuKind, Op)], branch: Option<BranchOp>) -> InstructionWord {
        let mut w = InstructionWord::new();
        for &(fu, op) in ops {
            w.place(fu, op).expect("free slot");
        }
        w.branch = branch;
        w
    }

    #[test]
    fn decode_preserves_ops_order_and_timing() {
        let fadd = Op::new2(
            Opcode::FAdd,
            Reg(9),
            Operand::Reg(Reg(1)),
            Operand::ImmF(2.0),
        );
        let idiv = Op::new2(Opcode::IDiv, Reg(10), Operand::ImmI(9), Operand::ImmI(3));
        let w = word_with(
            &[(FuKind::Alu, idiv), (FuKind::FAdd, fadd)],
            Some(BranchOp::BrTrue(Reg(3), 7)),
        );
        let d = decode_word(&w);
        // Slot order: FAdd (slot 0) before Alu (slot 2).
        assert_eq!(d.ops.len(), 2);
        assert_eq!(d.ops[0].fu, FuKind::FAdd);
        assert_eq!(d.ops[0].slot, 0);
        assert_eq!(d.ops[0].latency, 5);
        assert_eq!(d.ops[0].init_interval, 1);
        assert_eq!(d.ops[1].fu, FuKind::Alu);
        assert_eq!(d.ops[1].opcode, Opcode::IDiv);
        assert_eq!(d.ops[1].latency, 8);
        assert_eq!(d.ops[1].init_interval, 8);
        assert_eq!(d.branch, Some(BranchOp::BrTrue(Reg(3), 7)));
        assert!(!d.has_queue_op);
        // Every decoded field round-trips from the word's own ops.
        for ((fu, op), dop) in w.ops().zip(d.ops.iter()) {
            assert_eq!(dop.fu, fu);
            assert_eq!(dop.opcode, op.opcode);
            assert_eq!(dop.dst, op.dst);
            assert_eq!(dop.a, op.a);
            assert_eq!(dop.b, op.b);
            assert_eq!(dop.latency, u64::from(op.opcode.timing().latency));
        }
    }

    #[test]
    fn queue_ops_are_flagged() {
        let recv = Op {
            opcode: Opcode::Recv(QueueDir::Left),
            dst: Some(Reg(4)),
            a: None,
            b: None,
        };
        let d = decode_word(&word_with(&[(FuKind::Queue, recv)], None));
        assert!(d.has_queue_op);
        let mov = Op::new1(Opcode::Move, Reg(4), Operand::ImmI(1));
        let d = decode_word(&word_with(&[(FuKind::Alu, mov)], None));
        assert!(!d.has_queue_op);
    }

    #[test]
    fn listing_mentions_slots_and_timing() {
        let cmp = Op::new2(
            Opcode::ICmp(CmpKind::Lt),
            Reg(5),
            Operand::Reg(Reg(6)),
            Operand::ImmI(3),
        );
        let d = decode_word(&word_with(&[(FuKind::Agu, cmp)], Some(BranchOp::Ret)));
        let text = d.listing();
        assert!(text.contains("3:agu icmp.lt r5, r6, #3 (1/1)"), "{text}");
        assert!(text.contains("br: ret"), "{text}");
        assert_eq!(decode_word(&InstructionWord::new()).listing(), "[nop]");
    }
}
