//! Configuration of a Warp cell and the array built from them.

use serde::{Deserialize, Serialize};

/// Sizes of one cell and of the array. The defaults model the 10-cell
/// Warp machine of the paper; tests shrink individual fields to stress
/// the register allocator or the queue backpressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellConfig {
    /// Number of cells in the linear array.
    pub cells: u32,
    /// Registers per cell.
    pub num_regs: u16,
    /// Words of data memory per cell.
    pub data_mem_words: u32,
    /// Words of instruction memory per cell.
    pub inst_mem_words: u32,
    /// Capacity of each inter-cell queue; a sender stalls when its
    /// neighbour-facing queue is full.
    pub queue_depth: u32,
}

impl Default for CellConfig {
    fn default() -> CellConfig {
        CellConfig {
            cells: 10,
            num_regs: 64,
            data_mem_words: 16 * 1024,
            inst_mem_words: 64 * 1024,
            queue_depth: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_model_the_ten_cell_machine() {
        let c = CellConfig::default();
        assert_eq!(c.cells, 10);
        assert_eq!(c.num_regs, 64);
        assert!(c.data_mem_words < 1 << 20, "link tests overflow this bound");
        assert!(
            c.queue_depth < 256,
            "backpressure tests rely on a small depth"
        );
    }
}
