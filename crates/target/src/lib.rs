//! The Warp cell machine model for the *Parallel Compilation for a
//! Parallel Machine* reproduction (Gross, Zobel & Zolg, PLDI 1989).
//!
//! The compiler in the sibling crates targets this model; the
//! interpreter here doubles as the correctness oracle for everything
//! the compiler produces. The crate covers:
//!
//! * [`isa`] — registers, operands, opcodes with per-opcode timing and
//!   functional-unit candidates, and branch operations;
//! * [`fu`] — the seven functional units of a cell, the resources the
//!   list and modulo schedulers reserve;
//! * [`word`] — the wide microinstruction word, one slot per unit;
//! * [`config`] — cell and array sizes ([`CellConfig`]);
//! * [`program`] — function, section, and module code images;
//! * [`interp`] — the cycle-accurate interpreter: a single
//!   [`interp::Cell`] or a full [`interp::ArrayMachine`] with bounded
//!   inter-cell queues;
//! * [`download`] — the checksummed binary download-module format of
//!   compiler phase 4.

pub mod config;
pub mod download;
pub mod fu;
pub mod interp;
pub mod isa;
pub mod program;
pub mod word;

pub use config::CellConfig;
