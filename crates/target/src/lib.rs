//! The Warp cell machine model for the *Parallel Compilation for a
//! Parallel Machine* reproduction (Gross, Zobel & Zolg, PLDI 1989).
//!
//! The compiler in the sibling crates targets this model; the
//! interpreter here doubles as the correctness oracle for everything
//! the compiler produces. The crate covers:
//!
//! * [`isa`] — registers, operands, opcodes with per-opcode timing and
//!   functional-unit candidates, and branch operations;
//! * [`fu`] — the seven functional units of a cell, the resources the
//!   list and modulo schedulers reserve;
//! * [`word`] — the wide microinstruction word, one slot per unit;
//! * [`config`] — cell and array sizes ([`CellConfig`]);
//! * [`program`] — function, section, and module code images;
//! * [`decode`] — instruction words pre-decoded once, shared by both
//!   execution engines;
//! * [`exec`] — the shared execution kernel (operand access, poison
//!   propagation, per-opcode arithmetic);
//! * [`interp`] — the cycle-accurate interpreter: a single
//!   [`interp::Cell`] or a full [`interp::ArrayMachine`] with bounded
//!   inter-cell queues;
//! * [`batch`] — the data-parallel batched interpreter: N independent
//!   cell-program lanes in struct-of-arrays state, with per-lane
//!   fault latching;
//! * [`download`] — the checksummed binary download-module format of
//!   compiler phase 4.

pub mod batch;
pub mod config;
pub mod decode;
pub mod download;
pub mod exec;
pub mod fu;
pub mod interp;
pub mod isa;
pub mod program;
pub mod word;

pub use config::CellConfig;
