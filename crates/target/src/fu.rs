//! The functional units of a Warp cell.
//!
//! A cell issues one wide instruction word per cycle; the word has one
//! slot per functional unit, so up to seven operations (plus a branch)
//! start together. The schedulers treat each unit as a resource with a
//! per-opcode reservation time ([`crate::isa::Opcode::timing`]).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the seven functional units of a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FuKind {
    /// Pipelined floating-point adder (also compares, conversions of
    /// the float flavour, and the microcoded transcendentals).
    FAdd,
    /// Pipelined floating-point multiplier (also iterative divide and
    /// square root).
    FMul,
    /// Integer ALU (also the iterative integer divide/remainder).
    Alu,
    /// Address generation unit — a second integer ALU.
    Agu,
    /// Data-memory port.
    Mem,
    /// Queue port to the neighbour cells.
    Queue,
    /// Branch unit (holds the word's branch operation).
    Branch,
}

impl FuKind {
    /// Every unit, in slot order.
    pub const ALL: [FuKind; 7] = [
        FuKind::FAdd,
        FuKind::FMul,
        FuKind::Alu,
        FuKind::Agu,
        FuKind::Mem,
        FuKind::Queue,
        FuKind::Branch,
    ];

    /// The unit's fixed slot position within an instruction word.
    pub fn slot_index(self) -> usize {
        match self {
            FuKind::FAdd => 0,
            FuKind::FMul => 1,
            FuKind::Alu => 2,
            FuKind::Agu => 3,
            FuKind::Mem => 4,
            FuKind::Queue => 5,
            FuKind::Branch => 6,
        }
    }

    /// Short unit name used in listings.
    pub fn name(self) -> &'static str {
        match self {
            FuKind::FAdd => "fadd",
            FuKind::FMul => "fmul",
            FuKind::Alu => "alu",
            FuKind::Agu => "agu",
            FuKind::Mem => "mem",
            FuKind::Queue => "queue",
            FuKind::Branch => "branch",
        }
    }
}

impl fmt::Display for FuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_indices_are_dense_and_match_all_order() {
        for (i, fu) in FuKind::ALL.into_iter().enumerate() {
            assert_eq!(fu.slot_index(), i);
        }
    }
}
