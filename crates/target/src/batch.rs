//! The batched data-parallel interpreter: N independent cell-program
//! lanes in struct-of-arrays state.
//!
//! The strict [`crate::interp::Cell`] is the semantic reference, but
//! it is built for one program at a time: every run pays a fresh
//! image clone, a fresh decode, and three large memory fills, and
//! every step re-walks heap-allocated bookkeeping. Differential
//! fuzzing wants to run *thousands* of short programs, which makes the
//! strict interpreter the throughput bottleneck of the whole harness.
//!
//! [`BatchInterp`] removes the per-program overheads without touching
//! the semantics:
//!
//! * **Decode once.** Programs are registered with
//!   [`BatchInterp::add_program`] and pre-decoded a single time
//!   ([`crate::decode`]); any number of lanes then execute the decoded
//!   form. The strict interpreter decodes per `Cell`.
//! * **Struct-of-arrays lanes.** Registers, poison bits, data memory,
//!   PCs, and pipelines live in flat slabs indexed by lane. Slabs are
//!   recycled across [`BatchInterp::reset`] with a dirty-word reset,
//!   so a long-running fuzzing loop pays the large zero-fills once,
//!   not once per program.
//! * **Run-to-completion stepping.** Each lane executes to its halt,
//!   trap, or budget with the hot scalars (pc, cycle, unit
//!   reservations) promoted to locals and the per-word commit buffers
//!   reused, never reallocated. Lanes are stepped to completion one
//!   at a time rather than in cross-lane lockstep: lockstep execution
//!   was measured and rejected — with 64+ lanes the combined register
//!   and pipeline state of all lanes overflows the cache, and every
//!   lane access becomes a miss, costing far more than the word-fetch
//!   sharing saves. Lanes share no state, so execution order between
//!   them is unobservable.
//! * **Per-lane fault latching.** A trap latches into that lane's
//!   [`LaneStatus`] — recorded as the exact [`InterpError`] the strict
//!   interpreter would have returned — and the rest of the batch keeps
//!   running.
//!
//! Lanes model *standalone* cells: outgoing queues are unbounded
//! (exactly like a fresh `Cell`, whose queue caps are only set by
//! `ArrayMachine`), and incoming queues hold whatever the
//! [`LaneInput`] preloaded. Inter-cell arrays stay the business of
//! [`crate::interp::ArrayMachine`].
//!
//! Bit-identity with the strict interpreter is asserted lane-for-lane
//! by `tests/batch_props.rs` and the fuzzing harness in
//! `parcc::fuzz`: same halt/trap outcome (including fault kind and
//! coordinates), same cycle count, and bit-identical registers,
//! poison bits, memory, and output queues. The value-level semantics
//! are shared outright via [`crate::exec`]; the step scaffolding
//! below mirrors `Cell::step` commit-for-commit.

use crate::config::CellConfig;
use crate::decode::{decode_image, DecodedImage, DecodedOp, DecodedWord};
use crate::exec;
use crate::interp::{FaultKind, InterpError, Value, Writeback};
use crate::isa::{BranchOp, Opcode, Operand, QueueDir, Reg};
use crate::program::SectionImage;
use std::collections::VecDeque;

/// Options for the one-shot [`BatchInterp::run`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchOptions {
    /// Cell configuration every lane runs under.
    pub config: CellConfig,
    /// Strict mode (fault on hazards and consumed poison) — the
    /// default, since the batch engine exists for differential
    /// testing.
    pub strict: bool,
    /// Per-lane cycle budget; a lane still running at the budget traps
    /// with [`InterpError::CycleLimit`], exactly like
    /// `Cell::run(max_cycles)`.
    pub max_cycles: u64,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            config: CellConfig::default(),
            strict: true,
            max_cycles: 1_000_000,
        }
    }
}

/// What to run on one lane.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneInput {
    /// Index returned by [`BatchInterp::add_program`].
    pub program: usize,
    /// Entry function name (looked up like `Cell::prepare_call`).
    pub function: String,
    /// Arguments, placed in `r1..`.
    pub args: Vec<Value>,
    /// Values preloaded into the lane's left input queue.
    pub in_left: Vec<Value>,
    /// Values preloaded into the lane's right input queue.
    pub in_right: Vec<Value>,
}

impl LaneInput {
    /// A lane calling `function` of `program` with `args` and empty
    /// input queues.
    pub fn call(program: usize, function: &str, args: Vec<Value>) -> LaneInput {
        LaneInput {
            program,
            function: function.to_string(),
            args,
            in_left: Vec::new(),
            in_right: Vec::new(),
        }
    }
}

/// Where a lane stands.
#[derive(Debug, Clone, PartialEq)]
pub enum LaneStatus {
    /// Still executing.
    Running,
    /// Halted normally (return with an empty call stack).
    Halted,
    /// Latched a trap: the exact error a solo strict-interpreter run
    /// would have returned, including fault coordinates.
    Trapped(InterpError),
}

/// Per-lane summary after [`BatchInterp::execute`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaneReport {
    /// Final status (never [`LaneStatus::Running`] after `execute`
    /// unless the lane's budget was `0`).
    pub status: LaneStatus,
    /// Cycles executed (stalled cycles included), matching
    /// `Cell::run`'s return value on a halted lane.
    pub cycles: u64,
    /// Cycles spent stalled on an empty input queue.
    pub stalls: u64,
}

/// A registered program: its one-time decode plus the entry-point
/// table needed to arm lanes. The section image itself is *not*
/// retained — unlike `Cell::new`, registering a program does not cost
/// an image clone.
struct BatchProgram {
    decoded: DecodedImage,
    fn_names: Vec<String>,
    fn_params: Vec<u16>,
}

/// Stop recording dirty memory words (and fall back to a full-slab
/// reset) once the list would cost more than the fill it avoids.
fn dirty_limit(mem_words: usize) -> usize {
    (mem_words / 8).max(64)
}

/// Struct-of-arrays lane state. Flat slabs (`regs`, `reg_def`, `mem`,
/// `mem_def`) hold `n_alloc` lane-sized blocks; per-lane vectors keep
/// their capacity across recycling.
#[derive(Default)]
struct Lanes {
    n_active: usize,
    n_alloc: usize,
    program: Vec<u32>,
    fn_idx: Vec<u32>,
    pc: Vec<u32>,
    cycle: Vec<u64>,
    stalls: Vec<u64>,
    status: Vec<LaneStatus>,
    regs: Vec<Value>,
    reg_def: Vec<bool>,
    mem: Vec<Value>,
    mem_def: Vec<bool>,
    /// Memory words written since the slab was last clean, for the
    /// cheap recycle; emptied + `dirty_overflow` set when the list
    /// outgrows [`dirty_limit`].
    dirty: Vec<Vec<u32>>,
    dirty_overflow: Vec<bool>,
    pending: Vec<Vec<Writeback>>,
    fu_free: Vec<[u64; 7]>,
    call_stack: Vec<Vec<(u32, u32)>>,
    in_left: Vec<VecDeque<Value>>,
    in_right: Vec<VecDeque<Value>>,
    out_left: Vec<Vec<Value>>,
    out_right: Vec<Vec<Value>>,
}

impl Lanes {
    /// Claims a lane slot, recycling a previously allocated slab when
    /// one is free (dirty-word reset) or growing the slabs otherwise.
    fn alloc(&mut self, nr: usize, mw: usize) -> usize {
        let lane = self.n_active;
        self.n_active += 1;
        if lane < self.n_alloc {
            let rb = lane * nr;
            self.regs[rb..rb + nr].fill(Value::I(0));
            self.reg_def[rb..rb + nr].fill(false);
            let mb = lane * mw;
            if self.dirty_overflow[lane] {
                self.mem[mb..mb + mw].fill(Value::I(0));
                self.mem_def[mb..mb + mw].fill(true);
            } else {
                for i in 0..self.dirty[lane].len() {
                    let a = mb + self.dirty[lane][i] as usize;
                    self.mem[a] = Value::I(0);
                    self.mem_def[a] = true;
                }
            }
            self.dirty[lane].clear();
            self.dirty_overflow[lane] = false;
            self.pending[lane].clear();
            self.fu_free[lane] = [0; 7];
            self.call_stack[lane].clear();
            self.in_left[lane].clear();
            self.in_right[lane].clear();
            self.out_left[lane].clear();
            self.out_right[lane].clear();
            self.program[lane] = 0;
            self.fn_idx[lane] = 0;
            self.pc[lane] = 0;
            self.cycle[lane] = 0;
            self.stalls[lane] = 0;
            self.status[lane] = LaneStatus::Running;
        } else {
            self.n_alloc += 1;
            self.program.push(0);
            self.fn_idx.push(0);
            self.pc.push(0);
            self.cycle.push(0);
            self.stalls.push(0);
            self.status.push(LaneStatus::Running);
            self.regs.resize(self.n_alloc * nr, Value::I(0));
            self.reg_def.resize(self.n_alloc * nr, false);
            self.mem.resize(self.n_alloc * mw, Value::I(0));
            // Zero-filled data memory is defined by design, matching
            // `Cell::new`.
            self.mem_def.resize(self.n_alloc * mw, true);
            self.dirty.push(Vec::new());
            self.dirty_overflow.push(false);
            self.pending.push(Vec::new());
            self.fu_free.push([0; 7]);
            self.call_stack.push(Vec::new());
            self.in_left.push(VecDeque::new());
            self.in_right.push(VecDeque::new());
            self.out_left.push(Vec::new());
            self.out_right.push(Vec::new());
        }
        lane
    }
}

/// Executes one op for one lane: hazard check, unit reservation, then
/// effect into the word's commit buffers. The order of checks and
/// side effects is exactly that of the op loop in `Cell::step`; on
/// `Err` the caller latches the trap, and the partial unit
/// reservations / queue pops persist, as they do in the strict
/// interpreter.
#[expect(clippy::too_many_arguments)]
#[inline(always)]
fn lane_op(
    op: &DecodedOp,
    strict: bool,
    cycle: u64,
    nr: usize,
    mw: usize,
    fu_free: &mut [u64; 7],
    regs: &[Value],
    reg_def: &[bool],
    mem: &[Value],
    mem_def: &[bool],
    in_left: &mut VecDeque<Value>,
    in_right: &mut VecDeque<Value>,
    pending: &mut Vec<Writeback>,
    next_due: &mut u64,
    mem_write: &mut Option<(usize, Value, bool)>,
    queue_push: &mut Option<(QueueDir, Value)>,
) -> Result<(), FaultKind> {
    let slot = usize::from(op.slot);
    if strict && fu_free[slot] > cycle {
        return Err(FaultKind::StructuralHazard(op.fu));
    }
    fu_free[slot] = cycle + op.init_interval;

    let result = match op.opcode {
        Opcode::Store => {
            exec::require_def(strict, reg_def, op.a)?;
            let addr = exec::mem_addr(mw, exec::read_operand(regs, op.a)?)?;
            let v = exec::read_operand(regs, op.b)?;
            *mem_write = Some((addr, v, exec::operand_def(reg_def, op.b)));
            None
        }
        Opcode::Send(dir) => {
            // The value leaves the cell: undefinedness would become
            // visible, so it must be defined.
            exec::require_def(strict, reg_def, op.a)?;
            let v = exec::read_operand(regs, op.a)?;
            *queue_push = Some((dir, v));
            None
        }
        Opcode::Recv(dir) => {
            // Checked nonempty by the stall check; popped now, visible
            // at writeback like any other result.
            let v = match dir {
                QueueDir::Left => in_left.pop_front(),
                QueueDir::Right => in_right.pop_front(),
            };
            Some((v.expect("stall check guarantees a value"), true))
        }
        _ => Some(exec::compute(strict, regs, reg_def, mem, mem_def, op)?),
    };
    if let (Some(dst), Some((v, def))) = (op.dst, result) {
        if usize::from(dst.0) >= nr {
            return Err(FaultKind::BadRegister(dst));
        }
        // Pushed straight onto the pipeline; the caller truncates back
        // to the word's base on a fault, which is the same observable
        // behaviour as `Cell::step` discarding its local `reg_writes`.
        let due = cycle + op.latency;
        *next_due = (*next_due).min(due);
        pending.push((due, dst, v, def));
    }
    Ok(())
}

/// Runs one lane until it halts, traps, or exhausts `max_cycles`
/// cycles (counted from where the lane stands, like `Cell::run`).
///
/// The hot per-lane scalars live in locals for the whole run and are
/// stored back to the struct-of-arrays state once at the end; the
/// cycle loop itself mirrors `Cell::step` check-for-check and
/// commit-for-commit.
fn run_lane(
    prog: &BatchProgram,
    lanes: &mut Lanes,
    nr: usize,
    mw: usize,
    strict: bool,
    lane: usize,
    max_cycles: u64,
) {
    let rb = lane * nr;
    let mb = lane * mw;
    let Lanes {
        fn_idx,
        pc,
        cycle,
        stalls,
        status,
        regs,
        reg_def,
        mem,
        mem_def,
        dirty,
        dirty_overflow,
        pending,
        fu_free,
        call_stack,
        in_left,
        in_right,
        out_left,
        out_right,
        ..
    } = lanes;
    let regs = &mut regs[rb..rb + nr];
    let reg_def = &mut reg_def[rb..rb + nr];
    let mem = &mut mem[mb..mb + mw];
    let mem_def = &mut mem_def[mb..mb + mw];
    let pending = &mut pending[lane];
    let dirty = &mut dirty[lane];
    let dirty_overflow = &mut dirty_overflow[lane];
    let call_stack = &mut call_stack[lane];
    let in_left = &mut in_left[lane];
    let in_right = &mut in_right[lane];
    let out_left = &mut out_left[lane];
    let out_right = &mut out_right[lane];
    let mut fu = fu_free[lane];
    let mut f = fn_idx[lane] as usize;
    let mut p = pc[lane] as usize;
    let mut cyc = cycle[lane];
    let mut stl = stalls[lane];
    let start = cyc;
    // Earliest landing cycle in the pipeline, so quiet cycles skip the
    // writeback scan entirely.
    let mut next_due = pending.iter().map(|w| w.0).min().unwrap_or(u64::MAX);

    let functions = &prog.decoded.functions;
    let n_functions = functions.len();
    let mut words: &[DecodedWord] = match functions.get(f) {
        Some(func) => &func.words,
        None => &[],
    };

    let outcome = 'run: loop {
        if cyc - start >= max_cycles {
            break LaneStatus::Trapped(InterpError::CycleLimit { limit: max_cycles });
        }
        // Writebacks land at the start of the cycle (in-order
        // scan-and-remove, like `Cell::apply_due_writebacks`), before
        // the fetch can fault.
        if cyc >= next_due {
            let mut i = 0;
            next_due = u64::MAX;
            while i < pending.len() {
                if pending[i].0 <= cyc {
                    let (_, r, v, def) = pending.remove(i);
                    regs[usize::from(r.0)] = v;
                    reg_def[usize::from(r.0)] = def;
                } else {
                    next_due = next_due.min(pending[i].0);
                    i += 1;
                }
            }
        }
        let Some(word) = words.get(p) else {
            break LaneStatus::Trapped(InterpError::Fault {
                function: f,
                pc: p,
                kind: FaultKind::PcOutOfBounds,
            });
        };
        // Stall check before any side effect. Lanes are standalone
        // cells: outgoing queues are unbounded, so only `Recv` can
        // stall; a starved lane spins until the budget trips.
        if word.has_queue_op {
            let mut stalled = false;
            for op in word.ops.iter() {
                if let Opcode::Recv(dir) = op.opcode {
                    let empty = match dir {
                        QueueDir::Left => in_left.is_empty(),
                        QueueDir::Right => in_right.is_empty(),
                    };
                    if empty {
                        stalled = true;
                        break;
                    }
                }
            }
            if stalled {
                cyc += 1;
                stl += 1;
                continue 'run;
            }
        }

        // Writebacks of this word go straight onto the pipeline; on a
        // fault anywhere in the word (ops or branch) they are
        // truncated away again, matching `Cell::step`, whose local
        // `reg_writes` only reaches the pipeline at commit.
        let base = pending.len();
        let mut mem_write: Option<(usize, Value, bool)> = None;
        let mut queue_push: Option<(QueueDir, Value)> = None;
        for op in word.ops.iter() {
            if let Err(kind) = lane_op(
                op,
                strict,
                cyc,
                nr,
                mw,
                &mut fu,
                regs,
                reg_def,
                mem,
                mem_def,
                in_left,
                in_right,
                pending,
                &mut next_due,
                &mut mem_write,
                &mut queue_push,
            ) {
                pending.truncate(base);
                break 'run LaneStatus::Trapped(InterpError::Fault {
                    function: f,
                    pc: p,
                    kind,
                });
            }
        }

        // The branch condition reads the same cycle-start state as the
        // rest of the word.
        let mut next_f = f;
        let mut next_p = p + 1;
        let mut halt = false;
        match word.branch {
            None => {}
            Some(BranchOp::Jump(t)) => next_p = t as usize,
            Some(BranchOp::BrTrue(r, t)) => {
                // An undefined condition means control flow the
                // program never decided — consume, so strict faults.
                if let Err(kind) = exec::require_def(strict, reg_def, Some(Operand::Reg(r))) {
                    pending.truncate(base);
                    break 'run LaneStatus::Trapped(InterpError::Fault {
                        function: f,
                        pc: p,
                        kind,
                    });
                }
                let i = usize::from(r.0);
                if i >= nr {
                    pending.truncate(base);
                    break 'run LaneStatus::Trapped(InterpError::Fault {
                        function: f,
                        pc: p,
                        kind: FaultKind::BadRegister(r),
                    });
                }
                if regs[i].truthy() {
                    next_p = t as usize;
                }
            }
            Some(BranchOp::Call(t)) => {
                if t as usize >= n_functions {
                    pending.truncate(base);
                    break 'run LaneStatus::Trapped(InterpError::Fault {
                        function: f,
                        pc: p,
                        kind: FaultKind::BadCallTarget(t),
                    });
                }
                call_stack.push((f as u32, (p + 1) as u32));
                next_f = t as usize;
                next_p = 0;
            }
            Some(BranchOp::Ret) => match call_stack.pop() {
                Some((rf, rp)) => {
                    next_f = rf as usize;
                    next_p = rp as usize;
                }
                None => halt = true,
            },
        }

        // Commit.
        if let Some((addr, v, def)) = mem_write {
            mem[addr] = v;
            mem_def[addr] = def;
            if !*dirty_overflow {
                if dirty.len() >= dirty_limit(mw) {
                    dirty.clear();
                    *dirty_overflow = true;
                } else {
                    dirty.push(addr as u32);
                }
            }
        }
        if let Some((dir, v)) = queue_push {
            match dir {
                QueueDir::Left => out_left.push(v),
                QueueDir::Right => out_right.push(v),
            }
        }
        if next_f != f {
            f = next_f;
            // Calls are bounds-checked above and returns only pop
            // previously valid indices.
            words = &functions[f].words;
        }
        p = next_p;
        cyc += 1;
        if halt {
            // Drain the pipeline in issue order, like
            // `Cell::drain_writebacks`.
            for &(_, r, v, def) in pending.iter() {
                regs[usize::from(r.0)] = v;
                reg_def[usize::from(r.0)] = def;
            }
            pending.clear();
            break LaneStatus::Halted;
        }
    };

    fn_idx[lane] = f as u32;
    pc[lane] = p as u32;
    cycle[lane] = cyc;
    stalls[lane] = stl;
    fu_free[lane] = fu;
    status[lane] = outcome;
}

/// The batched interpreter. See the module docs for the execution
/// model; the expected life cycle is
/// [`add_program`](BatchInterp::add_program) →
/// [`add_lane`](BatchInterp::add_lane)× →
/// [`execute`](BatchInterp::execute) → inspect, optionally
/// [`reset`](BatchInterp::reset) and go again reusing the slabs — or
/// the one-shot [`BatchInterp::run`].
pub struct BatchInterp {
    config: CellConfig,
    strict: bool,
    programs: Vec<BatchProgram>,
    lanes: Lanes,
}

impl BatchInterp {
    /// An empty batch under `config`.
    pub fn new(config: CellConfig, strict: bool) -> BatchInterp {
        BatchInterp {
            config,
            strict,
            programs: Vec::new(),
            lanes: Lanes::default(),
        }
    }

    /// Registers a linked section image, validating it exactly like
    /// `Cell::new` and decoding it once. Returns the program index for
    /// [`LaneInput::program`].
    pub fn add_program(&mut self, image: &SectionImage) -> Result<usize, InterpError> {
        let code_words = u64::from(image.code_words());
        if code_words > u64::from(self.config.inst_mem_words) {
            return Err(InterpError::CodeTooLarge {
                needed: code_words,
                available: self.config.inst_mem_words,
            });
        }
        if u64::from(image.data_words) > u64::from(self.config.data_mem_words) {
            return Err(InterpError::DataTooLarge {
                needed: u64::from(image.data_words),
                available: self.config.data_mem_words,
            });
        }
        if let Some(unlinked) = image.functions.iter().find(|f| !f.is_linked()) {
            return Err(InterpError::Unlinked(unlinked.name.clone()));
        }
        let decoded = decode_image(image);
        self.programs.push(BatchProgram {
            decoded,
            fn_names: image.functions.iter().map(|f| f.name.clone()).collect(),
            fn_params: image.functions.iter().map(|f| f.param_count).collect(),
        });
        Ok(self.programs.len() - 1)
    }

    /// Adds a lane, arming it like `Cell::prepare_call`: the entry
    /// function is resolved by name and arity-checked, arguments land
    /// in `r1..` as defined values, and the input queues are
    /// preloaded. Returns the lane index.
    pub fn add_lane(&mut self, input: &LaneInput) -> Result<usize, InterpError> {
        assert!(
            input.program < self.programs.len(),
            "unknown program index {}",
            input.program
        );
        let prog = &self.programs[input.program];
        let idx = prog
            .fn_names
            .iter()
            .position(|n| *n == input.function)
            .ok_or_else(|| InterpError::UnknownFunction(input.function.clone()))?;
        let expected = prog.fn_params[idx];
        if usize::from(expected) != input.args.len() {
            return Err(InterpError::ArityMismatch {
                name: input.function.clone(),
                expected,
                got: input.args.len(),
            });
        }
        let nr = usize::from(self.config.num_regs);
        let mw = self.config.data_mem_words as usize;
        let lane = self.lanes.alloc(nr, mw);
        self.lanes.program[lane] = input.program as u32;
        self.lanes.fn_idx[lane] = idx as u32;
        let rb = lane * nr;
        for (i, &v) in input.args.iter().enumerate() {
            let r = usize::from(Reg::arg(i as u16).0);
            self.lanes.regs[rb + r] = v;
            self.lanes.reg_def[rb + r] = true;
        }
        self.lanes.in_left[lane].extend(input.in_left.iter().copied());
        self.lanes.in_right[lane].extend(input.in_right.iter().copied());
        Ok(lane)
    }

    /// Runs every running lane until it halts, traps, or exhausts the
    /// per-lane `max_cycles` budget (then it traps with
    /// [`InterpError::CycleLimit`], like `Cell::run`).
    pub fn execute(&mut self, max_cycles: u64) {
        let nr = usize::from(self.config.num_regs);
        let mw = self.config.data_mem_words as usize;
        for lane in 0..self.lanes.n_active {
            if !matches!(self.lanes.status[lane], LaneStatus::Running) {
                continue;
            }
            let prog = &self.programs[self.lanes.program[lane] as usize];
            run_lane(prog, &mut self.lanes, nr, mw, self.strict, lane, max_cycles);
        }
    }

    /// One-shot convenience: register `programs`, add one lane per
    /// input, execute, and return the finished batch for inspection.
    pub fn run(
        programs: &[SectionImage],
        inputs: &[LaneInput],
        opts: &BatchOptions,
    ) -> Result<BatchInterp, InterpError> {
        let mut batch = BatchInterp::new(opts.config, opts.strict);
        for image in programs {
            batch.add_program(image)?;
        }
        for input in inputs {
            batch.add_lane(input)?;
        }
        batch.execute(opts.max_cycles);
        Ok(batch)
    }

    /// Forgets all programs and lanes but keeps the lane slabs for
    /// recycling — the cheap way to fuzz in chunks.
    pub fn reset(&mut self) {
        self.programs.clear();
        self.lanes.n_active = 0;
    }

    /// Number of active lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.n_active
    }

    /// The configuration the batch was built with.
    pub fn config(&self) -> &CellConfig {
        &self.config
    }

    /// The lane's status.
    pub fn status(&self, lane: usize) -> &LaneStatus {
        assert!(lane < self.lanes.n_active, "lane {lane} out of range");
        &self.lanes.status[lane]
    }

    /// The lane's summary.
    pub fn report(&self, lane: usize) -> LaneReport {
        LaneReport {
            status: self.status(lane).clone(),
            cycles: self.lanes.cycle[lane],
            stalls: self.lanes.stalls[lane],
        }
    }

    /// Host-side register read with `Cell::reg` semantics: undefined
    /// registers fault in strict mode, since a value the program never
    /// produced is about to become visible.
    pub fn reg(&self, lane: usize, r: Reg) -> Result<Value, InterpError> {
        assert!(lane < self.lanes.n_active, "lane {lane} out of range");
        let nr = usize::from(self.config.num_regs);
        let i = usize::from(r.0);
        let fault = |kind| InterpError::Fault {
            function: self.lanes.fn_idx[lane] as usize,
            pc: self.lanes.pc[lane] as usize,
            kind,
        };
        if i >= nr {
            return Err(fault(FaultKind::BadRegister(r)));
        }
        if !self.lanes.reg_def[lane * nr + i] && self.strict {
            return Err(fault(FaultKind::UninitializedRead(r)));
        }
        Ok(self.lanes.regs[lane * nr + i])
    }

    /// The lane's raw register file and poison bits.
    pub fn lane_regs(&self, lane: usize) -> (&[Value], &[bool]) {
        assert!(lane < self.lanes.n_active, "lane {lane} out of range");
        let nr = usize::from(self.config.num_regs);
        (
            &self.lanes.regs[lane * nr..(lane + 1) * nr],
            &self.lanes.reg_def[lane * nr..(lane + 1) * nr],
        )
    }

    /// The lane's raw data memory and poison bits.
    pub fn lane_mem(&self, lane: usize) -> (&[Value], &[bool]) {
        assert!(lane < self.lanes.n_active, "lane {lane} out of range");
        let mw = self.config.data_mem_words as usize;
        (
            &self.lanes.mem[lane * mw..(lane + 1) * mw],
            &self.lanes.mem_def[lane * mw..(lane + 1) * mw],
        )
    }

    /// Values the lane sent towards its left neighbour, in order.
    pub fn out_left(&self, lane: usize) -> &[Value] {
        assert!(lane < self.lanes.n_active, "lane {lane} out of range");
        &self.lanes.out_left[lane]
    }

    /// Values the lane sent towards its right neighbour, in order.
    pub fn out_right(&self, lane: usize) -> &[Value] {
        assert!(lane < self.lanes.n_active, "lane {lane} out of range");
        &self.lanes.out_right[lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fu::FuKind;
    use crate::interp::{Cell, StepOutcome};
    use crate::isa::Op;
    use crate::program::{FunctionImage, SectionImage};
    use crate::word::InstructionWord;

    fn word(places: &[(FuKind, Op)], branch: Option<BranchOp>) -> InstructionWord {
        let mut w = InstructionWord::new();
        for &(fu, op) in places {
            w.place(fu, op).expect("free slot");
        }
        w.branch = branch;
        w
    }

    fn section(code: Vec<InstructionWord>, param_count: u16) -> SectionImage {
        SectionImage {
            name: "s".into(),
            first_cell: 0,
            last_cell: 0,
            functions: vec![FunctionImage {
                name: "f".into(),
                code,
                data_words: 16,
                param_count,
                returns_value: true,
                call_relocs: vec![],
            }],
            data_bases: vec![0],
            data_words: 16,
            entry: 0,
        }
    }

    fn mov(dst: Reg, v: Operand) -> Op {
        Op::new1(Opcode::Move, dst, v)
    }

    /// A tiny program: r0 := arg * 2 + 1 (integer), then return.
    fn double_inc() -> SectionImage {
        let mul = Op::new2(
            Opcode::IMul,
            Reg(10),
            Operand::Reg(Reg(1)),
            Operand::ImmI(2),
        );
        let add = Op::new2(
            Opcode::IAdd,
            Reg(0),
            Operand::Reg(Reg(10)),
            Operand::ImmI(1),
        );
        section(
            vec![
                word(&[(FuKind::Alu, mul)], None),
                word(&[(FuKind::Alu, add)], None),
                InstructionWord::branch_only(BranchOp::Ret),
            ],
            1,
        )
    }

    #[test]
    fn lanes_match_solo_strict_runs() {
        let img = double_inc();
        let inputs: Vec<LaneInput> = (0..17)
            .map(|i| LaneInput::call(0, "f", vec![Value::I(i)]))
            .collect();
        let batch = BatchInterp::run(
            std::slice::from_ref(&img),
            &inputs,
            &BatchOptions::default(),
        )
        .unwrap();
        for (lane, input) in inputs.iter().enumerate() {
            let mut cell = Cell::new(CellConfig::default(), img.clone()).unwrap();
            cell.set_strict(true);
            cell.prepare_call("f", &input.args).unwrap();
            let cycles = cell.run(1_000_000).unwrap();
            let report = batch.report(lane);
            assert_eq!(report.status, LaneStatus::Halted, "lane {lane}");
            assert_eq!(report.cycles, cycles, "lane {lane}");
            assert_eq!(
                batch.reg(lane, Reg::RET).unwrap(),
                cell.reg(Reg::RET).unwrap()
            );
        }
    }

    #[test]
    fn one_lane_trap_does_not_stop_the_batch() {
        let div = Op::new2(
            Opcode::IDiv,
            Reg(0),
            Operand::ImmI(10),
            Operand::Reg(Reg(1)),
        );
        let img = section(
            vec![
                word(&[(FuKind::Alu, div)], None),
                InstructionWord::branch_only(BranchOp::Ret),
            ],
            1,
        );
        let inputs = vec![
            LaneInput::call(0, "f", vec![Value::I(5)]),
            LaneInput::call(0, "f", vec![Value::I(0)]), // divides by zero
            LaneInput::call(0, "f", vec![Value::I(2)]),
        ];
        let batch = BatchInterp::run(&[img], &inputs, &BatchOptions::default()).unwrap();
        assert_eq!(*batch.status(0), LaneStatus::Halted);
        assert_eq!(
            *batch.status(1),
            LaneStatus::Trapped(InterpError::Fault {
                function: 0,
                pc: 0,
                kind: FaultKind::DivisionByZero
            })
        );
        assert_eq!(*batch.status(2), LaneStatus::Halted);
        assert_eq!(batch.reg(0, Reg::RET).unwrap(), Value::I(2));
        assert_eq!(batch.reg(2, Reg::RET).unwrap(), Value::I(5));
    }

    #[test]
    fn starved_recv_traps_with_cycle_limit() {
        let recv = Op {
            opcode: Opcode::Recv(QueueDir::Left),
            dst: Some(Reg(0)),
            a: None,
            b: None,
        };
        let img = section(
            vec![
                word(&[(FuKind::Queue, recv)], None),
                InstructionWord::branch_only(BranchOp::Ret),
            ],
            0,
        );
        let fed = LaneInput {
            in_left: vec![Value::F(2.5)],
            ..LaneInput::call(0, "f", vec![])
        };
        let starved = LaneInput::call(0, "f", vec![]);
        let opts = BatchOptions {
            max_cycles: 50,
            ..BatchOptions::default()
        };
        let batch = BatchInterp::run(&[img], &[fed, starved], &opts).unwrap();
        assert_eq!(*batch.status(0), LaneStatus::Halted);
        assert_eq!(batch.reg(0, Reg::RET).unwrap(), Value::F(2.5));
        assert_eq!(
            *batch.status(1),
            LaneStatus::Trapped(InterpError::CycleLimit { limit: 50 })
        );
        assert_eq!(batch.report(1).stalls, 50);
    }

    #[test]
    fn reset_recycles_slabs_to_a_clean_state() {
        // First generation stores into memory; after reset, a fresh
        // lane must read zeros again.
        let store = Op {
            opcode: Opcode::Store,
            dst: None,
            a: Some(Operand::ImmI(3)),
            b: Some(Operand::ImmF(9.5)),
        };
        let writer = section(
            vec![
                word(&[(FuKind::Mem, store)], None),
                InstructionWord::branch_only(BranchOp::Ret),
            ],
            0,
        );
        let load = Op::new1(Opcode::Load, Reg(0), Operand::ImmI(3));
        let reader = section(
            vec![
                word(&[(FuKind::Mem, load)], None),
                InstructionWord::new(),
                InstructionWord::branch_only(BranchOp::Ret),
            ],
            0,
        );
        let mut batch = BatchInterp::new(CellConfig::default(), true);
        let w = batch.add_program(&writer).unwrap();
        batch.add_lane(&LaneInput::call(w, "f", vec![])).unwrap();
        batch.execute(100);
        assert_eq!(batch.lane_mem(0).0[3], Value::F(9.5));
        batch.reset();
        let r = batch.add_program(&reader).unwrap();
        batch.add_lane(&LaneInput::call(r, "f", vec![])).unwrap();
        batch.execute(100);
        assert_eq!(*batch.status(0), LaneStatus::Halted);
        assert_eq!(batch.reg(0, Reg::RET).unwrap(), Value::I(0));
    }

    #[test]
    fn divergent_lanes_still_match_strict_runs() {
        // A data-dependent loop: lanes with different trip counts.
        let dec = Op::new2(Opcode::ISub, Reg(1), Operand::Reg(Reg(1)), Operand::ImmI(1));
        let acc = Op::new2(Opcode::IAdd, Reg(0), Operand::Reg(Reg(0)), Operand::ImmI(3));
        let init = mov(Reg(0), Operand::ImmI(0));
        let img = section(
            vec![
                word(&[(FuKind::Alu, init)], None),
                word(&[(FuKind::Alu, dec), (FuKind::Agu, acc)], None),
                word(&[], Some(BranchOp::BrTrue(Reg(1), 1))),
                InstructionWord::branch_only(BranchOp::Ret),
            ],
            1,
        );
        let inputs: Vec<LaneInput> = [7, 1, 12, 3, 3, 9]
            .iter()
            .map(|&n| LaneInput::call(0, "f", vec![Value::I(n)]))
            .collect();
        let batch = BatchInterp::run(
            std::slice::from_ref(&img),
            &inputs,
            &BatchOptions::default(),
        )
        .unwrap();
        for (lane, input) in inputs.iter().enumerate() {
            let mut cell = Cell::new(CellConfig::default(), img.clone()).unwrap();
            cell.set_strict(true);
            cell.prepare_call("f", &input.args).unwrap();
            let cycles = cell.run(1_000_000).unwrap();
            assert_eq!(batch.report(lane).cycles, cycles, "lane {lane}");
            assert_eq!(
                batch.reg(lane, Reg::RET).unwrap(),
                cell.reg(Reg::RET).unwrap(),
                "lane {lane}"
            );
            // Full register-file and poison-bit identity.
            let (regs, defs) = batch.lane_regs(lane);
            for (ri, (&bv, &bd)) in regs.iter().zip(defs.iter()).enumerate() {
                let r = Reg(ri as u16);
                let cd = cell.reg(r).is_ok();
                assert_eq!(bd, cd, "lane {lane} def of {r}");
                if bd {
                    assert_eq!(
                        bv.to_bits(),
                        cell.reg(r).unwrap().to_bits(),
                        "lane {lane} {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn stalled_step_matches_cell_semantics() {
        // The cycle counter advances on a stall but nothing else
        // happens — mirrors the `Cell` unit test.
        let recv = Op {
            opcode: Opcode::Recv(QueueDir::Left),
            dst: Some(Reg(12)),
            a: None,
            b: None,
        };
        let code = vec![
            word(&[(FuKind::Queue, recv)], None),
            InstructionWord::branch_only(BranchOp::Ret),
        ];
        let img = section(code.clone(), 0);
        let mut cell = Cell::new(CellConfig::default(), img.clone()).unwrap();
        cell.prepare_call("f", &[]).unwrap();
        assert_eq!(cell.step().unwrap(), StepOutcome::Stalled);
        let opts = BatchOptions {
            strict: false,
            max_cycles: 7,
            ..BatchOptions::default()
        };
        let batch = BatchInterp::run(&[img], &[LaneInput::call(0, "f", vec![])], &opts).unwrap();
        let report = batch.report(0);
        assert_eq!(report.cycles, 7);
        assert_eq!(report.stalls, 7);
    }
}
