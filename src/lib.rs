//! Facade crate for the *Parallel Compilation for a Parallel Machine*
//! reproduction (Gross, Zobel & Zolg, PLDI 1989).
//!
//! This crate re-exports the public surface of the workspace so that
//! examples and downstream users can depend on a single crate:
//!
//! * [`lang`] — the Warp (W2-style) language front end: lexer, parser,
//!   AST, semantic analysis (compiler phase 1).
//! * [`target`] — the Warp cell machine model: functional units, wide
//!   instruction words, and a microcode interpreter.
//! * [`ir`] — flowgraph construction, local optimization and dependence
//!   analysis (phase 2).
//! * [`codegen`] — software pipelining, code generation, register
//!   allocation and assembly (phases 3 and 4).
//! * [`netsim`] — a discrete-event simulator of the 1989 host system
//!   (diskless workstations, shared Ethernet, file server).
//! * [`workload`] — generators for the paper's benchmark programs
//!   (`f_tiny` … `f_huge`, the 9-function user program).
//! * [`parcc`] — the paper's contribution: the parallel compilation
//!   driver (master / section master / function master), schedulers,
//!   and the measurement/overhead machinery.
//!
//! # Quickstart
//!
//! ```
//! use warp_parallel_compilation::parcc::{CompileOptions, compile_module_source};
//!
//! let source = warp_parallel_compilation::workload::synthetic_program(
//!     warp_parallel_compilation::workload::FunctionSize::Small, 2);
//! let result = compile_module_source(&source, &CompileOptions::default())?;
//! assert_eq!(result.module_image.section_images.len(), 1);
//! # Ok::<(), warp_parallel_compilation::parcc::CompileError>(())
//! ```

pub use parcc;
pub use warp_codegen as codegen;
pub use warp_ir as ir;
pub use warp_lang as lang;
pub use warp_netsim as netsim;
pub use warp_target as target;
pub use warp_workload as workload;
