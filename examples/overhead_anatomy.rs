//! The paper's overhead anatomy (§4.2.3) on the simulated 1989 host:
//! total overhead, implementation overhead (master + section masters +
//! the extra parse) and system overhead — including the *negative*
//! system overhead of Figure 9, where the sequential compiler loses
//! more time to swapping than the parallel compiler spends on startup.
//!
//! ```text
//! cargo run --release --example overhead_anatomy
//! ```

use warp_parallel_compilation::parcc::Experiment;
use warp_workload::FunctionSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let e = Experiment::default();
    println!(
        "{:>9} {:>3} {:>10} {:>10} {:>8} {:>9} {:>9} {:>9}",
        "size", "n", "seq", "par", "speedup", "total%", "impl%", "system%"
    );
    for size in [
        FunctionSize::Tiny,
        FunctionSize::Medium,
        FunctionSize::Large,
    ] {
        for n in [1usize, 2, 4, 8] {
            let c = e.synthetic(size, n)?;
            let o = &c.overheads;
            println!(
                "{:>9} {:>3} {:>9.1}m {:>9.1}m {:>8.2} {:>8.1}% {:>8.1}% {:>8.1}%",
                size.paper_name(),
                n,
                c.seq.elapsed_s / 60.0,
                c.par.elapsed_s / 60.0,
                c.speedup,
                o.total_frac * 100.0,
                o.implementation_s / c.par.elapsed_s * 100.0,
                o.system_frac * 100.0,
            );
        }
    }
    println!(
        "\nNegative system overhead = the sequential compiler thrashes on a \
         program that no longer fits one workstation's memory (paper Fig. 9)."
    );
    Ok(())
}
