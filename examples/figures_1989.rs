//! Reproduce a slice of the paper's evaluation inline: Figure 6
//! (speedup vs number of functions) and Figure 11 (user program).
//! The full harness for every figure is `cargo run -p parcc-bench
//! --release --bin figures`.
//!
//! ```text
//! cargo run --release --example figures_1989
//! ```

use warp_parallel_compilation::parcc::Experiment;
use warp_workload::FunctionSize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let e = Experiment::default();
    println!("Figure 6 — speedup over the sequential compiler:");
    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "n", "tiny", "small", "medium", "large", "huge"
    );
    for n in [1usize, 2, 4, 8] {
        print!("{n:>4}");
        for size in FunctionSize::ALL {
            let c = e.synthetic(size, n)?;
            print!(" {:>8.2}", c.speedup);
        }
        println!();
    }
    println!("\nFigure 11 — user program speedup vs processors:");
    for p in [2usize, 3, 5, 9] {
        let c = e.user_program(p)?;
        println!(
            "  {p} processors: speedup {:.2}  (seq {:.0} min, par {:.0} min)",
            c.speedup,
            c.seq.elapsed_s / 60.0,
            c.par.elapsed_s / 60.0
        );
    }
    Ok(())
}
