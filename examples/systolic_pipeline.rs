//! Compile a two-section module and execute it as a systolic pipeline
//! on the simulated Warp array: cell 0 produces, cell 1 filters, the
//! boundary emits results — demonstrating that the compiler's output
//! actually runs the machine the paper targets.
//!
//! ```text
//! cargo run --release --example systolic_pipeline
//! ```

use warp_parallel_compilation::parcc::{compile_module_source, CompileOptions};
use warp_parallel_compilation::target::interp::ArrayMachine;
use warp_parallel_compilation::target::CellConfig;

const SOURCE: &str = "module wave;\n\
section source on cells 0..0;\n\
  function main()\n\
  var i: int; v: float;\n\
  begin\n\
    for i := 0 to 15 do\n\
      v := sin(float(i) * 0.4);\n\
      send(right, v);\n\
    end;\n\
    return;\n\
  end;\n\
end;\n\
section smooth on cells 1..1;\n\
  function main()\n\
  var i: int; prev: float; cur: float;\n\
  begin\n\
    receive(left, prev);\n\
    for i := 1 to 15 do\n\
      receive(left, cur);\n\
      send(right, (prev + cur) / 2.0);\n\
      prev := cur;\n\
    end;\n\
    return;\n\
  end;\n\
end;\n";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let result = compile_module_source(SOURCE, &CompileOptions::default())?;
    for sec in &result.module_image.section_images {
        println!(
            "section `{}` on cells {}..{}: {} code words, {} data words",
            sec.name,
            sec.first_cell,
            sec.last_cell,
            sec.code_words(),
            sec.data_words
        );
    }

    let mut array = ArrayMachine::new(CellConfig::default(), &result.module_image.section_images)?;
    let stats = array.run(1_000_000)?;
    println!(
        "array ran {} cycles ({} cell-cycles stalled on queues)",
        stats.cycles, stats.stall_cycles
    );
    print!("smoothed wave: ");
    while let Some(v) = array.cell_mut(1).out_right.pop_front() {
        print!("{v:.3} ");
    }
    println!();
    Ok(())
}
