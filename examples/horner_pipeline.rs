//! A full 10-cell systolic computation: polynomial evaluation by
//! Horner's rule, one coefficient per cell — the classic Warp usage
//! model ("different phases of the computation are mapped onto
//! different processors", §3).
//!
//! The module has ten sections (one per cell), so the parallel compiler
//! runs ten function masters; the compiled module is then executed on
//! the simulated array: `(x, acc)` pairs stream left-to-right, each
//! cell folding in its coefficient.
//!
//! ```text
//! cargo run --release --example horner_pipeline
//! ```

use warp_parallel_compilation::parcc::threads::compile_parallel;
use warp_parallel_compilation::parcc::CompileOptions;
use warp_parallel_compilation::target::interp::{ArrayMachine, Value};
use warp_parallel_compilation::target::CellConfig;

/// p(x) with these coefficients, highest power first.
const COEFFS: [f32; 10] = [0.5, -1.0, 2.0, 0.0, 1.5, -0.25, 3.0, 0.125, -2.0, 1.0];
const POINTS: [f32; 6] = [0.0, 0.5, 1.0, -1.0, 2.0, -1.5];

fn build_module() -> String {
    let mut s = String::from("module horner;\n");
    for (k, c) in COEFFS.iter().enumerate() {
        s.push_str(&format!(
            "section stage{k} on cells {k}..{k};\n\
             function main()\n\
             var x: float; acc: float; i: int;\n\
             begin\n\
               for i := 1 to {n} do\n\
                 receive(left, x);\n\
                 receive(left, acc);\n\
                 acc := acc * x + {c:?};\n\
                 send(right, x);\n\
                 send(right, acc);\n\
               end;\n\
               return;\n\
             end;\n\
             end;\n",
            n = POINTS.len(),
        ));
    }
    s
}

fn horner_reference(x: f32) -> f32 {
    COEFFS.iter().fold(0.0f32, |acc, c| acc * x + c)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = build_module();
    // Ten functions, ten function masters — compile them in parallel.
    let (result, report) = compile_parallel(&src, &CompileOptions::default(), 8)?;
    println!(
        "compiled {} sections in {:?} ({} worker threads)",
        result.module_image.section_images.len(),
        report.wall,
        report.workers
    );

    let mut array = ArrayMachine::new(CellConfig::default(), &result.module_image.section_images)?;
    println!("array of {} cells", array.cell_count());
    for &x in &POINTS {
        array.cell_mut(0).in_left.push_back(Value::F(x));
        array.cell_mut(0).in_left.push_back(Value::F(0.0));
    }
    let stats = array.run(10_000_000)?;
    println!(
        "ran {} cycles ({} stalled cell-cycles)\n",
        stats.cycles, stats.stall_cycles
    );

    println!("{:>8} {:>12} {:>12}", "x", "p(x) array", "p(x) host");
    let last = array.cell_count() - 1;
    for &x in &POINTS {
        let _x_out = array.cell_mut(last).out_right.pop_front().expect("x");
        let px = match array.cell_mut(last).out_right.pop_front().expect("p(x)") {
            Value::F(v) => v,
            Value::I(v) => v as f32,
        };
        println!("{x:>8.2} {px:>12.4} {:>12.4}", horner_reference(x));
        assert_eq!(px, horner_reference(x), "array and host must agree exactly");
    }
    println!("\nall values bit-identical to the host computation");
    Ok(())
}
