//! Real parallel compilation on this machine: the paper's experiment
//! with OS threads instead of 1989 workstations.
//!
//! Compiles the 9-function user program of §4.3 sequentially and with
//! increasing worker counts, printing genuine wall-clock speedups of
//! the same compiler doing the same work.
//!
//! ```text
//! cargo run --release --example parallel_compilation
//! ```

use std::time::Instant;
use warp_parallel_compilation::parcc::threads::compile_parallel;
use warp_parallel_compilation::parcc::{compile_module_source, CompileOptions};
use warp_workload::user_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host reports {cores} usable core(s) — wall-clock speedup is bounded by this\n");
    let src = user_program();
    let opts = CompileOptions::default();

    let t0 = Instant::now();
    let seq = compile_module_source(&src, &opts)?;
    let seq_wall = t0.elapsed();
    println!(
        "sequential: {:?} for {} functions ({} work units)",
        seq_wall,
        seq.records.len(),
        seq.total_units()
    );

    for workers in [1usize, 2, 4, 8] {
        let (par, report) = compile_parallel(&src, &opts, workers)?;
        assert_eq!(
            par.module_image, seq.module_image,
            "identical output required"
        );
        println!(
            "{workers:>2} worker(s): {:?} total ({:?} phase1 + {:?} compile + {:?} link) \
             speedup {:.2}",
            report.wall,
            report.phase1_wall,
            report.compile_wall,
            report.link_wall,
            seq_wall.as_secs_f64() / report.wall.as_secs_f64(),
        );
    }
    println!("\nper-function wall times (8 workers):");
    let (_, report) = compile_parallel(&src, &opts, 8)?;
    let mut timings = report.per_function.clone();
    timings.sort_by_key(|(_, d)| std::cmp::Reverse(*d));
    for (name, d) in timings {
        println!("  {name:<16} {d:?}");
    }
    Ok(())
}
