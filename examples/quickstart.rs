//! Quickstart: compile a Warp module and run it on the simulated array.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use warp_parallel_compilation::parcc::{compile_module_source, CompileOptions};
use warp_parallel_compilation::target::interp::{Cell, Value};
use warp_parallel_compilation::target::isa::Reg;
use warp_parallel_compilation::target::CellConfig;

const SOURCE: &str = "module demo;\n\
section stage1 on cells 0..4;\n\
  function dot8(x: float): float\n\
  var a: float[8]; b: float[8]; acc: float; i: int;\n\
  begin\n\
    for i := 0 to 7 do\n\
      a[i] := float(i) * 0.5;\n\
      b[i] := float(i) + x;\n\
    end;\n\
    acc := 0.0;\n\
    for i := 0 to 7 do\n\
      acc := acc + a[i] * b[i];\n\
    end;\n\
    return acc;\n\
  end;\n\
end;\n";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("source:\n{SOURCE}");

    // The full pipeline: parse/check, flowgraph + local optimization,
    // software pipelining + code generation, assembly/linking.
    let result = compile_module_source(SOURCE, &CompileOptions::default())?;
    let rec = &result.records[0];
    println!(
        "compiled `{}`: {} source lines, {} instruction words, \
         {} loop(s) software-pipelined, {} scheduling probes",
        rec.name, rec.lines, rec.p3.words, rec.p3.pipelined_loops, rec.p3.modulo_attempts,
    );

    // Execute the generated microcode on one cell, with strict checks:
    // any latency or resource hazard in the schedule is a fault.
    let image = result.module_image.section_images[0].clone();
    let mut cell = Cell::new(CellConfig::default(), image)?;
    cell.set_strict(true);
    cell.prepare_call("dot8", &[Value::F(2.0)])?;
    cell.run(1_000_000)?;
    println!(
        "dot8(2.0) = {} in {} cell cycles",
        cell.reg(Reg::RET)?,
        cell.cycle()
    );
    Ok(())
}
