//! Offline stand-in for `criterion`, wide enough to compile and run the
//! workspace's benches. It measures one timed pass per benchmark and
//! prints the wall time — a smoke-run harness, not a statistics engine.
//! Every bench closure still executes, so `cargo bench` doubles as an
//! end-to-end check of the paths the benches exercise.

use std::fmt;
use std::time::Instant;

/// Names a parameterized benchmark, as `group/function/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id built from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id built from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs `routine` once and records its wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns = start.elapsed().as_nanos();
        std::hint::black_box(out);
    }
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { elapsed_ns: 0 };
    f(&mut b);
    println!("bench {label}: {} ns/iter", b.elapsed_ns);
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// A fresh driver.
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke runner always does one
    /// pass regardless.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{id}", self.name), |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` to run the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_compiles_and_runs() {
        let mut c = Criterion::new();
        c.bench_function("alone", |b| b.iter(|| 2 + 2));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| 3 * 3));
        g.bench_with_input(BenchmarkId::new("param", 4), &4, |b, &x| b.iter(|| x * x));
        g.bench_with_input(BenchmarkId::from_parameter(9), &9, |b, &x| b.iter(|| x + 1));
        g.finish();
    }
}
