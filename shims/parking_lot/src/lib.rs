//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` with the
//! poison-free API, delegating to `std::sync`. Poisoning is swallowed
//! by taking the inner value, matching parking_lot's behavior of not
//! poisoning at all.

use std::sync;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, ignoring poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, ignoring poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);

        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }
}
