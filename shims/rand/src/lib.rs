//! Offline stand-in for `rand` 0.8, covering exactly the surface the
//! workspace uses: `rngs::SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::{gen_range, gen_bool}` over integer and float ranges.
//!
//! The generator is splitmix64: deterministic per seed, statistically
//! fine for program generation and test-case sampling. It intentionally
//! does not match upstream `SmallRng`'s stream — nothing in the
//! workspace pins generated values, only per-seed determinism.

use std::ops::Range;

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling helpers layered on [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open, like upstream).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from a seed, as in upstream `rand`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits onto `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + unit_f64(rng.next_u64()) as f32 * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..14);
            assert!((3..14).contains(&v));
            let f = rng.gen_range(0.125..3.0);
            assert!((0.125..3.0).contains(&f));
            let i: usize = rng.gen_range(0..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn seeds_give_distinct_deterministic_streams() {
        let draw = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..8)
                .map(|_| rng.gen_range(0..1_000_000))
                .collect::<Vec<i32>>()
        };
        assert_eq!(draw(1), draw(1));
        assert_ne!(draw(1), draw(2));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }
}
