//! Offline stand-in for `serde`.
//!
//! The workspace only *decorates* types with `#[derive(Serialize,
//! Deserialize)]`; nothing in-tree ever serializes. This crate provides
//! the two trait names and re-exports the no-op derive macros so the
//! build works without a registry. Derive macros and traits live in
//! separate namespaces, so both exports coexist like in real serde.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Name-compatible stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Name-compatible stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
