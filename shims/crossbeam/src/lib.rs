//! Offline stand-in for `crossbeam`, covering `channel::bounded` with
//! blocking and timed receives — the API surface the workspace uses
//! (the compilation driver's job queue and its fault-detection
//! timeout) — and `deque`, the Chase-Lev-style work-stealing deque
//! trio (`Worker` / `Stealer` / `Injector`) the driver's scheduler is
//! built on. Both are implemented with `Mutex`/`Condvar` primitives
//! (no unsafe), preserving the upstream API and semantics rather than
//! the lock-free implementation.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: usize,
        /// Signalled when the buffer gains an item or loses all receivers.
        recv_ready: Condvar,
        /// Signalled when the buffer frees a slot or loses all senders.
        send_ready: Condvar,
    }

    /// Error from [`Sender::send`]: every receiver is gone. Carries the
    /// unsent value, as in crossbeam.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error from [`Receiver::recv`]: the channel is empty and every
    /// sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error from [`Receiver::recv_timeout`]: either nothing arrived in
    /// time, or the channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// Every sender dropped and the buffer is drained.
        Disconnected,
    }

    impl RecvTimeoutError {
        /// `true` for the [`RecvTimeoutError::Timeout`] case.
        pub fn is_timeout(&self) -> bool {
            matches!(self, RecvTimeoutError::Timeout)
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half; cloneable for multiple producers.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half; cloneable for multiple consumers.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Creates a bounded channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap: cap.max(1),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Blocks until a slot frees up, then enqueues `value`. Fails if
        /// all receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.buf.len() < self.0.cap {
                    st.buf.push_back(value);
                    self.0.recv_ready.notify_one();
                    return Ok(());
                }
                st = self.0.send_ready.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives. Fails once the channel is empty
        /// and all senders have been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.0.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.recv_ready.wait(st).unwrap();
            }
        }

        /// Blocks until an item arrives or `timeout` elapses. Fails with
        /// [`RecvTimeoutError::Disconnected`] once the channel is empty
        /// and all senders have been dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.0.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _) = self.0.recv_ready.wait_timeout(st, left).unwrap();
                st = guard;
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.0.recv_ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.send_ready.notify_all();
            }
        }
    }
}

pub mod deque {
    //! Work-stealing deques, after `crossbeam-deque`.
    //!
    //! A [`Worker`] is an owner-side queue: its thread pushes and pops
    //! locally, while any number of [`Stealer`] handles take work from
    //! the opposite end. An [`Injector`] is a shared FIFO every worker
    //! can steal from — the global entry queue of a scheduler.
    //!
    //! The upstream crate is lock-free (the Chase-Lev algorithm); this
    //! shim keeps the exact API and the FIFO/LIFO flavor semantics on a
    //! mutex, which is plenty for the handful of workers the compiler
    //! drives and keeps the workspace free of unsafe code.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Result of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race and should be retried. (This shim's
        /// mutex implementation never returns it, but callers written
        /// against the upstream API must handle it.)
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if the attempt succeeded.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        /// `true` if the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        /// `true` if a task was stolen.
        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Flavor {
        Fifo,
        Lifo,
    }

    /// The owner side of a work-stealing deque.
    ///
    /// Not cloneable: exactly one thread owns the push/pop end. Create
    /// [`Stealer`]s with [`Worker::stealer`] for everyone else.
    pub struct Worker<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
        flavor: Flavor,
    }

    /// The thief side of a [`Worker`]'s deque; cloneable and shareable.
    pub struct Stealer<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// A FIFO worker: `pop` takes the oldest task, same end the
        /// stealers take from (fair queue order).
        pub fn new_fifo() -> Worker<T> {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Fifo,
            }
        }

        /// A LIFO worker: `pop` takes the newest task (depth-first),
        /// stealers still take the oldest.
        pub fn new_lifo() -> Worker<T> {
            Worker {
                shared: Arc::new(Mutex::new(VecDeque::new())),
                flavor: Flavor::Lifo,
            }
        }

        /// Creates a stealer handle for this worker's deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: self.shared.clone(),
            }
        }

        /// Pushes a task onto the owner end.
        pub fn push(&self, task: T) {
            self.shared.lock().unwrap().push_back(task);
        }

        /// Pops a task from the owner end (`None` when empty).
        pub fn pop(&self) -> Option<T> {
            let mut q = self.shared.lock().unwrap();
            match self.flavor {
                Flavor::Fifo => q.pop_front(),
                Flavor::Lifo => q.pop_back(),
            }
        }

        /// `true` if the deque currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().unwrap().len()
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task from the deque.
        pub fn steal(&self) -> Steal<T> {
            match self.shared.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` if the deque was observed empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }

        /// Number of tasks observed queued.
        pub fn len(&self) -> usize {
            self.shared.lock().unwrap().len()
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer {
                shared: self.shared.clone(),
            }
        }
    }

    /// A shared FIFO injection queue every worker steals from.
    pub struct Injector<T> {
        shared: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Injector<T> {
            Injector {
                shared: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes a task onto the back of the queue.
        pub fn push(&self, task: T) {
            self.shared.lock().unwrap().push_back(task);
        }

        /// Steals the oldest task.
        pub fn steal(&self) -> Steal<T> {
            match self.shared.lock().unwrap().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }

        /// `true` if the queue currently holds no tasks.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().unwrap().is_empty()
        }

        /// Number of tasks currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().unwrap().len()
        }
    }
}

#[cfg(test)]
mod deque_tests {
    use super::deque::{Injector, Steal, Worker};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn fifo_pop_and_steal_take_oldest() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(1));
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
        assert!(w.is_empty() && s.is_empty());
    }

    #[test]
    fn lifo_pop_takes_newest_but_steal_takes_oldest() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.stealer().steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
    }

    #[test]
    fn injector_is_shared_fifo() {
        let inj = Injector::new();
        inj.push(10);
        inj.push(11);
        assert_eq!(inj.len(), 2);
        assert_eq!(inj.steal().success(), Some(10));
        assert_eq!(inj.steal().success(), Some(11));
        assert!(inj.steal().is_empty());
        assert!(inj.is_empty());
    }

    #[test]
    fn concurrent_stealing_loses_no_tasks() {
        const N: usize = 10_000;
        let w = Worker::new_fifo();
        for i in 0..N {
            w.push(i);
        }
        let taken = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..4 {
                let s = w.stealer();
                let taken = &taken;
                let sum = &sum;
                scope.spawn(move || {
                    while let Some(v) = s.steal().success() {
                        taken.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            // The owner drains its own end at the same time.
            while let Some(v) = w.pop() {
                taken.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(v, Ordering::Relaxed);
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), N);
        assert_eq!(sum.load(Ordering::Relaxed), N * (N - 1) / 2);
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;
    use std::thread;

    #[test]
    fn fan_out_fan_in() {
        let (job_tx, job_rx) = bounded::<u32>(4);
        let (done_tx, done_rx) = bounded::<u32>(4);
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let rx = job_rx.clone();
                let tx = done_tx.clone();
                thread::spawn(move || {
                    while let Ok(x) = rx.recv() {
                        tx.send(x * 2).unwrap();
                    }
                })
            })
            .collect();
        drop(job_rx);
        drop(done_tx);
        // Feed jobs from a separate thread: with both channels bounded
        // at 4, producing all 100 jobs before draining any results
        // would deadlock (workers block on the full done queue and stop
        // taking jobs).
        let feeder = thread::spawn(move || {
            for i in 0..100 {
                job_tx.send(i).unwrap();
            }
        });
        let mut total = 0u32;
        while let Ok(x) = done_rx.recv() {
            total += x;
        }
        feeder.join().unwrap();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(total, (0..100).map(|i| i * 2).sum());
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_cross_thread_send() {
        use std::time::Duration;
        let (tx, rx) = bounded::<u8>(1);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        t.join().unwrap();
    }
}
