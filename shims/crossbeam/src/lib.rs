//! Offline stand-in for `crossbeam`, covering `channel::bounded` with
//! blocking and timed receives — the API surface the workspace uses
//! (the compilation driver's job queue and its fault-detection
//! timeout). Implemented as a Mutex/Condvar MPMC queue; both ends are
//! cloneable like the real thing.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        buf: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: usize,
        /// Signalled when the buffer gains an item or loses all receivers.
        recv_ready: Condvar,
        /// Signalled when the buffer frees a slot or loses all senders.
        send_ready: Condvar,
    }

    /// Error from [`Sender::send`]: every receiver is gone. Carries the
    /// unsent value, as in crossbeam.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error from [`Receiver::recv`]: the channel is empty and every
    /// sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error from [`Receiver::recv_timeout`]: either nothing arrived in
    /// time, or the channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// Every sender dropped and the buffer is drained.
        Disconnected,
    }

    impl RecvTimeoutError {
        /// `true` for the [`RecvTimeoutError::Timeout`] case.
        pub fn is_timeout(&self) -> bool {
            matches!(self, RecvTimeoutError::Timeout)
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half; cloneable for multiple producers.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half; cloneable for multiple consumers.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Creates a bounded channel of capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { buf: VecDeque::new(), senders: 1, receivers: 1 }),
            cap: cap.max(1),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Blocks until a slot frees up, then enqueues `value`. Fails if
        /// all receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.buf.len() < self.0.cap {
                    st.buf.push_back(value);
                    self.0.recv_ready.notify_one();
                    return Ok(());
                }
                st = self.0.send_ready.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until an item arrives. Fails once the channel is empty
        /// and all senders have been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.0.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.recv_ready.wait(st).unwrap();
            }
        }

        /// Blocks until an item arrives or `timeout` elapses. Fails with
        /// [`RecvTimeoutError::Disconnected`] once the channel is empty
        /// and all senders have been dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.0.send_ready.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _) = self.0.recv_ready.wait_timeout(st, left).unwrap();
                st = guard;
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.0.state.lock().unwrap().receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.0.recv_ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.0.send_ready.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;
    use std::thread;

    #[test]
    fn fan_out_fan_in() {
        let (job_tx, job_rx) = bounded::<u32>(4);
        let (done_tx, done_rx) = bounded::<u32>(4);
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let rx = job_rx.clone();
                let tx = done_tx.clone();
                thread::spawn(move || {
                    while let Ok(x) = rx.recv() {
                        tx.send(x * 2).unwrap();
                    }
                })
            })
            .collect();
        drop(job_rx);
        drop(done_tx);
        // Feed jobs from a separate thread: with both channels bounded
        // at 4, producing all 100 jobs before draining any results
        // would deadlock (workers block on the full done queue and stop
        // taking jobs).
        let feeder = thread::spawn(move || {
            for i in 0..100 {
                job_tx.send(i).unwrap();
            }
        });
        let mut total = 0u32;
        while let Ok(x) = done_rx.recv() {
            total += x;
        }
        feeder.join().unwrap();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(total, (0..100).map(|i| i * 2).sum());
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_cross_thread_send() {
        use std::time::Duration;
        let (tx, rx) = bounded::<u8>(1);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(9).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
        t.join().unwrap();
    }
}
