//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes anything in-tree, so the derives expand to nothing.
//! This keeps the build hermetic: no network, no registry.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
