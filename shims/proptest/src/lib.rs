//! Offline stand-in for `proptest`, covering the surface the workspace
//! uses: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! strategies over integer ranges, tuples, vectors, booleans, sampled
//! options and arbitrary strings, plus `prop_map`, `prop_recursive`
//! and `any::<T>()`.
//!
//! Differences from upstream, deliberate for a hermetic build: cases
//! are generated from a per-test deterministic seed (reproducible runs,
//! no persistence files), and failing cases are reported without
//! shrinking.

use std::marker::PhantomData;
use std::rc::Rc;

/// The deterministic generator behind every strategy (splitmix64,
/// seeded from the test's name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from a test name.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniform random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Run-time options accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility; this harness does not shrink.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// Failure plumbing used by the generated tests.
pub mod test_runner {
    use std::fmt;

    /// A failed property case; carries the assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// The strategy abstraction: a recipe for generating values.
pub mod strategy {
    use super::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// Generates values of `Self::Value` from a [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy producing `f` of each generated value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// A recursive strategy: values nest through `recurse` up to
        /// `depth` levels. The size hints are accepted for API
        /// compatibility only.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut level = leaf.clone();
            for _ in 0..depth {
                let node = recurse(level).boxed();
                let leaf = leaf.clone();
                level = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    if rng.chance(0.5) {
                        leaf.new_value(rng)
                    } else {
                        node.new_value(rng)
                    }
                }));
            }
            level
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.new_value(rng)))
        }
    }

    /// A type-erased, cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn new_value(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64..self.end as f64).new_value(rng) as f32
        }
    }

    /// String patterns act as generators of arbitrary strings. Only the
    /// universal pattern is supported; anything else is a test bug here.
    impl Strategy for &str {
        type Value = String;

        fn new_value(&self, rng: &mut TestRng) -> String {
            assert_eq!(*self, ".*", "only the \".*\" pattern is supported");
            let len = rng.below(48) as usize;
            (0..len)
                .map(|_| match rng.below(20) {
                    0 => '\n',
                    1 => '\t',
                    2 => 'λ',
                    3 => '→',
                    _ => char::from(0x20 + rng.below(0x5f) as u8),
                })
                .collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

/// Boolean strategies, as `prop::bool`.
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Either boolean, uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.chance(0.5)
        }
    }
}

/// Collection strategies, as `prop::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// A strategy for vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies, as `prop::sample`.
pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A strategy drawing uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty options");
        Select { options }
    }

    /// See [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.chance(0.5)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<Rc<T>>);

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)`
/// becomes a test running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(
                        let $pat = {
                            let strat = $strat;
                            $crate::strategy::Strategy::new_value(&strat, &mut rng)
                        };
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            { $body }
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Property assertion: fails the current case with the condition text
/// or a custom formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+))
            );
        }
    };
}

/// Property equality assertion, with an optional context message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), left, right
        );
    }};
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::{any, Arbitrary, ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`,
    /// `prop::sample::select`).
    pub mod prop {
        pub use crate::{bool, collection, sample, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5i32..9), s in ".*") {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!(s.chars().count() < 48);
        }

        #[test]
        fn vec_and_select(v in prop::collection::vec(0usize..8, 1..24),
                          w in prop::sample::select(vec!["x", "y"]),
                          flag in prop::bool::ANY,
                          n in any::<u64>()) {
            prop_assert!(!v.is_empty() && v.len() < 24);
            prop_assert!(v.iter().all(|&e| e < 8));
            prop_assert!(w == "x" || w == "y");
            prop_assert_eq!(flag as u8 <= 1, true);
            prop_assert_eq!(n, n);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u32),
            Node(Vec<Tree>),
        }

        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }

        fn max_leaf(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => *v,
                Tree::Node(kids) => kids.iter().map(max_leaf).max().unwrap_or(0),
            }
        }

        let strat = (0u32..100)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                prop::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::for_test("recursive");
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.new_value(&mut rng);
            saw_node |= matches!(t, Tree::Node(_));
            assert!(depth(&t) <= 7);
            assert!(max_leaf(&t) < 100);
        }
        assert!(saw_node);
    }

    #[test]
    fn failures_report_the_case() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {x}");
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
